//! k-ary n-tree (bidirectional MIN / fat-tree) generator.
//!
//! This is the topology class the paper evaluates: `N = k^n` processors,
//! `n` stages of `k^(n-1)` switches, each switch with `k` down ports and
//! `k` up ports (the SP2-style 8-port switch is a 4-ary tree node). Host
//! `h` hangs off stage-0 switch `h / k` at down port `h mod k`; the up
//! ports of the top stage are unused.

use crate::lca;
use crate::topology::{Topology, TopologyBuilder};
use netsim::destset::DestSet;
use netsim::ids::{NodeId, SwitchId};

/// A k-ary n-tree topology with digit/LCA helpers.
#[derive(Debug, Clone)]
pub struct KaryTree {
    k: usize,
    n: usize,
    topo: Topology,
}

impl KaryTree {
    /// Builds the k-ary n-tree with `k^n` hosts.
    ///
    /// Switch ports `0..k` are down ports, `k..2k` are up ports. The
    /// inter-stage wiring is the standard k-ary n-tree pattern: up port `u`
    /// of stage-`s` switch `w` connects to stage-`s+1` switch `w` with digit
    /// `s` replaced by `u`, arriving at that switch's down port `w_s`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, `n < 1`, or the system exceeds 1 Mi hosts.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k >= 2, "arity must be at least 2");
        assert!(n >= 1, "need at least one stage");
        let n_hosts = k.checked_pow(n as u32).expect("system size overflow");
        assert!(n_hosts <= 1 << 20, "system size {n_hosts} too large");
        let per_stage = n_hosts / k; // k^(n-1)
        let mut b = TopologyBuilder::new(n_hosts);

        // Stage s switches get depth n-1-s (roots at depth 0).
        let mut ids = vec![vec![SwitchId(0); per_stage]; n];
        for (s, stage_ids) in ids.iter_mut().enumerate() {
            for w in stage_ids.iter_mut() {
                *w = b.add_switch(2 * k, (n - 1 - s) as u32);
            }
        }

        // Hosts at stage 0.
        for h in 0..n_hosts {
            b.attach_host(NodeId::from(h), ids[0][h / k], h % k);
        }

        // Inter-stage wiring.
        for s in 0..n.saturating_sub(1) {
            for w in 0..per_stage {
                let digits = lca::to_digits(w, k, n - 1);
                for u in 0..k {
                    let mut upper = digits.clone();
                    upper[s] = u;
                    let upper_idx = lca::from_digits(&upper, k);
                    // Lower up port u <-> upper down port digits[s].
                    b.connect(ids[s][w], k + u, ids[s + 1][upper_idx], digits[s]);
                }
            }
        }

        KaryTree {
            k,
            n,
            topo: b.build(),
        }
    }

    /// Switch arity `k` (down-port count; the switch has `2k` ports).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stages `n`.
    pub fn stages(&self) -> usize {
        self.n
    }

    /// Number of hosts `k^n`.
    pub fn n_hosts(&self) -> usize {
        self.topo.n_hosts()
    }

    /// Switches per stage, `k^(n-1)`.
    pub fn switches_per_stage(&self) -> usize {
        self.topo.n_hosts() / self.k
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Consumes the tree, returning the topology.
    pub fn into_topology(self) -> Topology {
        self.topo
    }

    /// Id of the switch at `(stage, index)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn switch_at(&self, stage: usize, index: usize) -> SwitchId {
        assert!(stage < self.n, "stage {stage} out of range");
        assert!(index < self.switches_per_stage(), "index out of range");
        SwitchId::from(stage * self.switches_per_stage() + index)
    }

    /// Stage of a switch.
    pub fn stage_of(&self, sw: SwitchId) -> usize {
        sw.index() / self.switches_per_stage()
    }

    /// Half-open host interval `[lo, hi)` covered by the downward cone of
    /// the switch at `(stage, index)`.
    ///
    /// The k-ary n-tree wiring makes every cone contiguous: stage-`s`
    /// switch `w` covers exactly the hosts whose digits above position `s`
    /// match `w`'s, i.e. `[ (w / k^s) * k^(s+1), + k^(s+1) )`. This is the
    /// closed form that lets the analysis build compressed reach sets in
    /// O(1) per port without materializing an `N`-bit string.
    ///
    /// # Panics
    ///
    /// Panics if `stage` or `index` is out of range.
    pub fn cone_interval(&self, stage: usize, index: usize) -> (usize, usize) {
        assert!(stage < self.n, "stage {stage} out of range");
        assert!(index < self.switches_per_stage(), "index out of range");
        let block = self.k.pow(stage as u32 + 1);
        let lo = (index / self.k.pow(stage as u32)) * block;
        (lo, lo + block)
    }

    /// Half-open host interval `[lo, hi)` reachable through down port
    /// `port` of the switch at `(stage, index)`: the `port`-th `k^s`-sized
    /// sub-block of that switch's [`cone_interval`](Self::cone_interval).
    /// At stage 0 this degenerates to the singleton attached host.
    ///
    /// # Panics
    ///
    /// Panics if `stage`, `index`, or `port >= k` is out of range.
    pub fn down_port_interval(&self, stage: usize, index: usize, port: usize) -> (usize, usize) {
        assert!(port < self.k, "port {port} is not a down port");
        let (lo, _) = self.cone_interval(stage, index);
        let sub = self.k.pow(stage as u32);
        (lo + port * sub, lo + (port + 1) * sub)
    }

    /// LCA stage of two distinct hosts (see [`lca::lca_stage`]).
    pub fn lca_stage(&self, a: NodeId, b: NodeId) -> usize {
        lca::lca_stage(a, b, self.k, self.n)
    }

    /// Stage a multicast from `src` to `dests` must climb to.
    pub fn lca_stage_set(&self, src: NodeId, dests: &DestSet) -> usize {
        lca::lca_stage_set(src, dests, self.k, self.n)
    }

    /// Link hops of a unicast route, including both host cables.
    pub fn unicast_hops(&self, src: NodeId, dst: NodeId) -> usize {
        lca::unicast_hops(src, dst, self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{pick_deterministic, RouteTables, UnicastRoute};
    use crate::topology::Attach;

    /// Walks a unicast route through the tables, returning switch hops.
    fn walk(tables: &RouteTables, topo: &Topology, src: NodeId, dst: NodeId) -> usize {
        let (mut sw, _) = topo.host_inject(src);
        let mut hops = 0;
        loop {
            hops += 1;
            assert!(hops < 64, "routing loop from {src} to {dst}");
            match tables.table(sw).route_unicast(dst) {
                UnicastRoute::Down(p) => match topo.attach(sw, p) {
                    Attach::Host(h) => {
                        assert_eq!(h, dst, "delivered to wrong host");
                        return hops;
                    }
                    Attach::Switch(next, _) => sw = next,
                    Attach::Unused => panic!("routed into unused port"),
                },
                UnicastRoute::Up(cands) => {
                    match topo.attach(sw, pick_deterministic(&cands, dst.index() as u64)) {
                        Attach::Switch(next, _) => sw = next,
                        other => panic!("up port leads to {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn sizes_4ary_3tree() {
        let t = KaryTree::new(4, 3);
        assert_eq!(t.n_hosts(), 64);
        assert_eq!(t.switches_per_stage(), 16);
        assert_eq!(t.topology().n_switches(), 48);
        assert_eq!(t.topology().ports(t.switch_at(0, 0)), 8);
    }

    #[test]
    fn host_attachment() {
        let t = KaryTree::new(4, 2);
        let topo = t.topology();
        assert_eq!(topo.host_inject(NodeId(5)), (t.switch_at(0, 1), 1));
        assert_eq!(topo.attach(t.switch_at(0, 1), 1), Attach::Host(NodeId(5)));
    }

    #[test]
    fn top_stage_up_ports_unused() {
        let t = KaryTree::new(2, 3);
        let topo = t.topology();
        let top = t.switch_at(2, 0);
        for u in 2..4 {
            assert_eq!(topo.attach(top, u), Attach::Unused);
        }
    }

    #[test]
    fn every_pair_routes_with_expected_hops() {
        let t = KaryTree::new(2, 3); // 8 hosts, small enough for all pairs
        let tables = RouteTables::build(t.topology());
        for src in 0..8u32 {
            for dst in 0..8u32 {
                if src == dst {
                    continue;
                }
                let hops = walk(&tables, t.topology(), NodeId(src), NodeId(dst));
                // Switch hops = 2*lca_stage + 1.
                let expected = 2 * t.lca_stage(NodeId(src), NodeId(dst)) + 1;
                assert_eq!(hops, expected, "src {src} dst {dst}");
            }
        }
    }

    #[test]
    fn every_pair_routes_4ary() {
        let t = KaryTree::new(4, 3);
        let tables = RouteTables::build(t.topology());
        // Spot-check a deterministic pseudo-random subset of pairs.
        for i in 0..64u32 {
            let src = NodeId(i);
            let dst = NodeId((i * 37 + 11) % 64);
            if src == dst {
                continue;
            }
            let hops = walk(&tables, t.topology(), src, dst);
            assert_eq!(hops, 2 * t.lca_stage(src, dst) + 1);
        }
    }

    #[test]
    fn stage0_down_reaches_are_singletons() {
        let t = KaryTree::new(4, 2);
        let tables = RouteTables::build(t.topology());
        let table = tables.table(t.switch_at(0, 2));
        for p in 0..4 {
            assert_eq!(table.port(p).reach.count(), 1);
        }
        assert_eq!(table.down_union().count(), 4);
        assert_eq!(table.up_ports(), &[4, 5, 6, 7]);
    }

    #[test]
    fn top_stage_covers_everything() {
        let t = KaryTree::new(4, 3);
        let tables = RouteTables::build(t.topology());
        for i in 0..t.switches_per_stage() {
            let table = tables.table(t.switch_at(2, i));
            assert_eq!(table.down_union().count(), 64);
            assert!(table.up_ports().is_empty());
        }
    }

    #[test]
    fn cone_intervals_match_dense_reach() {
        for (k, n) in [(2, 3), (4, 2), (3, 3)] {
            let t = KaryTree::new(k, n);
            let tables = RouteTables::build(t.topology());
            for s in 0..n {
                for i in 0..t.switches_per_stage() {
                    let table = tables.table(t.switch_at(s, i));
                    let (clo, chi) = t.cone_interval(s, i);
                    for h in 0..t.n_hosts() {
                        assert_eq!(
                            table.down_union().contains(NodeId::from(h)),
                            (clo..chi).contains(&h),
                            "k={k} n={n} stage {s} idx {i} host {h}"
                        );
                    }
                    for p in 0..k {
                        let (lo, hi) = t.down_port_interval(s, i, p);
                        assert_eq!(hi - lo, k.pow(s as u32));
                        for h in 0..t.n_hosts() {
                            assert_eq!(
                                table.port(p).reach.contains(NodeId::from(h)),
                                (lo..hi).contains(&h),
                                "k={k} n={n} stage {s} idx {i} port {p} host {h}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stage_of_inverts_switch_at() {
        let t = KaryTree::new(4, 3);
        for s in 0..3 {
            for i in [0, 5, 15] {
                assert_eq!(t.stage_of(t.switch_at(s, i)), s);
            }
        }
    }
}
