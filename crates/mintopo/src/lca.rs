//! Base-`k` digit utilities and least-common-ancestor arithmetic for
//! k-ary n-trees.
//!
//! In a k-ary n-tree, host addresses are `n` base-`k` digits; two hosts'
//! least common ancestor sits at the stage of their highest differing
//! digit. These helpers back both the analytic latency models used in tests
//! and the multiport-encoding planner.

use netsim::destset::DestSet;
use netsim::ids::NodeId;

/// Decomposes `x` into `n` base-`k` digits, least significant first.
///
/// # Panics
///
/// Panics if `x >= k^n` or `k < 2`.
pub fn to_digits(x: usize, k: usize, n: usize) -> Vec<usize> {
    assert!(k >= 2, "arity must be at least 2");
    let mut digits = Vec::with_capacity(n);
    let mut rest = x;
    for _ in 0..n {
        digits.push(rest % k);
        rest /= k;
    }
    assert_eq!(rest, 0, "{x} does not fit in {n} base-{k} digits");
    digits
}

/// Recomposes digits (least significant first) into a number.
pub fn from_digits(digits: &[usize], k: usize) -> usize {
    digits.iter().rev().fold(0, |acc, &d| acc * k + d)
}

/// Stage of the least common ancestor of hosts `a` and `b` in a k-ary
/// n-tree: the index of their highest differing digit (0 = both under the
/// same leaf switch).
///
/// # Panics
///
/// Panics if `a == b` (a host is its own ancestor; no network stage is
/// involved) or either host is out of range.
pub fn lca_stage(a: NodeId, b: NodeId, k: usize, n: usize) -> usize {
    assert_ne!(a, b, "lca_stage of a host with itself is undefined");
    let da = to_digits(a.index(), k, n);
    let db = to_digits(b.index(), k, n);
    (0..n)
        .rev()
        .find(|&i| da[i] != db[i])
        .expect("hosts differ in some digit")
}

/// Stage a multidestination worm from `src` must climb to before it can
/// cover all of `dests` on the way down: the maximum pairwise LCA stage.
///
/// A destination equal to the source contributes stage 0 (deliverable at
/// the leaf switch).
///
/// # Panics
///
/// Panics if `dests` is empty.
pub fn lca_stage_set(src: NodeId, dests: &DestSet, k: usize, n: usize) -> usize {
    assert!(!dests.is_empty(), "empty destination set has no LCA");
    dests
        .iter()
        .map(|d| if d == src { 0 } else { lca_stage(src, d, k, n) })
        .max()
        .expect("non-empty")
}

/// Number of link hops (including both host cables) of a unicast route from
/// `src` to `dst` in a k-ary n-tree: `2 * (lca_stage + 1)`.
pub fn unicast_hops(src: NodeId, dst: NodeId, k: usize, n: usize) -> usize {
    2 * (lca_stage(src, dst, k, n) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_round_trip() {
        for x in 0..64 {
            let d = to_digits(x, 4, 3);
            assert_eq!(from_digits(&d, 4), x);
        }
        assert_eq!(to_digits(11, 4, 3), vec![3, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_digits_panics() {
        let _ = to_digits(64, 4, 3);
    }

    #[test]
    fn lca_same_leaf() {
        // Hosts 0 and 3 differ only in digit 0 -> stage 0.
        assert_eq!(lca_stage(NodeId(0), NodeId(3), 4, 3), 0);
    }

    #[test]
    fn lca_top_stage() {
        // Hosts 0 and 63 differ in digit 2 -> stage 2.
        assert_eq!(lca_stage(NodeId(0), NodeId(63), 4, 3), 2);
        assert_eq!(unicast_hops(NodeId(0), NodeId(63), 4, 3), 6);
    }

    #[test]
    fn lca_set_takes_max() {
        let dests = DestSet::from_nodes(64, [1, 4].map(NodeId));
        // 0 vs 1 -> stage 0; 0 vs 4 -> stage 1 (4 = 1 in digit position 1).
        assert_eq!(lca_stage_set(NodeId(0), &dests, 4, 3), 1);
    }

    #[test]
    fn source_in_set_contributes_zero() {
        let dests = DestSet::from_nodes(64, [0].map(NodeId));
        assert_eq!(lca_stage_set(NodeId(0), &dests, 4, 3), 0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn lca_self_panics() {
        let _ = lca_stage(NodeId(5), NodeId(5), 4, 3);
    }
}
