//! Planning for switch-combining barrier gathers (the hardware-barrier
//! extension of the paper's §9 outlook \[34\]).
//!
//! Every host injects a dataless gather worm; each switch *combines* the
//! gathers arriving from below and forwards one merged gather through its
//! first up port; the unique switch where everything converges (the
//! combining root) answers with a broadcast release worm. This module
//! computes, per switch, how many gather arrivals to expect, and verifies
//! that the first-up-port forest really converges on a single root.

use crate::route::RouteTables;
use crate::topology::{Attach, Topology};
use netsim::ids::{NodeId, SwitchId};

/// Per-switch gather-combining plan.
#[derive(Debug, Clone)]
pub struct CombiningPlan {
    /// Gather arrivals each switch must combine before forwarding
    /// (0 = the switch is not on the combining tree).
    pub expected: Vec<usize>,
    /// The switch that emits the release broadcast.
    pub root: SwitchId,
}

/// Computes the combining plan for a topology.
///
/// # Panics
///
/// Panics if the first-up-port forest does not converge on exactly one
/// root (e.g. unidirectional MINs, where no switch has up ports), since
/// the combining protocol would then deadlock.
pub fn plan_combining(topo: &Topology, tables: &RouteTables) -> CombiningPlan {
    let n_sw = topo.n_switches();
    let mut expected = vec![0usize; n_sw];

    // Hosts contribute a gather at their injection switch.
    for h in 0..topo.n_hosts() {
        let (sw, _) = topo.host_inject(NodeId::from(h));
        expected[sw.index()] += 1;
    }

    // Deepest-first: once a switch's contributors are known, its merged
    // gather contributes one arrival at its first-up-port parent.
    let mut order: Vec<usize> = (0..n_sw).collect();
    order.sort_by_key(|&s| {
        (
            std::cmp::Reverse(topo.depth(SwitchId::from(s))),
            std::cmp::Reverse(s),
        )
    });
    let mut roots = Vec::new();
    for &s in &order {
        if expected[s] == 0 {
            continue;
        }
        let sw = SwitchId::from(s);
        match tables.table(sw).up_ports().first() {
            Some(&up) => match topo.attach(sw, up) {
                Attach::Switch(parent, _) => expected[parent.index()] += 1,
                other => panic!("up port of {sw} leads to {other:?}"),
            },
            None => roots.push(sw),
        }
    }
    assert_eq!(
        roots.len(),
        1,
        "combining requires a unique root; found {roots:?} — \
         this topology does not support switch-combining barriers"
    );
    CombiningPlan {
        expected,
        root: roots[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::Irregular;
    use crate::karytree::KaryTree;
    use crate::unimin::UniMin;

    #[test]
    fn karytree_plan_converges_on_one_top_switch() {
        let tree = KaryTree::new(4, 3);
        let tables = RouteTables::build(tree.topology());
        let plan = plan_combining(tree.topology(), &tables);
        // Leaves expect 4 host gathers each.
        for i in 0..16 {
            assert_eq!(plan.expected[tree.switch_at(0, i).index()], 4);
        }
        // The root is a top-stage switch expecting 4 merged gathers.
        assert_eq!(tree.stage_of(plan.root), 2);
        assert_eq!(plan.expected[plan.root.index()], 4);
        // Total arrivals = hosts + one per forwarding switch.
        let total: usize = plan.expected.iter().sum();
        let forwarding = plan.expected.iter().filter(|&&e| e > 0).count() - 1;
        assert_eq!(total, 64 + forwarding);
    }

    #[test]
    fn irregular_plan_converges() {
        let net = Irregular::new(6, 8, 12, 3, 11);
        let tables = RouteTables::build(net.topology());
        let plan = plan_combining(net.topology(), &tables);
        assert!(plan.expected[plan.root.index()] > 0);
        let total: usize = plan.expected.iter().sum();
        assert!(total >= 12, "every host contributes");
    }

    #[test]
    #[should_panic(expected = "unique root")]
    fn unimin_is_rejected() {
        let min = UniMin::new(2, 2);
        let tables = RouteTables::build(min.topology());
        let _ = plan_combining(min.topology(), &tables);
    }
}
