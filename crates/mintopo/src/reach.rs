//! Per-output-port reachability strings and port classification.
//!
//! The paper's bit-string decode requires each switch to know, for every
//! output port, the set of processors reachable through it — an `N`-bit
//! string per port. This module derives those strings from the topology:
//!
//! * a **down** port's reachability is the set of hosts reachable using
//!   down-hops only (for trees this is the subtree; for irregular networks
//!   it is the up*/down*-legal downward cone),
//! * an **up** port reaches every host (one can always climb to a common
//!   ancestor in the topologies considered),
//! * ports with nothing useful behind them (unconnected, or a host's
//!   injection-only cable in a unidirectional MIN) are **unused**.

use crate::topology::{Attach, Topology};
use netsim::destset::DestSet;
use netsim::ids::SwitchId;

/// Routing role of a switch output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortClass {
    /// Leads toward hosts; has a meaningful reachability string.
    Down,
    /// Leads toward the roots; reaches every host.
    Up,
    /// Never carries output traffic.
    Unused,
}

/// Classification and reachability string of one output port.
#[derive(Debug, Clone)]
pub struct PortInfo {
    /// Routing role.
    pub class: PortClass,
    /// Hosts reachable through this port (the paper's reachability string).
    pub reach: DestSet,
}

/// Computes [`PortInfo`] for every `(switch, port)` of the topology.
///
/// Down-hops strictly increase the `(depth, switch id)` order (see
/// [`Topology::is_down_hop`]), so the downward reach relation is acyclic and
/// is evaluated in one pass over switches sorted deepest-first.
#[allow(clippy::needless_range_loop)] // port loop indexes parallel structures
pub fn build_port_info(topo: &Topology) -> Vec<Vec<PortInfo>> {
    let n = topo.n_hosts();
    let n_sw = topo.n_switches();

    // Hosts whose ejection cable lands on each switch, keyed by (switch, port).
    let mut eject_at = vec![Vec::new(); n_sw];
    for h in 0..n {
        let node = netsim::ids::NodeId::from(h);
        let (sw, port) = topo.host_eject(node);
        eject_at[sw.index()].push((port, node));
    }

    // Process switches in decreasing (depth, id): every down-neighbor of a
    // switch comes earlier, so its cone is already known.
    let mut order: Vec<usize> = (0..n_sw).collect();
    order.sort_by_key(|&s| {
        (
            std::cmp::Reverse(topo.depth(SwitchId::from(s))),
            std::cmp::Reverse(s),
        )
    });

    // Downward cone of each switch (hosts reachable via down-hops only).
    let mut cone: Vec<DestSet> = vec![DestSet::empty(n); n_sw];
    let mut info: Vec<Vec<PortInfo>> = (0..n_sw)
        .map(|s| {
            let ports = topo.ports(SwitchId::from(s));
            (0..ports)
                .map(|_| PortInfo {
                    class: PortClass::Unused,
                    reach: DestSet::empty(n),
                })
                .collect()
        })
        .collect();

    for &s in &order {
        let sw = SwitchId::from(s);
        let mut my_cone = DestSet::empty(n);
        for (port, node) in &eject_at[s] {
            my_cone.insert(*node);
            info[s][*port] = PortInfo {
                class: PortClass::Down,
                reach: DestSet::singleton(n, *node),
            };
        }
        for port in 0..topo.ports(sw) {
            match topo.attach(sw, port) {
                Attach::Switch(other, _) if topo.is_down_hop(sw, port) => {
                    let reach = cone[other.index()].clone();
                    my_cone.union_with(&reach);
                    info[s][port] = PortInfo {
                        class: PortClass::Down,
                        reach,
                    };
                }
                Attach::Switch(..) => {
                    info[s][port] = PortInfo {
                        class: PortClass::Up,
                        reach: DestSet::full(n),
                    };
                }
                Attach::Host(_) | Attach::Unused => {
                    // Host ports were handled via eject_at (injection-only
                    // host cables stay Unused); unconnected ports stay
                    // Unused.
                }
            }
        }
        cone[s] = my_cone;
    }

    info
}

/// Computes [`PortInfo`] with a set of dead *directed* output ports masked
/// out, and with **exact** up-port reachability strings.
///
/// `dead` lists `(switch, output port)` pairs that must carry no traffic;
/// a failed bidirectional cable contributes one entry per direction.
/// Masked ports become [`PortClass::Unused`]. Downward cones are
/// recomputed on the surviving subgraph, and — unlike
/// [`build_port_info`], which optimistically marks every up port as
/// reaching all hosts — each up port's string is the exact set of hosts
/// reachable by climbing through it and then descending along surviving
/// links:
///
/// `R(s) = cone(s) ∪ ⋃ R(up-neighbors of s)`, up port toward `q` → `R(q)`.
///
/// Up-hops strictly decrease the `(depth, id)` order, so `R` is evaluated
/// in one pass over switches sorted shallowest-first. On a healthy tree
/// every up port degenerates to `full(N)`, making routing decisions
/// identical to the unmasked tables; under masking the exact strings let
/// [`crate::route::SwitchTable`] reject up ports that lead into cut-off
/// regions instead of wedging a worm against a dead link.
#[allow(clippy::needless_range_loop)] // port loop indexes parallel structures
pub fn build_port_info_masked(topo: &Topology, dead: &[(SwitchId, usize)]) -> Vec<Vec<PortInfo>> {
    let n = topo.n_hosts();
    let n_sw = topo.n_switches();
    let dead: std::collections::BTreeSet<(usize, usize)> =
        dead.iter().map(|&(sw, p)| (sw.index(), p)).collect();

    let mut eject_at = vec![Vec::new(); n_sw];
    for h in 0..n {
        let node = netsim::ids::NodeId::from(h);
        let (sw, port) = topo.host_eject(node);
        eject_at[sw.index()].push((port, node));
    }

    // Downward pass, deepest-first, exactly as the unmasked build but
    // skipping dead ports so cut-off subtrees drop out of every cone above
    // the failure.
    let mut down_order: Vec<usize> = (0..n_sw).collect();
    down_order.sort_by_key(|&s| {
        (
            std::cmp::Reverse(topo.depth(SwitchId::from(s))),
            std::cmp::Reverse(s),
        )
    });

    let mut cone: Vec<DestSet> = vec![DestSet::empty(n); n_sw];
    let mut info: Vec<Vec<PortInfo>> = (0..n_sw)
        .map(|s| {
            let ports = topo.ports(SwitchId::from(s));
            (0..ports)
                .map(|_| PortInfo {
                    class: PortClass::Unused,
                    reach: DestSet::empty(n),
                })
                .collect()
        })
        .collect();

    for &s in &down_order {
        let sw = SwitchId::from(s);
        let mut my_cone = DestSet::empty(n);
        for (port, node) in &eject_at[s] {
            if dead.contains(&(s, *port)) {
                continue; // severed ejection cable: host unreachable here
            }
            my_cone.insert(*node);
            info[s][*port] = PortInfo {
                class: PortClass::Down,
                reach: DestSet::singleton(n, *node),
            };
        }
        for port in 0..topo.ports(sw) {
            if dead.contains(&(s, port)) {
                continue;
            }
            match topo.attach(sw, port) {
                Attach::Switch(other, _) if topo.is_down_hop(sw, port) => {
                    let reach = cone[other.index()].clone();
                    my_cone.union_with(&reach);
                    info[s][port] = PortInfo {
                        class: PortClass::Down,
                        reach,
                    };
                }
                Attach::Switch(..) => {
                    // Classified now; exact reach filled by the up pass.
                    info[s][port] = PortInfo {
                        class: PortClass::Up,
                        reach: DestSet::empty(n),
                    };
                }
                Attach::Host(_) | Attach::Unused => {}
            }
        }
        cone[s] = my_cone;
    }

    // Upward pass, shallowest-first: every up-neighbor of a switch has a
    // strictly smaller (depth, id), so its R is already final.
    let mut up_order: Vec<usize> = (0..n_sw).collect();
    up_order.sort_by_key(|&s| (topo.depth(SwitchId::from(s)), s));
    let mut up_reach: Vec<DestSet> = vec![DestSet::empty(n); n_sw];
    for &s in &up_order {
        let sw = SwitchId::from(s);
        let mut r = cone[s].clone();
        for port in 0..topo.ports(sw) {
            if info[s][port].class != PortClass::Up {
                continue;
            }
            if let Attach::Switch(other, _) = topo.attach(sw, port) {
                let reach = up_reach[other.index()].clone();
                r.union_with(&reach);
                info[s][port].reach = reach;
            }
        }
        up_reach[s] = r;
    }

    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use netsim::ids::NodeId;

    /// h0,h1 under s0 (depth 1); h2,h3 under s1 (depth 1); s2 root (depth 0).
    fn small_tree() -> Topology {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.attach_host(NodeId(2), s1, 0);
        b.attach_host(NodeId(3), s1, 1);
        b.connect(s0, 3, s2, 0);
        b.connect(s1, 3, s2, 1);
        b.build()
    }

    #[test]
    fn leaf_switch_ports() {
        let t = small_tree();
        let info = build_port_info(&t);
        // s0 port 0 reaches exactly h0.
        assert_eq!(info[0][0].class, PortClass::Down);
        assert_eq!(info[0][0].reach, DestSet::singleton(4, NodeId(0)));
        // s0 port 3 is up and reaches everything.
        assert_eq!(info[0][3].class, PortClass::Up);
        assert_eq!(info[0][3].reach, DestSet::full(4));
        // s0 port 2 is unconnected.
        assert_eq!(info[0][2].class, PortClass::Unused);
    }

    #[test]
    fn root_switch_sees_both_subtrees() {
        let t = small_tree();
        let info = build_port_info(&t);
        assert_eq!(info[2][0].class, PortClass::Down);
        assert_eq!(info[2][0].reach, DestSet::from_nodes(4, [0, 1].map(NodeId)));
        assert_eq!(info[2][1].reach, DestSet::from_nodes(4, [2, 3].map(NodeId)));
        // Root's down reaches are disjoint and cover all hosts.
        let union = info[2][0].reach.or(&info[2][1].reach);
        assert_eq!(union, DestSet::full(4));
        assert!(!info[2][0].reach.intersects(&info[2][1].reach));
    }

    /// Two leaf switches under two roots: every leaf has an up port to each
    /// root, giving the path diversity a reroute needs.
    fn two_root_net() -> Topology {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let r0 = b.add_switch(2, 0);
        let r1 = b.add_switch(2, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.attach_host(NodeId(2), s1, 0);
        b.attach_host(NodeId(3), s1, 1);
        b.connect(s0, 2, r0, 0);
        b.connect(s0, 3, r1, 0);
        b.connect(s1, 2, r0, 1);
        b.connect(s1, 3, r1, 1);
        b.build()
    }

    #[test]
    fn masked_with_no_dead_links_matches_unmasked_on_trees() {
        for topo in [small_tree(), two_root_net()] {
            let plain = build_port_info(&topo);
            let masked = build_port_info_masked(&topo, &[]);
            for s in 0..topo.n_switches() {
                for p in 0..topo.ports(SwitchId::from(s)) {
                    assert_eq!(plain[s][p].class, masked[s][p].class, "sw {s} port {p}");
                    assert_eq!(plain[s][p].reach, masked[s][p].reach, "sw {s} port {p}");
                }
            }
        }
    }

    #[test]
    fn dead_directed_port_becomes_unused() {
        let t = two_root_net();
        // Kill s0's up link toward r0 (directed: s0 out only).
        let info = build_port_info_masked(&t, &[(SwitchId(0), 2)]);
        assert_eq!(info[0][2].class, PortClass::Unused);
        // The reverse direction (r0 -> s0) is unaffected.
        assert_eq!(info[2][0].class, PortClass::Down);
        assert_eq!(info[2][0].reach, DestSet::from_nodes(4, [0, 1].map(NodeId)));
        // The sibling up port still reaches everything.
        assert_eq!(info[0][3].class, PortClass::Up);
        assert_eq!(info[0][3].reach, DestSet::full(4));
    }

    #[test]
    fn dead_root_down_link_shrinks_up_reach_exactly() {
        let t = two_root_net();
        // Kill r0 -> s1: r0 can no longer descend to the right subtree.
        let info = build_port_info_masked(&t, &[(SwitchId(2), 1)]);
        assert_eq!(info[2][1].class, PortClass::Unused);
        // s0's up port to r0 now reaches only r0's surviving cone.
        assert_eq!(info[0][2].class, PortClass::Up);
        assert_eq!(info[0][2].reach, DestSet::from_nodes(4, [0, 1].map(NodeId)));
        // s0's up port to the healthy root still reaches every host.
        assert_eq!(info[0][3].reach, DestSet::full(4));
        // s1's up port to r0 also shrinks (climbing to r0 only re-reaches
        // what r0 can still cover).
        assert_eq!(info[1][2].reach, DestSet::from_nodes(4, [0, 1].map(NodeId)));
    }

    #[test]
    fn injection_only_host_cable_is_unused() {
        // Unidirectional style: host 0 injects at s0, ejects at s1.
        let mut b = TopologyBuilder::new(1);
        let s0 = b.add_switch(2, 0);
        let s1 = b.add_switch(2, 1);
        b.connect(s0, 1, s1, 0);
        b.attach_host_inject(NodeId(0), s0, 0);
        b.set_host_eject(NodeId(0), s1, 1);
        let t = b.build();
        let info = build_port_info(&t);
        assert_eq!(info[0][0].class, PortClass::Unused, "inject-only cable");
        assert_eq!(info[1][1].class, PortClass::Down, "ejection cable");
        // s0's forward port (down, since s1 is deeper) reaches h0.
        assert_eq!(info[0][1].class, PortClass::Down);
        assert!(info[0][1].reach.contains(NodeId(0)));
    }
}
