//! Table-driven routing for unicast worms and multidestination worms.
//!
//! A [`SwitchTable`] holds one switch's port classification and reachability
//! strings and answers two questions:
//!
//! * [`SwitchTable::route_unicast`] — which output port does a unicast worm
//!   take? *Down* if the destination is below this switch, otherwise any
//!   *up* port (the caller — the switch — picks among candidates
//!   deterministically or adaptively, the choice the paper leaves open).
//! * [`SwitchTable::route_bitstring`] — how does a bit-string
//!   multidestination worm replicate here? If every remaining destination
//!   is reachable downward, the worm has reached the LCA stage and fans out
//!   over the down ports, each branch's header restricted by the port's
//!   reachability string. Otherwise it continues upward — carrying either
//!   the full set ([`ReplicatePolicy::ReturnOnly`], replicate only on the
//!   way back, as in the companion TR \[27\]) or just the uncovered remainder
//!   while the covered part branches off immediately
//!   ([`ReplicatePolicy::ForwardAndReturn`]).

use crate::reach::{build_port_info, build_port_info_masked, PortClass, PortInfo};
use crate::topology::Topology;
use netsim::destset::DestSet;
use netsim::ids::{NodeId, SwitchId};

/// When a multidestination worm may begin replicating (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicatePolicy {
    /// Travel to the LCA stage first, then cover all destinations on the
    /// way back down (single worm, no forward-path branching).
    #[default]
    ReturnOnly,
    /// Branch downward to already-covered destinations while the remainder
    /// continues upward.
    ForwardAndReturn,
}

/// Routing decision for a unicast worm at one switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnicastRoute {
    /// Take this down port.
    Down(usize),
    /// Take one of these up ports (caller chooses).
    Up(Vec<usize>),
}

/// Replication decision for a bit-string multidestination worm at one
/// switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McastRoute {
    /// Downward branches: `(output port, residual destination set)`. The
    /// residual sets are pairwise disjoint and cover exactly the
    /// destinations this switch resolves downward.
    pub down: Vec<(usize, DestSet)>,
    /// Upward continuation: candidate up ports and the destination set the
    /// up-branch must still cover. `None` once the LCA stage is reached.
    pub up: Option<(Vec<usize>, DestSet)>,
}

impl McastRoute {
    /// Total number of branches (down branches plus the up branch).
    pub fn fanout(&self) -> usize {
        self.down.len() + usize::from(self.up.is_some())
    }
}

/// One switch's routing/reachability table.
#[derive(Debug, Clone)]
pub struct SwitchTable {
    ports: Vec<PortInfo>,
    down_union: DestSet,
    up_ports: Vec<usize>,
}

impl SwitchTable {
    /// Builds a table directly from per-port classifications.
    ///
    /// Normal construction goes through [`RouteTables::build`] /
    /// [`RouteTables::build_masked`]; this constructor exists for synthetic
    /// tables — reroute candidates under test, or deliberately pathological
    /// tables exercising the deadlock analyzer's rejection path.
    pub fn from_ports(ports: Vec<PortInfo>, universe: usize) -> Self {
        Self::new(ports, universe)
    }

    fn new(ports: Vec<PortInfo>, universe: usize) -> Self {
        let mut down_union = DestSet::empty(universe);
        let mut up_ports = Vec::new();
        for (p, info) in ports.iter().enumerate() {
            match info.class {
                PortClass::Down => down_union.union_with(&info.reach),
                PortClass::Up => up_ports.push(p),
                PortClass::Unused => {}
            }
        }
        SwitchTable {
            ports,
            down_union,
            up_ports,
        }
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.ports.len()
    }

    /// Classification and reachability of port `p`.
    pub fn port(&self, p: usize) -> &PortInfo {
        &self.ports[p]
    }

    /// Union of all down-port reachability strings.
    pub fn down_union(&self) -> &DestSet {
        &self.down_union
    }

    /// The up ports, in ascending order.
    pub fn up_ports(&self) -> &[usize] {
        &self.up_ports
    }

    /// Up ports whose reachability string covers all of `set`.
    ///
    /// With tables from [`RouteTables::build`] every up port reaches every
    /// host, so this returns all up ports; with masked tables
    /// ([`RouteTables::build_masked`]) it filters out up ports that lead
    /// into regions cut off by dead links.
    fn up_covering(&self, set: &DestSet) -> Vec<usize> {
        self.up_ports
            .iter()
            .copied()
            .filter(|&p| set.is_subset_of(&self.ports[p].reach))
            .collect()
    }

    /// Routes a unicast worm, or `None` if no surviving port leads to the
    /// destination (possible only on masked tables with a partitioned
    /// fabric).
    pub fn try_route_unicast(&self, dest: NodeId) -> Option<UnicastRoute> {
        for (p, info) in self.ports.iter().enumerate() {
            if info.class == PortClass::Down && info.reach.contains(dest) {
                return Some(UnicastRoute::Down(p));
            }
        }
        let cands: Vec<usize> = self
            .up_ports
            .iter()
            .copied()
            .filter(|&p| self.ports[p].reach.contains(dest))
            .collect();
        if cands.is_empty() {
            None
        } else {
            Some(UnicastRoute::Up(cands))
        }
    }

    /// Routes a unicast worm.
    ///
    /// # Panics
    ///
    /// Panics if the destination is neither below this switch nor behind a
    /// surviving up port — that would mean the (masked) topology is not
    /// fully connected.
    pub fn route_unicast(&self, dest: NodeId) -> UnicastRoute {
        self.try_route_unicast(dest).unwrap_or_else(|| {
            panic!("destination {dest} unreachable: no covering down port and no up port")
        })
    }

    /// Routes / replicates a bit-string worm, or `Err` with the residual
    /// subset this switch cannot forward — no down port covers it and no
    /// surviving up port's reach contains the set the up branch would have
    /// to carry. The error set is what a degradation planner peels out of
    /// the worm ([`plan_mcast_coverage`]).
    ///
    /// # Panics
    ///
    /// Panics if `dests` is empty (a programming error, not a fault).
    pub fn try_route_bitstring(
        &self,
        dests: &DestSet,
        policy: ReplicatePolicy,
    ) -> Result<McastRoute, DestSet> {
        assert!(!dests.is_empty(), "multicast worm with empty residual set");
        let uncovered = dests.minus(&self.down_union);
        if !uncovered.is_empty() && policy == ReplicatePolicy::ReturnOnly {
            // ReturnOnly carries the *whole* set up, so the up port must
            // cover all of it; peeling just the locally-uncovered part
            // leaves a set this switch can resolve downward.
            let cands = self.up_covering(dests);
            if cands.is_empty() {
                return Err(uncovered);
            }
            return Ok(McastRoute {
                down: Vec::new(),
                up: Some((cands, dests.clone())),
            });
        }
        let mut remaining = dests.and(&self.down_union);
        let mut down = Vec::new();
        for (p, info) in self.ports.iter().enumerate() {
            if remaining.is_empty() {
                break;
            }
            if info.class == PortClass::Down {
                let take = remaining.and(&info.reach);
                if !take.is_empty() {
                    remaining.subtract(&take);
                    down.push((p, take));
                }
            }
        }
        debug_assert!(remaining.is_empty());
        let up = if uncovered.is_empty() {
            None
        } else {
            let cands = self.up_covering(&uncovered);
            if cands.is_empty() {
                return Err(uncovered);
            }
            Some((cands, uncovered))
        };
        Ok(McastRoute { down, up })
    }

    /// Routes / replicates a bit-string multidestination worm carrying the
    /// residual destination set `dests`.
    ///
    /// Destinations covered by several down ports (possible in irregular
    /// networks) are assigned to the lowest-numbered covering port, keeping
    /// the branch sets disjoint so each destination receives exactly one
    /// copy.
    ///
    /// # Panics
    ///
    /// Panics if `dests` is empty, or if some destination is uncoverable
    /// (disconnected topology).
    pub fn route_bitstring(&self, dests: &DestSet, policy: ReplicatePolicy) -> McastRoute {
        self.try_route_bitstring(dests, policy)
            .unwrap_or_else(|bad| {
                panic!("destinations {bad:?} unreachable and no up port covers them")
            })
    }
}

/// All switches' tables for one topology.
#[derive(Debug, Clone)]
pub struct RouteTables {
    tables: Vec<SwitchTable>,
    n_hosts: usize,
}

impl RouteTables {
    /// Derives routing tables from a topology.
    pub fn build(topo: &Topology) -> Self {
        let infos = build_port_info(topo);
        let n_hosts = topo.n_hosts();
        RouteTables {
            tables: infos
                .into_iter()
                .map(|ports| SwitchTable::new(ports, n_hosts))
                .collect(),
            n_hosts,
        }
    }

    /// Derives routing tables with dead directed output ports masked out.
    ///
    /// Dead ports become unusable, downward cones shrink past the failures,
    /// and up ports carry **exact** reachability strings (see
    /// [`build_port_info_masked`]) so routing never ascends into a cut-off
    /// region. With an empty `dead` list this matches [`RouteTables::build`]
    /// on tree-structured fabrics.
    pub fn build_masked(topo: &Topology, dead: &[(SwitchId, usize)]) -> Self {
        let infos = build_port_info_masked(topo, dead);
        let n_hosts = topo.n_hosts();
        RouteTables {
            tables: infos
                .into_iter()
                .map(|ports| SwitchTable::new(ports, n_hosts))
                .collect(),
            n_hosts,
        }
    }

    /// Assembles tables from individually constructed [`SwitchTable`]s.
    ///
    /// For synthetic candidates (deadlock-analyzer rejection tests); normal
    /// construction goes through [`RouteTables::build`] /
    /// [`RouteTables::build_masked`].
    pub fn from_tables(tables: Vec<SwitchTable>, n_hosts: usize) -> Self {
        RouteTables { tables, n_hosts }
    }

    /// The table of switch `sw`.
    pub fn table(&self, sw: SwitchId) -> &SwitchTable {
        &self.tables[sw.index()]
    }

    /// System size `N`.
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.tables.len()
    }
}

/// Deterministic pick among up-port candidates: a stateless hash of `salt`
/// (e.g. the destination id) spreads different flows over different ports
/// while keeping each flow on one path.
pub fn pick_deterministic(candidates: &[usize], salt: u64) -> usize {
    assert!(!candidates.is_empty(), "no up-port candidates");
    let mut z = salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    candidates[(z % candidates.len() as u64) as usize]
}

/// Why a route trace failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A switch had no surviving port for this residual set. The set is
    /// what a degradation planner must peel out and serve another way
    /// (software unicast over surviving paths).
    Unroutable(DestSet),
    /// Structural failure — hop bound exceeded, misdelivery, a route into
    /// an unused port. Indicates broken tables, not a peelable outage.
    Malformed(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Unroutable(set) => write!(f, "unroutable destinations {set:?}"),
            TraceError::Malformed(msg) => f.write_str(msg),
        }
    }
}

/// Traces the unicast route from `src` to `dst` through the tables without
/// simulating time, resolving up-port choices deterministically. Fallible
/// variant of [`trace_unicast`]: an unreachable destination (masked tables,
/// partitioned fabric) comes back as [`TraceError::Unroutable`] instead of
/// panicking.
pub fn try_trace_unicast(
    tables: &RouteTables,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    max_hops: usize,
) -> Result<Vec<SwitchId>, TraceError> {
    use crate::topology::Attach;
    let (mut sw, _) = topo.host_inject(src);
    let mut path = Vec::new();
    loop {
        path.push(sw);
        if path.len() > max_hops {
            return Err(TraceError::Malformed(format!(
                "route {src}->{dst} exceeded {max_hops} hops"
            )));
        }
        let Some(route) = tables.table(sw).try_route_unicast(dst) else {
            return Err(TraceError::Unroutable(DestSet::singleton(
                tables.n_hosts(),
                dst,
            )));
        };
        match route {
            UnicastRoute::Down(p) => match topo.attach(sw, p) {
                Attach::Host(h) if h == dst => return Ok(path),
                Attach::Host(h) => {
                    return Err(TraceError::Malformed(format!(
                        "delivered to {h}, wanted {dst}"
                    )))
                }
                Attach::Switch(next, _) => sw = next,
                Attach::Unused => {
                    return Err(TraceError::Malformed("routed into unused port".to_string()))
                }
            },
            UnicastRoute::Up(cands) => {
                let p = pick_deterministic(&cands, dst.index() as u64);
                match topo.attach(sw, p) {
                    Attach::Switch(next, _) => sw = next,
                    other => {
                        return Err(TraceError::Malformed(format!("up port leads to {other:?}")))
                    }
                }
            }
        }
    }
}

/// Traces the unicast route from `src` to `dst` through the tables without
/// simulating time, resolving up-port choices deterministically.
///
/// Returns the sequence of switches visited.
///
/// # Errors
///
/// Returns a description of the failure if the route exceeds `max_hops`
/// switches or ends at the wrong host.
///
/// # Panics
///
/// Panics if the destination is unreachable (disconnected topology); use
/// [`try_trace_unicast`] to get that case as an error instead.
pub fn trace_unicast(
    tables: &RouteTables,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    max_hops: usize,
) -> Result<Vec<SwitchId>, String> {
    match try_trace_unicast(tables, topo, src, dst, max_hops) {
        Ok(path) => Ok(path),
        Err(TraceError::Malformed(msg)) => Err(msg),
        Err(TraceError::Unroutable(_)) => {
            panic!("destination {dst} unreachable: no covering down port and no up port")
        }
    }
}

/// Result of tracing a multidestination worm's replication tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McastTrace {
    /// Hosts that received a copy.
    pub delivered: DestSet,
    /// Number of link traversals the replication tree used (worm branches,
    /// not per-flit).
    pub branch_hops: usize,
    /// Deepest switch count along any root-to-leaf branch path.
    pub depth: usize,
}

/// Traces a bit-string multidestination worm's replication tree without
/// simulating time. Fallible variant of [`trace_bitstring`]: a residual set
/// no switch can forward (masked tables) comes back as
/// [`TraceError::Unroutable`] carrying the peelable subset.
pub fn try_trace_bitstring(
    tables: &RouteTables,
    topo: &Topology,
    src: NodeId,
    dests: &DestSet,
    policy: ReplicatePolicy,
    max_hops: usize,
) -> Result<McastTrace, TraceError> {
    use crate::topology::Attach;
    let (start, _) = topo.host_inject(src);
    let mut delivered = DestSet::empty(topo.n_hosts());
    let mut branch_hops = 0usize;
    let mut depth = 0usize;
    let mut queue = vec![(start, dests.clone(), 1usize)];
    while let Some((sw, residual, d)) = queue.pop() {
        if d > max_hops {
            return Err(TraceError::Malformed(format!(
                "branch exceeded {max_hops} hops"
            )));
        }
        depth = depth.max(d);
        let route = tables
            .table(sw)
            .try_route_bitstring(&residual, policy)
            .map_err(TraceError::Unroutable)?;
        for (p, set) in &route.down {
            branch_hops += 1;
            match topo.attach(sw, *p) {
                Attach::Host(h) => {
                    if set.count() != 1 || !set.contains(h) {
                        return Err(TraceError::Malformed(format!(
                            "host port {h} got residual {set:?}"
                        )));
                    }
                    if !delivered.insert(h) {
                        return Err(TraceError::Malformed(format!("duplicate delivery to {h}")));
                    }
                }
                Attach::Switch(next, _) => queue.push((next, set.clone(), d + 1)),
                Attach::Unused => {
                    return Err(TraceError::Malformed(
                        "replicated into unused port".to_string(),
                    ))
                }
            }
        }
        if let Some((cands, set)) = &route.up {
            branch_hops += 1;
            let p = pick_deterministic(cands, set.first().map_or(0, |n| n.index() as u64));
            match topo.attach(sw, p) {
                Attach::Switch(next, _) => queue.push((next, set.clone(), d + 1)),
                other => return Err(TraceError::Malformed(format!("up port leads to {other:?}"))),
            }
        }
    }
    Ok(McastTrace {
        delivered,
        branch_hops,
        depth,
    })
}

/// Traces a bit-string multidestination worm's replication tree without
/// simulating time.
///
/// # Errors
///
/// Returns a description of the failure if any branch exceeds `max_hops`
/// switches or a destination would receive a duplicate copy.
///
/// # Panics
///
/// Panics if some destination subset is uncoverable (disconnected
/// topology); use [`try_trace_bitstring`] to get that case as an error.
pub fn trace_bitstring(
    tables: &RouteTables,
    topo: &Topology,
    src: NodeId,
    dests: &DestSet,
    policy: ReplicatePolicy,
    max_hops: usize,
) -> Result<McastTrace, String> {
    match try_trace_bitstring(tables, topo, src, dests, policy, max_hops) {
        Ok(trace) => Ok(trace),
        Err(TraceError::Malformed(msg)) => Err(msg),
        Err(TraceError::Unroutable(bad)) => {
            panic!("destinations {bad:?} unreachable and no up port covers them")
        }
    }
}

/// How one multicast is served on a (possibly degraded) fabric: the part a
/// single multidestination worm can still cover, and the part that must be
/// peeled out and served by software unicast over surviving paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McastPlan {
    /// Destinations one bit-string worm covers (may be empty).
    pub worm: DestSet,
    /// Destinations no worm from `src` can reach; the degraded mode serves
    /// these with binomial-tree unicast (may be empty on a healthy fabric).
    pub peeled: DestSet,
}

/// Plans multicast coverage on masked tables by greedy peeling: trace the
/// worm, and whenever a switch reports an unroutable residual subset, peel
/// that subset out and retry with the remainder. Terminates because every
/// peel strictly shrinks the worm set.
///
/// Peeled destinations are *worm*-unreachable but often still
/// unicast-reachable (unicasts may take up/down paths per-destination that
/// a single worm cannot combine); the caller checks with
/// [`try_trace_unicast`].
///
/// # Errors
///
/// Returns a description of the failure on structurally broken tables
/// (hop-bound or misdelivery failures).
pub fn plan_mcast_coverage(
    tables: &RouteTables,
    topo: &Topology,
    src: NodeId,
    dests: &DestSet,
    policy: ReplicatePolicy,
    max_hops: usize,
) -> Result<McastPlan, String> {
    let mut worm = dests.clone();
    let mut peeled = DestSet::empty(tables.n_hosts());
    while !worm.is_empty() {
        match try_trace_bitstring(tables, topo, src, &worm, policy, max_hops) {
            Ok(trace) => {
                debug_assert_eq!(trace.delivered, worm);
                break;
            }
            Err(TraceError::Unroutable(bad)) => {
                let cut = bad.and(&worm);
                if cut.is_empty() {
                    return Err(format!(
                        "unroutable set {bad:?} disjoint from residual worm {worm:?}"
                    ));
                }
                worm.subtract(&cut);
                peeled.union_with(&cut);
            }
            Err(TraceError::Malformed(msg)) => return Err(msg),
        }
    }
    Ok(McastPlan { worm, peeled })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    /// Two leaf switches under a root; two hosts per leaf.
    fn tables() -> RouteTables {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        for h in 0..2 {
            b.attach_host(NodeId(h), s0, h as usize);
            b.attach_host(NodeId(h + 2), s1, h as usize);
        }
        b.connect(s0, 3, s2, 0);
        b.connect(s1, 3, s2, 1);
        RouteTables::build(&b.build())
    }

    #[test]
    fn unicast_down_and_up() {
        let t = tables();
        let leaf = t.table(SwitchId(0));
        assert_eq!(leaf.route_unicast(NodeId(1)), UnicastRoute::Down(1));
        assert_eq!(leaf.route_unicast(NodeId(3)), UnicastRoute::Up(vec![3]));
        let root = t.table(SwitchId(2));
        assert_eq!(root.route_unicast(NodeId(3)), UnicastRoute::Down(1));
    }

    #[test]
    fn mcast_at_lca_fans_out_disjointly() {
        let t = tables();
        let root = t.table(SwitchId(2));
        let dests = DestSet::from_nodes(4, [0, 1, 3].map(NodeId));
        let r = root.route_bitstring(&dests, ReplicatePolicy::ReturnOnly);
        assert!(r.up.is_none(), "root covers everything downward");
        assert_eq!(r.fanout(), 2);
        let total: usize = r.down.iter().map(|(_, d)| d.count()).sum();
        assert_eq!(total, 3);
        // Branch sets disjoint.
        assert!(!r.down[0].1.intersects(&r.down[1].1));
    }

    #[test]
    fn return_only_carries_everything_up() {
        let t = tables();
        let leaf = t.table(SwitchId(0));
        // h0 is below, h2 is not: under ReturnOnly the whole set goes up.
        let dests = DestSet::from_nodes(4, [0, 2].map(NodeId));
        let r = leaf.route_bitstring(&dests, ReplicatePolicy::ReturnOnly);
        assert!(r.down.is_empty());
        let (cands, up_set) = r.up.expect("must go up");
        assert_eq!(cands, vec![3]);
        assert_eq!(up_set, dests);
    }

    #[test]
    fn forward_and_return_splits_early() {
        let t = tables();
        let leaf = t.table(SwitchId(0));
        let dests = DestSet::from_nodes(4, [0, 2].map(NodeId));
        let r = leaf.route_bitstring(&dests, ReplicatePolicy::ForwardAndReturn);
        assert_eq!(r.down, vec![(0, DestSet::singleton(4, NodeId(0)))]);
        let (_, up_set) = r.up.expect("remainder goes up");
        assert_eq!(up_set, DestSet::singleton(4, NodeId(2)));
    }

    #[test]
    fn covered_set_never_goes_up_under_either_policy() {
        let t = tables();
        let leaf = t.table(SwitchId(0));
        let dests = DestSet::from_nodes(4, [0, 1].map(NodeId));
        for policy in [
            ReplicatePolicy::ReturnOnly,
            ReplicatePolicy::ForwardAndReturn,
        ] {
            let r = leaf.route_bitstring(&dests, policy);
            assert!(r.up.is_none());
            assert_eq!(r.down.len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "empty residual set")]
    fn empty_mcast_panics() {
        let t = tables();
        let _ = t
            .table(SwitchId(0))
            .route_bitstring(&DestSet::empty(4), ReplicatePolicy::ReturnOnly);
    }

    #[test]
    fn trace_unicast_walks_the_tree() {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        for h in 0..2 {
            b.attach_host(NodeId(h), s0, h as usize);
            b.attach_host(NodeId(h + 2), s1, h as usize);
        }
        b.connect(s0, 3, s2, 0);
        b.connect(s1, 3, s2, 1);
        let topo = b.build();
        let t = RouteTables::build(&topo);
        let path = trace_unicast(&t, &topo, NodeId(0), NodeId(3), 16).expect("routes");
        assert_eq!(path, vec![SwitchId(0), SwitchId(2), SwitchId(1)]);
        let same_leaf = trace_unicast(&t, &topo, NodeId(0), NodeId(1), 16).expect("routes");
        assert_eq!(same_leaf, vec![SwitchId(0)]);
    }

    #[test]
    fn trace_bitstring_covers_exactly_the_set() {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        for h in 0..2 {
            b.attach_host(NodeId(h), s0, h as usize);
            b.attach_host(NodeId(h + 2), s1, h as usize);
        }
        b.connect(s0, 3, s2, 0);
        b.connect(s1, 3, s2, 1);
        let topo = b.build();
        let t = RouteTables::build(&topo);
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        for policy in [
            ReplicatePolicy::ReturnOnly,
            ReplicatePolicy::ForwardAndReturn,
        ] {
            let trace =
                trace_bitstring(&t, &topo, NodeId(0), &dests, policy, 16).expect("replicates");
            assert_eq!(trace.delivered, dests, "policy {policy:?}");
            assert!(trace.branch_hops >= 4);
        }
        // ForwardAndReturn delivers the local branch earlier (shallower tree
        // for destinations under the source's own leaf switch).
        let fr = trace_bitstring(
            &t,
            &topo,
            NodeId(0),
            &dests,
            ReplicatePolicy::ForwardAndReturn,
            16,
        )
        .unwrap();
        let ro = trace_bitstring(
            &t,
            &topo,
            NodeId(0),
            &dests,
            ReplicatePolicy::ReturnOnly,
            16,
        )
        .unwrap();
        assert!(fr.branch_hops <= ro.branch_hops);
    }

    /// Two leaf switches under two roots; every leaf has an up port to each
    /// root. s0=0, s1=1, r0=2, r1=3; s0 ports: h0, h1, ->r0, ->r1.
    fn two_root_net() -> Topology {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let r0 = b.add_switch(2, 0);
        let r1 = b.add_switch(2, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.attach_host(NodeId(2), s1, 0);
        b.attach_host(NodeId(3), s1, 1);
        b.connect(s0, 2, r0, 0);
        b.connect(s0, 3, r1, 0);
        b.connect(s1, 2, r0, 1);
        b.connect(s1, 3, r1, 1);
        b.build()
    }

    #[test]
    fn masked_reroute_takes_the_surviving_root() {
        let topo = two_root_net();
        // Kill s0's up link to r0: unicasts out of s0 must use r1.
        let t = RouteTables::build_masked(&topo, &[(SwitchId(0), 2)]);
        let path = trace_unicast(&t, &topo, NodeId(0), NodeId(2), 16).expect("routes");
        assert_eq!(path, vec![SwitchId(0), SwitchId(3), SwitchId(1)]);
    }

    #[test]
    fn dead_root_down_link_filters_up_candidates() {
        let topo = two_root_net();
        // Kill r0 -> s1: climbing to r0 can no longer reach h2/h3.
        let t = RouteTables::build_masked(&topo, &[(SwitchId(2), 1)]);
        let leaf = t.table(SwitchId(0));
        assert_eq!(
            leaf.try_route_unicast(NodeId(2)),
            Some(UnicastRoute::Up(vec![3])),
            "only the port toward the healthy root survives filtering"
        );
        // A worm for {h1, h2} must also pick an up port covering both.
        let dests = DestSet::from_nodes(4, [1, 2].map(NodeId));
        let r = leaf
            .try_route_bitstring(&dests, ReplicatePolicy::ReturnOnly)
            .expect("routable via r1");
        assert_eq!(r.up, Some((vec![3], dests)));
    }

    #[test]
    fn crossed_dead_links_peel_worm_but_keep_unicast() {
        let topo = two_root_net();
        // r0 can't descend to s1, r1 can't descend to s0: no single worm
        // from h0 covers both subtrees, but every unicast still routes.
        let t = RouteTables::build_masked(&topo, &[(SwitchId(2), 1), (SwitchId(3), 0)]);
        let dests = DestSet::from_nodes(4, [1, 2].map(NodeId));
        let plan = plan_mcast_coverage(
            &t,
            &topo,
            NodeId(0),
            &dests,
            ReplicatePolicy::ReturnOnly,
            16,
        )
        .expect("plans");
        assert_eq!(plan.worm, DestSet::singleton(4, NodeId(1)));
        assert_eq!(plan.peeled, DestSet::singleton(4, NodeId(2)));
        // The peeled destination is still unicast-reachable (via r1, which
        // can descend to s1 even though it cannot serve a worm from s0's
        // whole destination set).
        let path = try_trace_unicast(&t, &topo, NodeId(0), NodeId(2), 16).expect("unicast works");
        assert_eq!(path, vec![SwitchId(0), SwitchId(3), SwitchId(1)]);
    }

    #[test]
    fn fully_severed_subtree_reports_unroutable() {
        let topo = two_root_net();
        // Both roots lose their down link to s1: h2/h3 are cut off from s0.
        let t = RouteTables::build_masked(&topo, &[(SwitchId(2), 1), (SwitchId(3), 1)]);
        assert_eq!(
            try_trace_unicast(&t, &topo, NodeId(0), NodeId(2), 16),
            Err(TraceError::Unroutable(DestSet::singleton(4, NodeId(2))))
        );
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        let plan = plan_mcast_coverage(
            &t,
            &topo,
            NodeId(0),
            &dests,
            ReplicatePolicy::ReturnOnly,
            16,
        )
        .expect("plans");
        assert_eq!(plan.worm, DestSet::singleton(4, NodeId(1)));
        assert_eq!(plan.peeled, DestSet::from_nodes(4, [2, 3].map(NodeId)));
        // Intra-subtree traffic on the cut-off side still works.
        let path = try_trace_unicast(&t, &topo, NodeId(2), NodeId(3), 16).expect("local");
        assert_eq!(path, vec![SwitchId(1)]);
    }

    #[test]
    fn healthy_plan_peels_nothing() {
        let topo = two_root_net();
        let t = RouteTables::build_masked(&topo, &[]);
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        for policy in [
            ReplicatePolicy::ReturnOnly,
            ReplicatePolicy::ForwardAndReturn,
        ] {
            let plan = plan_mcast_coverage(&t, &topo, NodeId(0), &dests, policy, 16).unwrap();
            assert_eq!(plan.worm, dests);
            assert!(plan.peeled.is_empty());
        }
    }

    #[test]
    fn from_ports_builds_usable_synthetic_tables() {
        use crate::reach::{PortClass, PortInfo};
        let table = SwitchTable::from_ports(
            vec![
                PortInfo {
                    class: PortClass::Down,
                    reach: DestSet::singleton(2, NodeId(0)),
                },
                PortInfo {
                    class: PortClass::Down,
                    reach: DestSet::singleton(2, NodeId(1)),
                },
            ],
            2,
        );
        assert_eq!(table.down_union(), &DestSet::full(2));
        let t = RouteTables::from_tables(vec![table], 2);
        assert_eq!(t.n_switches(), 1);
        assert_eq!(
            t.table(SwitchId(0)).route_unicast(NodeId(1)),
            UnicastRoute::Down(1)
        );
    }

    #[test]
    fn deterministic_pick_is_stable_and_in_range() {
        let cands = [2usize, 5, 7];
        for salt in 0..100u64 {
            let a = pick_deterministic(&cands, salt);
            let b = pick_deterministic(&cands, salt);
            assert_eq!(a, b);
            assert!(cands.contains(&a));
        }
        // Different salts spread over multiple candidates.
        let picks: std::collections::HashSet<_> =
            (0..100u64).map(|s| pick_deterministic(&cands, s)).collect();
        assert!(picks.len() > 1);
    }
}
