//! Multiport-encoding planner for k-ary n-trees.
//!
//! The multiport encoding (\[32\], the authors' companion work) carries one
//! output-port mask per switch hop instead of an `N`-bit string: decode at
//! the switch is trivial and topology-independent, and headers are short.
//! The price is expressiveness — every branch created at a hop shares the
//! *same* residual header, so one worm can only cover a **product set** of
//! down-port digits below the LCA stage. Arbitrary destination sets must be
//! split across several worms (the "multiple phases" the paper contrasts
//! with single-phase bit-string multicast).
//!
//! [`plan_multiport`] performs that split: a greedy product-set grower that
//! partitions the destination set into as few worms as it can find, each
//! expressed as a per-hop [`PortMask`] list ready to inject.

use crate::karytree::KaryTree;
use crate::lca::to_digits;
use crate::route::pick_deterministic;
use crate::topology::{Attach, Topology};
use netsim::destset::DestSet;
use netsim::header::PortMask;
use netsim::ids::NodeId;
use std::collections::BTreeSet;

/// One planned multiport worm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WormPlan {
    /// Per-hop output-port masks (hop 0 = the source's leaf switch).
    pub masks: Vec<PortMask>,
    /// Destinations this worm delivers to.
    pub covers: DestSet,
}

/// A multicast expressed as one or more multiport worms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiportPlan {
    /// The worms, covering pairwise-disjoint destination subsets whose
    /// union is the requested set.
    pub worms: Vec<WormPlan>,
}

impl MultiportPlan {
    /// Number of worms (the paper's "phases" for this encoding).
    pub fn n_worms(&self) -> usize {
        self.worms.len()
    }
}

/// Plans multiport worms from `src` covering exactly `dests` on a k-ary
/// n-tree.
///
/// Every worm ascends to the destination set's LCA stage on a
/// deterministically chosen up-path and then fans out downward over a
/// product set of digits. Worm destination subsets are pairwise disjoint
/// (each destination gets exactly one copy).
///
/// # Panics
///
/// Panics if `dests` is empty or its universe differs from the tree's host
/// count.
pub fn plan_multiport(tree: &KaryTree, src: NodeId, dests: &DestSet) -> MultiportPlan {
    assert!(!dests.is_empty(), "cannot plan an empty multicast");
    assert_eq!(
        dests.universe(),
        tree.n_hosts(),
        "destination universe must match the tree"
    );
    let k = tree.k();
    let n = tree.stages();
    let l = tree.lca_stage_set(src, dests);

    // Destinations as digit tuples over positions 0..=l (higher digits all
    // match the source by definition of the LCA stage).
    let mut uncovered: BTreeSet<Vec<usize>> = dests
        .iter()
        .map(|d| to_digits(d.index(), k, n)[..=l].to_vec())
        .collect();
    let src_digits = to_digits(src.index(), k, n);

    let mut worms = Vec::new();
    while let Some(seed) = uncovered.iter().next().cloned() {
        // Grow a product set around `seed`, constrained to uncovered tuples
        // (disjointness ⇒ exactly-once delivery).
        let mut digit_sets: Vec<BTreeSet<usize>> =
            seed.iter().map(|&d| BTreeSet::from([d])).collect();
        let mut grew = true;
        while grew {
            grew = false;
            for pos in 0..=l {
                for v in 0..k {
                    if digit_sets[pos].contains(&v) {
                        continue;
                    }
                    let mut candidate = digit_sets.clone();
                    candidate[pos].insert(v);
                    if product_subset_of(&candidate, &uncovered) {
                        digit_sets = candidate;
                        grew = true;
                    }
                }
            }
        }
        // Remove the product from `uncovered` and record coverage.
        let mut covers = DestSet::empty(tree.n_hosts());
        for combo in enumerate_product(&digit_sets) {
            assert!(uncovered.remove(&combo), "product left the uncovered set");
            let mut digits = src_digits.clone();
            digits[..=l].copy_from_slice(&combo);
            covers.insert(NodeId::from(crate::lca::from_digits(&digits, k)));
        }

        // Mask list: l up-hops, then l+1 down-hops (stage l down to 0).
        let mut masks = Vec::with_capacity(2 * l + 1);
        for s in 0..l {
            let up: Vec<usize> = (0..k).collect();
            let u = pick_deterministic(&up, src.index() as u64 ^ (s as u64) << 32);
            masks.push(PortMask::single(k + u));
        }
        for stage in (0..=l).rev() {
            masks.push(PortMask::from_ports(digit_sets[stage].iter().copied()));
        }
        worms.push(WormPlan { masks, covers });
    }
    MultiportPlan { worms }
}

/// Checks whether every combination of the digit sets is present in `set`.
fn product_subset_of(digit_sets: &[BTreeSet<usize>], set: &BTreeSet<Vec<usize>>) -> bool {
    enumerate_product(digit_sets).all(|combo| set.contains(&combo))
}

/// Iterates over the cartesian product of the digit sets.
fn enumerate_product(digit_sets: &[BTreeSet<usize>]) -> impl Iterator<Item = Vec<usize>> + '_ {
    let sizes: Vec<usize> = digit_sets.iter().map(BTreeSet::len).collect();
    let total: usize = sizes.iter().product();
    let values: Vec<Vec<usize>> = digit_sets
        .iter()
        .map(|s| s.iter().copied().collect())
        .collect();
    (0..total).map(move |mut idx| {
        let mut combo = Vec::with_capacity(values.len());
        for (pos, vals) in values.iter().enumerate() {
            combo.push(vals[idx % sizes[pos]]);
            idx /= sizes[pos];
        }
        combo
    })
}

/// Traces a multiport worm's replication tree without simulating time,
/// returning the delivered host set.
///
/// # Errors
///
/// Returns a description of the failure on malformed mask lists (running
/// out of masks at a switch, masking an unused port, or delivering twice).
pub fn trace_multiport(
    topo: &Topology,
    src: NodeId,
    masks: &[PortMask],
) -> Result<DestSet, String> {
    let (start, _) = topo.host_inject(src);
    let mut delivered = DestSet::empty(topo.n_hosts());
    let mut queue = vec![(start, masks)];
    while let Some((sw, rest)) = queue.pop() {
        let Some((mask, tail)) = rest.split_first() else {
            return Err(format!("worm at {sw} ran out of masks"));
        };
        for p in mask.iter() {
            if p >= topo.ports(sw) {
                return Err(format!("mask selects nonexistent port {p} at {sw}"));
            }
            match topo.attach(sw, p) {
                Attach::Host(h) => {
                    if !delivered.insert(h) {
                        return Err(format!("duplicate delivery to {h}"));
                    }
                }
                Attach::Switch(next, _) => queue.push((next, tail)),
                Attach::Unused => return Err(format!("mask selects unused port {p} at {sw}")),
            }
        }
    }
    Ok(delivered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    fn assert_plan_valid(tree: &KaryTree, src: NodeId, dests: &DestSet) -> MultiportPlan {
        let plan = plan_multiport(tree, src, dests);
        let mut all = DestSet::empty(tree.n_hosts());
        for worm in &plan.worms {
            // Disjoint coverage.
            assert!(!all.intersects(&worm.covers), "overlapping worms");
            all.union_with(&worm.covers);
            // The masks actually deliver exactly the claimed subset.
            let delivered =
                trace_multiport(tree.topology(), src, &worm.masks).expect("worm traces");
            assert_eq!(delivered, worm.covers);
        }
        assert_eq!(&all, dests, "plan covers exactly the request");
        plan
    }

    #[test]
    fn broadcast_is_a_single_worm() {
        let tree = KaryTree::new(2, 3);
        let all = DestSet::full(8);
        let plan = assert_plan_valid(&tree, NodeId(0), &all);
        assert_eq!(plan.n_worms(), 1, "full product set");
        // 2 up hops + 3 down masks.
        assert_eq!(plan.worms[0].masks.len(), 5);
    }

    #[test]
    fn single_destination_single_worm() {
        let tree = KaryTree::new(4, 3);
        let d = DestSet::singleton(64, NodeId(63));
        let plan = assert_plan_valid(&tree, NodeId(0), &d);
        assert_eq!(plan.n_worms(), 1);
    }

    #[test]
    fn diagonal_set_needs_multiple_worms() {
        // k=2, n=2: hosts 0..4. {0b00, 0b11} = {0, 3} is not a product set.
        let tree = KaryTree::new(2, 2);
        let d = DestSet::from_nodes(4, [0, 3].map(NodeId));
        let plan = assert_plan_valid(&tree, NodeId(1), &d);
        assert_eq!(plan.n_worms(), 2);
    }

    #[test]
    fn product_set_is_one_worm() {
        // {0,1,2,3} under one leaf pair: digits position1 in {0,1}, pos0 in {0,1}.
        let tree = KaryTree::new(2, 3);
        let d = DestSet::from_nodes(8, [0, 1, 2, 3].map(NodeId));
        let plan = assert_plan_valid(&tree, NodeId(4), &d);
        assert_eq!(plan.n_worms(), 1);
    }

    #[test]
    fn random_sets_are_partitioned_correctly() {
        let tree = KaryTree::new(4, 3);
        let mut rng = SimRng::new(2024);
        for _ in 0..30 {
            let src = NodeId::from(rng.below(64));
            let k = 1 + rng.below(20);
            let dests = rng.dest_set(64, k, src);
            let plan = assert_plan_valid(&tree, src, &dests);
            assert!(plan.n_worms() <= dests.count());
        }
    }

    #[test]
    fn leaf_local_multicast_has_short_masks() {
        let tree = KaryTree::new(4, 3);
        // Destinations under the source's own leaf switch: LCA stage 0.
        let d = DestSet::from_nodes(64, [1, 2].map(NodeId));
        let plan = assert_plan_valid(&tree, NodeId(0), &d);
        assert_eq!(plan.n_worms(), 1);
        assert_eq!(plan.worms[0].masks.len(), 1, "one hop: the leaf switch");
    }

    #[test]
    #[should_panic(expected = "empty multicast")]
    fn empty_plan_panics() {
        let tree = KaryTree::new(2, 2);
        let _ = plan_multiport(&tree, NodeId(0), &DestSet::empty(4));
    }
}
