//! Irregular switch networks (networks of workstations) with up*/down*
//! routing.
//!
//! The paper notes (§2) that its schemes apply to irregular switch-based
//! systems, where deadlock-free routing is conventionally obtained by
//! imposing a spanning tree and classifying every link as *up* (toward the
//! root) or *down* (Autonet's up*/down* rule: a legal path is zero or more
//! up-hops followed by zero or more down-hops). Our table-driven router
//! implements exactly that discipline: descend as soon as all remaining
//! destinations are in the downward cone, ascend otherwise.

use crate::topology::{Topology, TopologyBuilder};
use netsim::ids::{NodeId, SwitchId};
use netsim::rng::SimRng;

/// A randomly generated connected irregular switch network.
#[derive(Debug, Clone)]
pub struct Irregular {
    topo: Topology,
}

impl Irregular {
    /// Generates a random connected network.
    ///
    /// * `n_switches` switches with `ports` ports each,
    /// * `n_hosts` hosts attached round-robin,
    /// * a random spanning tree plus up to `extra_links` additional random
    ///   links (parallel links allowed, self-links not),
    /// * switch depths assigned by BFS from switch 0 (the up*/down* root).
    ///
    /// The same `seed` always yields the same network.
    ///
    /// # Panics
    ///
    /// Panics if the port budget cannot accommodate the hosts plus a
    /// spanning tree.
    pub fn new(
        n_switches: usize,
        ports: usize,
        n_hosts: usize,
        extra_links: usize,
        seed: u64,
    ) -> Self {
        assert!(n_switches >= 1, "need at least one switch");
        assert!(n_hosts >= 1, "need at least one host");
        assert!(
            n_switches * ports >= n_hosts + 2 * (n_switches - 1),
            "not enough ports for {n_hosts} hosts and a spanning tree"
        );
        let mut rng = SimRng::new(seed);
        let mut b = TopologyBuilder::new(n_hosts);
        // Depths are assigned after we know the final graph; build with 0
        // and rebuild below.
        let mut next_free: Vec<usize> = vec![0; n_switches];
        let switches: Vec<SwitchId> = (0..n_switches).map(|_| b.add_switch(ports, 0)).collect();

        // Hosts round-robin.
        for h in 0..n_hosts {
            let s = h % n_switches;
            assert!(next_free[s] < ports, "switch s{s} out of host ports");
            b.attach_host(NodeId::from(h), switches[s], next_free[s]);
            next_free[s] += 1;
        }

        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n_switches];
        let link = |b: &mut TopologyBuilder,
                    next_free: &mut Vec<usize>,
                    adjacency: &mut Vec<Vec<usize>>,
                    x: usize,
                    y: usize| {
            b.connect(switches[x], next_free[x], switches[y], next_free[y]);
            next_free[x] += 1;
            next_free[y] += 1;
            adjacency[x].push(y);
            adjacency[y].push(x);
        };

        // Random spanning tree: attach each switch to a random earlier one
        // that still has a free port.
        for i in 1..n_switches {
            let candidates: Vec<usize> = (0..i).filter(|&j| next_free[j] < ports).collect();
            assert!(
                !candidates.is_empty() && next_free[i] < ports,
                "port budget exhausted while building spanning tree"
            );
            let parent = candidates[rng.below(candidates.len())];
            link(&mut b, &mut next_free, &mut adjacency, i, parent);
        }

        // Extra random links.
        let mut added = 0;
        let mut attempts = 0;
        while added < extra_links && attempts < extra_links * 20 + 20 {
            attempts += 1;
            let free: Vec<usize> = (0..n_switches).filter(|&j| next_free[j] < ports).collect();
            if free.len() < 2 {
                break;
            }
            let x = free[rng.below(free.len())];
            let y = free[rng.below(free.len())];
            if x == y {
                continue;
            }
            link(&mut b, &mut next_free, &mut adjacency, x, y);
            added += 1;
        }

        // BFS depths from switch 0.
        let mut depth = vec![u32::MAX; n_switches];
        let mut queue = std::collections::VecDeque::new();
        depth[0] = 0;
        queue.push_back(0usize);
        while let Some(s) = queue.pop_front() {
            for &t in &adjacency[s] {
                if depth[t] == u32::MAX {
                    depth[t] = depth[s] + 1;
                    queue.push_back(t);
                }
            }
        }
        assert!(
            depth.iter().all(|&d| d != u32::MAX),
            "generated network is disconnected"
        );

        // Rebuild with correct depths (the builder fixes depth at
        // add_switch time). Replaying the construction is cheap and keeps
        // the builder API simple.
        let topo0 = b.build();
        let mut b2 = TopologyBuilder::new(n_hosts);
        for &d in depth.iter().take(n_switches) {
            b2.add_switch(ports, d);
        }
        for h in 0..n_hosts {
            let node = NodeId::from(h);
            let (sw, port) = topo0.host_inject(node);
            b2.attach_host(node, sw, port);
        }
        for conn in topo0.connections() {
            use crate::topology::End;
            if let (End::SwitchPort(a, ap), End::SwitchPort(bsw, bp)) = (conn.a, conn.b) {
                b2.connect(a, ap, bsw, bp);
            }
        }
        Irregular { topo: b2.build() }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Consumes the network, returning the topology.
    pub fn into_topology(self) -> Topology {
        self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{trace_bitstring, trace_unicast, ReplicatePolicy, RouteTables};

    #[test]
    fn generation_is_deterministic() {
        let a = Irregular::new(8, 8, 16, 4, 42);
        let b = Irregular::new(8, 8, 16, 4, 42);
        assert_eq!(a.topology().connections(), b.topology().connections());
        let c = Irregular::new(8, 8, 16, 4, 43);
        assert_ne!(a.topology().connections(), c.topology().connections());
    }

    #[test]
    fn all_pairs_route() {
        for seed in [1u64, 7, 99] {
            let net = Irregular::new(6, 8, 12, 3, seed);
            let tables = RouteTables::build(net.topology());
            for src in 0..12u32 {
                for dst in 0..12u32 {
                    if src == dst {
                        continue;
                    }
                    trace_unicast(&tables, net.topology(), NodeId(src), NodeId(dst), 32)
                        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                }
            }
        }
    }

    #[test]
    fn multicast_covers_exactly_under_both_policies() {
        for seed in [3u64, 11] {
            let net = Irregular::new(6, 8, 12, 3, seed);
            let tables = RouteTables::build(net.topology());
            let mut rng = SimRng::new(seed * 17);
            for _ in 0..20 {
                let src = NodeId::from(rng.below(12));
                let k = 1 + rng.below(8);
                let dests = rng.dest_set(12, k, src);
                for policy in [
                    ReplicatePolicy::ReturnOnly,
                    ReplicatePolicy::ForwardAndReturn,
                ] {
                    let trace = trace_bitstring(&tables, net.topology(), src, &dests, policy, 32)
                        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                    assert_eq!(trace.delivered, dests);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not enough ports")]
    fn infeasible_budget_panics() {
        let _ = Irregular::new(4, 2, 8, 0, 1);
    }
}
