//! Unidirectional multistage interconnection network (butterfly) generator.
//!
//! In a unidirectional MIN every worm crosses all `n` stages (paper §2).
//! Hosts inject into stage 0 and eject from stage `n-1`; each stage corrects
//! one base-`k` address digit. All forward ports are *down* ports with
//! disjoint reachability strings, so the same table-driven switch logic that
//! serves fat-trees replicates multicast worms here in a single forward
//! pass — the mechanism of the authors' companion work \[32\].

use crate::lca;
use crate::topology::{Topology, TopologyBuilder};
use netsim::ids::{NodeId, SwitchId};

/// A k-ary butterfly with `k^n` hosts and `n` stages.
#[derive(Debug, Clone)]
pub struct UniMin {
    k: usize,
    n: usize,
    topo: Topology,
}

impl UniMin {
    /// Builds the butterfly.
    ///
    /// Switch ports `0..k` are the input side, `k..2k` the output side.
    /// Between stage `s` and `s+1` the wiring corrects switch-index digit
    /// `n-2-s`; the final output level corrects host digit 0.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, `n < 1`, or the system exceeds 1 Mi hosts.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k >= 2, "arity must be at least 2");
        assert!(n >= 1, "need at least one stage");
        let n_hosts = k.checked_pow(n as u32).expect("system size overflow");
        assert!(n_hosts <= 1 << 20, "system size {n_hosts} too large");
        let per_stage = n_hosts / k;
        let mut b = TopologyBuilder::new(n_hosts);

        // Depth grows along the flow so forward hops classify as "down".
        let mut ids = vec![vec![SwitchId(0); per_stage]; n];
        for (s, stage_ids) in ids.iter_mut().enumerate() {
            for w in stage_ids.iter_mut() {
                *w = b.add_switch(2 * k, s as u32);
            }
        }

        // Hosts: inject at stage 0 input ports, eject at stage n-1 outputs.
        for h in 0..n_hosts {
            let node = NodeId::from(h);
            b.attach_host_inject(node, ids[0][h / k], h % k);
            b.set_host_eject(node, ids[n - 1][h / k], k + h % k);
        }

        // Inter-stage wiring: stage s output j corrects digit n-2-s.
        for s in 0..n.saturating_sub(1) {
            let pos = n - 2 - s;
            for w in 0..per_stage {
                let digits = lca::to_digits(w, k, n - 1);
                for j in 0..k {
                    let mut upper = digits.clone();
                    upper[pos] = j;
                    let upper_idx = lca::from_digits(&upper, k);
                    b.connect(ids[s][w], k + j, ids[s + 1][upper_idx], digits[pos]);
                }
            }
        }

        UniMin {
            k,
            n,
            topo: b.build(),
        }
    }

    /// Switch arity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stages `n`.
    pub fn stages(&self) -> usize {
        self.n
    }

    /// Number of hosts `k^n`.
    pub fn n_hosts(&self) -> usize {
        self.topo.n_hosts()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Consumes the MIN, returning the topology.
    pub fn into_topology(self) -> Topology {
        self.topo
    }

    /// Id of the switch at `(stage, index)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn switch_at(&self, stage: usize, index: usize) -> SwitchId {
        assert!(stage < self.n && index < self.n_hosts() / self.k);
        SwitchId::from(stage * (self.n_hosts() / self.k) + index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{trace_bitstring, trace_unicast, ReplicatePolicy, RouteTables};
    use netsim::destset::DestSet;

    #[test]
    fn sizes() {
        let m = UniMin::new(2, 3);
        assert_eq!(m.n_hosts(), 8);
        assert_eq!(m.topology().n_switches(), 12);
    }

    #[test]
    fn all_pairs_route_through_all_stages() {
        let m = UniMin::new(2, 3);
        let tables = RouteTables::build(m.topology());
        for src in 0..8u32 {
            for dst in 0..8u32 {
                let path =
                    trace_unicast(&tables, m.topology(), NodeId(src), NodeId(dst), 16).unwrap();
                assert_eq!(path.len(), 3, "every route crosses all 3 stages");
            }
        }
    }

    #[test]
    fn all_pairs_route_4ary() {
        let m = UniMin::new(4, 2);
        let tables = RouteTables::build(m.topology());
        for src in 0..16u32 {
            for dst in 0..16u32 {
                let path =
                    trace_unicast(&tables, m.topology(), NodeId(src), NodeId(dst), 8).unwrap();
                assert_eq!(path.len(), 2);
            }
        }
    }

    #[test]
    fn multicast_is_single_forward_pass() {
        let m = UniMin::new(2, 3);
        let tables = RouteTables::build(m.topology());
        let dests = DestSet::from_nodes(8, [0, 3, 5, 6].map(NodeId));
        let trace = trace_bitstring(
            &tables,
            m.topology(),
            NodeId(1),
            &dests,
            ReplicatePolicy::ReturnOnly,
            8,
        )
        .expect("replicates");
        assert_eq!(trace.delivered, dests);
        assert_eq!(trace.depth, 3, "no turnaround: forward pass only");
    }

    #[test]
    fn broadcast_from_any_source() {
        let m = UniMin::new(2, 2);
        let tables = RouteTables::build(m.topology());
        let all = DestSet::full(4);
        for src in 0..4u32 {
            let trace = trace_bitstring(
                &tables,
                m.topology(),
                NodeId(src),
                &all,
                ReplicatePolicy::ReturnOnly,
                8,
            )
            .unwrap();
            assert_eq!(trace.delivered, all);
        }
    }

    #[test]
    fn stage0_covers_everything_downward() {
        let m = UniMin::new(4, 2);
        let tables = RouteTables::build(m.topology());
        let t = tables.table(m.switch_at(0, 0));
        assert_eq!(t.down_union().count(), 16);
    }
}
