//! Generic switch-network topology description.
//!
//! A [`Topology`] is a set of switches with numbered ports, bidirectional
//! connections between switch ports, and host attachments. Generators
//! ([`crate::karytree`], [`crate::unimin`], [`crate::irregular`]) produce
//! validated topologies plus the per-switch *depth* used to classify ports
//! as up (toward the roots) or down (toward the hosts).

use netsim::ids::{NodeId, SwitchId};
use std::fmt;

/// What sits on the far side of a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attach {
    /// A host NIC.
    Host(NodeId),
    /// Another switch's port.
    Switch(SwitchId, usize),
    /// Nothing (e.g. the unused up ports of top-stage switches).
    Unused,
}

/// One endpoint of a bidirectional connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// A host NIC.
    Host(NodeId),
    /// A switch port.
    SwitchPort(SwitchId, usize),
}

/// A bidirectional connection between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// First endpoint.
    pub a: End,
    /// Second endpoint.
    pub b: End,
}

/// A validated switch-network topology.
#[derive(Debug, Clone)]
pub struct Topology {
    n_hosts: usize,
    switch_ports: Vec<usize>,
    attach: Vec<Vec<Attach>>,
    host_inject: Vec<(SwitchId, usize)>,
    host_eject: Vec<(SwitchId, usize)>,
    depth: Vec<u32>,
}

impl Topology {
    /// Number of hosts (the system size `N`).
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.switch_ports.len()
    }

    /// Number of ports on switch `sw`.
    pub fn ports(&self, sw: SwitchId) -> usize {
        self.switch_ports[sw.index()]
    }

    /// What is attached at `(sw, port)`.
    pub fn attach(&self, sw: SwitchId, port: usize) -> Attach {
        self.attach[sw.index()][port]
    }

    /// The switch port that receives host `h`'s injected traffic.
    pub fn host_inject(&self, h: NodeId) -> (SwitchId, usize) {
        self.host_inject[h.index()]
    }

    /// The switch port that delivers traffic to host `h`.
    pub fn host_eject(&self, h: NodeId) -> (SwitchId, usize) {
        self.host_eject[h.index()]
    }

    /// Depth of switch `sw`: 0 at the roots (top stage), increasing toward
    /// the hosts. Used to orient links as up/down.
    pub fn depth(&self, sw: SwitchId) -> u32 {
        self.depth[sw.index()]
    }

    /// Returns `true` if the directed hop from `sw` out of `port` heads
    /// *down* (away from the roots), per the (depth, id) ordering that makes
    /// down-hops acyclic: deeper first, larger id as a tie-break.
    pub fn is_down_hop(&self, sw: SwitchId, port: usize) -> bool {
        match self.attach(sw, port) {
            Attach::Host(_) => true,
            Attach::Unused => false,
            Attach::Switch(other, _) => {
                let (d1, d2) = (self.depth(sw), self.depth(other));
                d2 > d1 || (d2 == d1 && other.index() > sw.index())
            }
        }
    }

    /// Enumerates every bidirectional connection exactly once.
    pub fn connections(&self) -> Vec<Connection> {
        let mut out = Vec::new();
        for sw in 0..self.n_switches() {
            let sw_id = SwitchId::from(sw);
            for port in 0..self.ports(sw_id) {
                match self.attach(sw_id, port) {
                    Attach::Host(h) => {
                        // Emit host connections only from the inject side so
                        // a host that injects and ejects at different
                        // switches (unidirectional MINs) appears twice —
                        // once per physical cable.
                        out.push(Connection {
                            a: End::Host(h),
                            b: End::SwitchPort(sw_id, port),
                        });
                    }
                    Attach::Switch(other, oport) => {
                        if (sw_id.index(), port) < (other.index(), oport) {
                            out.push(Connection {
                                a: End::SwitchPort(sw_id, port),
                                b: End::SwitchPort(other, oport),
                            });
                        }
                    }
                    Attach::Unused => {}
                }
            }
        }
        out
    }
}

/// Incremental builder for [`Topology`] (C-BUILDER).
///
/// ```
/// use mintopo::topology::TopologyBuilder;
/// use netsim::ids::NodeId;
///
/// // Two hosts on one 4-port switch.
/// let mut b = TopologyBuilder::new(2);
/// let sw = b.add_switch(4, 0);
/// b.attach_host(NodeId(0), sw, 0);
/// b.attach_host(NodeId(1), sw, 1);
/// let topo = b.build();
/// assert_eq!(topo.n_switches(), 1);
/// assert_eq!(topo.host_eject(NodeId(1)), (sw, 1));
/// ```
#[derive(Debug)]
pub struct TopologyBuilder {
    n_hosts: usize,
    switch_ports: Vec<usize>,
    attach: Vec<Vec<Attach>>,
    host_inject: Vec<Option<(SwitchId, usize)>>,
    host_eject: Vec<Option<(SwitchId, usize)>>,
    depth: Vec<u32>,
}

impl TopologyBuilder {
    /// Starts a topology for `n_hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `n_hosts == 0`.
    pub fn new(n_hosts: usize) -> Self {
        assert!(n_hosts > 0, "topology needs at least one host");
        TopologyBuilder {
            n_hosts,
            switch_ports: Vec::new(),
            attach: Vec::new(),
            host_inject: vec![None; n_hosts],
            host_eject: vec![None; n_hosts],
            depth: Vec::new(),
        }
    }

    /// Adds a switch with `ports` ports at the given `depth` (0 = root).
    pub fn add_switch(&mut self, ports: usize, depth: u32) -> SwitchId {
        assert!(ports > 0 && ports <= 16, "switch ports must be in 1..=16");
        let id = SwitchId::from(self.switch_ports.len());
        self.switch_ports.push(ports);
        self.attach.push(vec![Attach::Unused; ports]);
        self.depth.push(depth);
        id
    }

    /// Connects two switch ports bidirectionally.
    ///
    /// # Panics
    ///
    /// Panics if either port is already in use or out of range.
    pub fn connect(&mut self, a: SwitchId, ap: usize, b: SwitchId, bp: usize) {
        assert!(
            self.attach[a.index()][ap] == Attach::Unused,
            "port {a}.{ap} already used"
        );
        assert!(
            self.attach[b.index()][bp] == Attach::Unused,
            "port {b}.{bp} already used"
        );
        assert!(!(a == b && ap == bp), "cannot connect a port to itself");
        self.attach[a.index()][ap] = Attach::Switch(b, bp);
        self.attach[b.index()][bp] = Attach::Switch(a, ap);
    }

    /// Attaches host `h` at `(sw, port)` for both injection and ejection
    /// (the bidirectional-topology case).
    ///
    /// # Panics
    ///
    /// Panics if the port is in use or the host is already attached.
    pub fn attach_host(&mut self, h: NodeId, sw: SwitchId, port: usize) {
        self.attach_host_inject(h, sw, port);
        self.set_host_eject(h, sw, port);
    }

    /// Attaches host `h`'s *injection* side at `(sw, port)` (unidirectional
    /// MINs inject and eject at different switches).
    ///
    /// # Panics
    ///
    /// Panics if the port is in use or the host already injects somewhere.
    pub fn attach_host_inject(&mut self, h: NodeId, sw: SwitchId, port: usize) {
        assert!(
            self.attach[sw.index()][port] == Attach::Unused,
            "port {sw}.{port} already used"
        );
        assert!(
            self.host_inject[h.index()].is_none(),
            "host {h} already injects somewhere"
        );
        self.attach[sw.index()][port] = Attach::Host(h);
        self.host_inject[h.index()] = Some((sw, port));
    }

    /// Attaches host `h`'s *ejection* side at `(sw, port)`.
    ///
    /// The port may carry the host attach mark already (bidirectional case)
    /// or be fresh (unidirectional case).
    ///
    /// # Panics
    ///
    /// Panics if the host already ejects somewhere, or the port is occupied
    /// by something other than this host.
    pub fn set_host_eject(&mut self, h: NodeId, sw: SwitchId, port: usize) {
        assert!(
            self.host_eject[h.index()].is_none(),
            "host {h} already ejects somewhere"
        );
        match self.attach[sw.index()][port] {
            Attach::Unused => self.attach[sw.index()][port] = Attach::Host(h),
            Attach::Host(existing) if existing == h => {}
            other => panic!("port {sw}.{port} already used by {other:?}"),
        }
        self.host_eject[h.index()] = Some((sw, port));
    }

    /// Validates and freezes the topology.
    ///
    /// # Panics
    ///
    /// Panics if any host lacks an injection or ejection attachment, or if
    /// switch-switch connections are asymmetric (cannot happen through this
    /// builder's API, but is checked anyway).
    pub fn build(self) -> Topology {
        let host_inject: Vec<_> = self
            .host_inject
            .iter()
            .enumerate()
            .map(|(h, a)| a.unwrap_or_else(|| panic!("host n{h} has no injection attachment")))
            .collect();
        let host_eject: Vec<_> = self
            .host_eject
            .iter()
            .enumerate()
            .map(|(h, a)| a.unwrap_or_else(|| panic!("host n{h} has no ejection attachment")))
            .collect();
        // Symmetry check.
        for (s, ports) in self.attach.iter().enumerate() {
            for (p, att) in ports.iter().enumerate() {
                if let Attach::Switch(o, op) = att {
                    assert_eq!(
                        self.attach[o.index()][*op],
                        Attach::Switch(SwitchId::from(s), p),
                        "asymmetric connection at s{s}.{p}"
                    );
                }
            }
        }
        Topology {
            n_hosts: self.n_hosts,
            switch_ports: self.switch_ports,
            attach: self.attach,
            host_inject,
            host_eject,
            depth: self.depth,
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Topology({} hosts, {} switches, {} connections)",
            self.n_hosts,
            self.n_switches(),
            self.connections().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch_topo() -> Topology {
        // h0,h1 on sw0; h2 on sw1; sw0.3 <-> sw1.3. sw0 deeper than sw1.
        let mut b = TopologyBuilder::new(3);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.attach_host(NodeId(2), s1, 0);
        b.connect(s0, 3, s1, 3);
        b.build()
    }

    #[test]
    fn builder_round_trip() {
        let t = two_switch_topo();
        assert_eq!(t.n_hosts(), 3);
        assert_eq!(t.n_switches(), 2);
        assert_eq!(t.ports(SwitchId(0)), 4);
        assert_eq!(t.attach(SwitchId(0), 0), Attach::Host(NodeId(0)));
        assert_eq!(t.attach(SwitchId(0), 3), Attach::Switch(SwitchId(1), 3));
        assert_eq!(t.attach(SwitchId(1), 3), Attach::Switch(SwitchId(0), 3));
        assert_eq!(t.attach(SwitchId(0), 2), Attach::Unused);
        assert_eq!(t.host_inject(NodeId(2)), (SwitchId(1), 0));
        assert_eq!(t.host_eject(NodeId(2)), (SwitchId(1), 0));
    }

    #[test]
    fn down_hop_orientation() {
        let t = two_switch_topo();
        // s0 (depth 1) -> s1 (depth 0) is up; reverse is down.
        assert!(!t.is_down_hop(SwitchId(0), 3));
        assert!(t.is_down_hop(SwitchId(1), 3));
        // Host hops are always down; unused ports never.
        assert!(t.is_down_hop(SwitchId(0), 0));
        assert!(!t.is_down_hop(SwitchId(0), 2));
    }

    #[test]
    fn connections_enumerated_once() {
        let t = two_switch_topo();
        let conns = t.connections();
        assert_eq!(conns.len(), 4); // 3 host links + 1 switch link
        let sw_links = conns
            .iter()
            .filter(|c| matches!(c.a, End::SwitchPort(..)) && matches!(c.b, End::SwitchPort(..)))
            .count();
        assert_eq!(sw_links, 1);
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn double_port_use_panics() {
        let mut b = TopologyBuilder::new(1);
        let s0 = b.add_switch(2, 0);
        b.attach_host(NodeId(0), s0, 0);
        let s1 = b.add_switch(2, 0);
        b.connect(s0, 0, s1, 0);
    }

    #[test]
    #[should_panic(expected = "no injection attachment")]
    fn unattached_host_panics() {
        let mut b = TopologyBuilder::new(2);
        let s0 = b.add_switch(4, 0);
        b.attach_host(NodeId(0), s0, 0);
        let _ = b.build();
    }

    #[test]
    fn split_inject_eject() {
        // Unidirectional style: inject at s0, eject at s1.
        let mut b = TopologyBuilder::new(1);
        let s0 = b.add_switch(2, 1);
        let s1 = b.add_switch(2, 0);
        b.connect(s0, 1, s1, 0);
        b.attach_host_inject(NodeId(0), s0, 0);
        b.set_host_eject(NodeId(0), s1, 1);
        let t = b.build();
        assert_eq!(t.host_inject(NodeId(0)), (SwitchId(0), 0));
        assert_eq!(t.host_eject(NodeId(0)), (SwitchId(1), 1));
        // Two host cables in the connection list.
        let host_links = t
            .connections()
            .iter()
            .filter(|c| matches!(c.a, End::Host(_)))
            .count();
        assert_eq!(host_links, 2);
    }
}
