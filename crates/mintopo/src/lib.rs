//! # mintopo — switch-based network topologies, reachability and routing
//!
//! The paper targets three classes of switch-based systems (its §2):
//! bidirectional MINs / fat-trees (the class it evaluates), unidirectional
//! MINs, and irregular switch networks (NOWs). This crate builds all three
//! and derives from each the two data structures the paper's switches need:
//!
//! * per-output-port **reachability strings** (an `N`-bit [`netsim::DestSet`]
//!   per port — exactly the decode tables the paper describes for bit-string
//!   headers), and
//! * a **port classification** (down / up / unused) that encodes the
//!   up*/down*-style routing discipline: a worm descends whenever its
//!   remaining destinations are all reachable downward, and ascends toward
//!   the least common ancestor (LCA) otherwise.
//!
//! Routing is therefore entirely table-driven ([`route::SwitchTable`]):
//! the same switch logic serves fat-trees, butterflies and irregular
//! networks.
//!
//! ```
//! use mintopo::karytree::KaryTree;
//! use mintopo::route::{RouteTables, UnicastRoute};
//! use netsim::ids::NodeId;
//!
//! // 64 processors: 4-ary 3-tree built from 8-port switches.
//! let tree = KaryTree::new(4, 3);
//! let tables = RouteTables::build(tree.topology());
//! // A stage-0 switch routes hosts under it downward, everything else up.
//! let sw = tree.switch_at(0, 0);
//! match tables.table(sw).route_unicast(NodeId(2)) {
//!     UnicastRoute::Down(port) => assert_eq!(port, 2),
//!     _ => panic!("host 2 sits below this switch"),
//! }
//! ```

pub mod combining;
pub mod irregular;
pub mod karytree;
pub mod lca;
pub mod multiport;
pub mod reach;
pub mod route;
pub mod topology;
pub mod unimin;

pub use karytree::KaryTree;
pub use reach::{PortClass, PortInfo};
pub use route::{
    McastPlan, McastRoute, ReplicatePolicy, RouteTables, SwitchTable, TraceError, UnicastRoute,
};
pub use topology::{Attach, Topology, TopologyBuilder};
