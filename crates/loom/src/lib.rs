//! Minimal in-tree stand-in for the `loom` concurrency model checker.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of loom's API that the `cfg(loom)` test targets use:
//! [`model`] plus the [`thread`] and [`sync`] module facades. The real loom
//! intercepts every `thread`/`sync` operation and exhaustively explores all
//! interleavings; this stand-in maps them straight to `std` and instead
//! runs the model body many times, relying on OS scheduling jitter for
//! schedule diversity — a stress test, not a proof. The test *sources* are
//! written against loom's API, so swapping the real crate back in upgrades
//! them to exhaustive interleaving checks with no source change.

/// How many times [`model`] re-executes the body. Real loom derives its
/// iteration count from the interleaving space; the stand-in just re-runs
/// under the OS scheduler, so more repetitions mean more distinct
/// schedules observed.
const STRESS_ITERATIONS: usize = 64;

/// Explores executions of a concurrent model.
///
/// Real loom runs `f` once per distinct interleaving of the loom-wrapped
/// primitives inside it; the stand-in runs `f` [`STRESS_ITERATIONS`] times
/// on the plain OS scheduler. `f` must therefore be idempotent and
/// self-contained, exactly as loom requires.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..STRESS_ITERATIONS {
        f();
    }
}

/// Facade over [`std::thread`], matching `loom::thread`.
pub mod thread {
    pub use std::thread::{current, spawn, yield_now, JoinHandle};
}

/// Facade over [`std::sync`], matching `loom::sync`.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Facade over [`std::sync::atomic`], matching `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_the_body_repeatedly() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        super::model(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), super::STRESS_ITERATIONS);
    }

    #[test]
    fn thread_and_sync_facades_interoperate() {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let n = n.clone();
                super::thread::spawn(move || n.fetch_add(1, Ordering::SeqCst))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }
}
