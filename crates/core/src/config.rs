//! Whole-system configuration: topology, switch architecture, multicast
//! scheme, timing.
//!
//! Validation is layered on the static analyzer (`mdw-analysis`):
//! [`SystemConfig::report`] runs every check — switch buffer sizing,
//! system-level consistency, channel-dependency-graph acyclicity, header
//! round-trips — into one [`ConfigReport`], and the legacy
//! [`SystemConfig::validate`] surfaces that report's first error as a
//! [`ConfigError`] so `Result`-based callers keep working unchanged.

use crate::respond::ResponseConfig;
use collectives::RecoveryConfig;
use mdw_analysis::{
    analyze_fabric, analyze_fabric_budgeted, certify_fabric, switch_sizing, ArchClass, Certificate,
    CompactTables, ConfigReport, ModelMode,
};
use mintopo::route::RouteTables;
use switches::{ConfigError, SwitchConfig};

/// Which network to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Bidirectional MIN / fat-tree with `k^n` hosts (the paper's
    /// evaluation topology; `k = 4`, `n = 3` is the 64-processor default).
    KaryTree {
        /// Arity (half the switch ports).
        k: usize,
        /// Stages.
        n: usize,
    },
    /// Unidirectional butterfly MIN with `k^n` hosts.
    UniMin {
        /// Arity.
        k: usize,
        /// Stages.
        n: usize,
    },
    /// Random irregular network (NOW-style) with up*/down* routing.
    Irregular {
        /// Number of switches.
        switches: usize,
        /// Ports per switch.
        ports: usize,
        /// Number of hosts.
        hosts: usize,
        /// Extra links beyond the spanning tree.
        extra_links: usize,
        /// Generation seed.
        seed: u64,
    },
}

impl TopologyKind {
    /// Number of hosts this topology provides.
    pub fn n_hosts(&self) -> usize {
        match *self {
            TopologyKind::KaryTree { k, n } | TopologyKind::UniMin { k, n } => k.pow(n as u32),
            TopologyKind::Irregular { hosts, .. } => hosts,
        }
    }

    /// Ports per switch.
    pub fn switch_ports(&self) -> usize {
        match *self {
            TopologyKind::KaryTree { k, .. } | TopologyKind::UniMin { k, .. } => 2 * k,
            TopologyKind::Irregular { ports, .. } => ports,
        }
    }
}

/// Which switch architecture to instantiate (the paper's alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchArch {
    /// Shared central queue with chunk-refcount replication (paper §4).
    #[default]
    CentralBuffer,
    /// Per-input packet buffers with cursor replication (paper §5).
    InputBuffered,
}

/// Which multicast implementation hosts use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum McastImpl {
    /// Single-phase bit-string multidestination worms.
    #[default]
    HwBitString,
    /// Multiport-encoded worms (k-ary trees only).
    HwMultiport,
    /// U-Min binomial software multicast.
    SwBinomial,
}

impl McastImpl {
    /// Short label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            McastImpl::HwBitString => "HW-bitstring",
            McastImpl::HwMultiport => "HW-multiport",
            McastImpl::SwBinomial => "SW-binomial",
        }
    }
}

impl SwitchArch {
    /// Short label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            SwitchArch::CentralBuffer => "CB",
            SwitchArch::InputBuffered => "IB",
        }
    }
}

/// Certificate-based deadlock-freedom checking (DESIGN.md §16).
///
/// With `enabled`, the fabric pass of [`SystemConfig::report`] bounds the
/// explicit channel-dependency-graph enumeration at `cdg_budget`
/// dependency edges and additionally runs the O(routes) certificate
/// checker over the compressed route encoding. On fabrics where the
/// explicit pass completes, the two verdicts must agree (a disagreement
/// is itself an error finding); past the budget, the certificate alone
/// supplies the deadlock verdict and the truncation is recorded honestly
/// as a `cdg-budget-exhausted` warning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifyConfig {
    /// Enables the certificate path (config key `certify.enabled`).
    pub enabled: bool,
    /// Dependency-edge budget of the explicit CDG enumeration (config key
    /// `certify.cdg_budget`). Paper-scale fabrics (64 hosts) sit around
    /// 1.5k edges; a 4K-endpoint fat-tree exceeds 100k.
    pub cdg_budget: usize,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            enabled: false,
            cdg_budget: 100_000,
        }
    }
}

/// One certify-vs-explicit comparison over a built fabric
/// ([`SystemConfig::certify_comparison`]): the two deadlock verdicts, the
/// wall times, and whether the explicit enumeration stayed inside its
/// dependency budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertifyComparison {
    /// Channels the certificate checker enumerated.
    pub channels: usize,
    /// Dependency edges the certificate checker verified.
    pub dependencies: usize,
    /// The certificate checker accepted the fabric.
    pub certify_ok: bool,
    /// Wall time of the certificate path (compression + check), seconds.
    pub certify_secs: f64,
    /// Dependency-edge budget the explicit enumeration ran under.
    pub explicit_budget: usize,
    /// Dependency edges the explicit enumeration actually built.
    pub explicit_deps: usize,
    /// The explicit enumeration finished inside its budget.
    pub explicit_completed: bool,
    /// The explicit analysis accepted the fabric (meaningful only when
    /// it completed; `false` on budget exhaustion).
    pub explicit_ok: bool,
    /// Wall time of the explicit path, seconds.
    pub explicit_secs: f64,
    /// The verdicts agree wherever both were reached (vacuously true when
    /// the explicit pass exhausted its budget).
    pub agree: bool,
}

/// Complete system description.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Network shape.
    pub topology: TopologyKind,
    /// Switch buffer organization.
    pub arch: SwitchArch,
    /// Host multicast scheme.
    pub mcast: McastImpl,
    /// Per-switch parameters (`ports` is overridden from the topology).
    pub switch: SwitchConfig,
    /// Link propagation delay in cycles.
    pub link_delay: u32,
    /// Credit window of switch→host ejection links.
    pub host_eject_credits: u32,
    /// Payload bits per flit.
    pub bits_per_flit: usize,
    /// Host software send overhead, cycles.
    pub send_overhead: u32,
    /// Host software receive(-and-forward) overhead, cycles.
    pub recv_overhead: u32,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Enables barrier-gather combining in the switches (central-buffer
    /// architecture only; the hardware-barrier extension of §9 / \[34\]).
    pub barrier_combining: bool,
    /// End-to-end recovery (ACK/timeout/retransmit) parameters for the
    /// hosts; `None` disables recovery, keeping fault-free runs
    /// bit-identical to builds without the fault layer.
    pub recovery: Option<RecoveryConfig>,
    /// Online fault response (debounced detection, quiesce, vetted
    /// reroute, graceful degradation); `None` disables the responder.
    pub response: Option<ResponseConfig>,
    /// Resident control-plane (`mdw-routed`) storm-hardening parameters:
    /// flap damping, retry backoff, the degradation ladder, and the
    /// detect→install watchdog; `None` for batch experiments.
    pub routed: Option<crate::routed::RoutedConfig>,
    /// Decomposition strategy of the bounded model check backing the
    /// fault responder's deep reroute vet (config key `model.mode`):
    /// exact joint exploration, per-switch compositional checking, or
    /// size-driven automatic selection. See DESIGN.md §14.
    pub model_mode: ModelMode,
    /// Shard count for the compiled engine schedule (config key
    /// `engine.shards`, overridable via `MDWORM_SHARDS`). 1 keeps the
    /// plain sequential loop — the oracle; ≥ 2 compiles the fabric into
    /// that many shards (bit-identical results, see DESIGN.md §13). Must
    /// be ≥ 1 and at most the topology's switch count.
    pub engine_shards: usize,
    /// Enables the engine's per-cycle torn-install audit (config key
    /// `epoch.audit`): every cycle, committed table epochs must agree
    /// across all switches unless the laggards hold an armed commit at
    /// the frontier epoch. Surfaced as
    /// [`crate::sim::RunOutcome::torn_cycles`]; see DESIGN.md §15.
    pub epoch_audit: bool,
    /// Certificate-based deadlock-freedom checking (config keys
    /// `certify.*`): budget the explicit CDG pass and back the verdict
    /// with the topology-parametric rank certificate. See DESIGN.md §16.
    pub certify: CertifyConfig,
}

impl Default for SystemConfig {
    /// The paper-style default: 64 processors (4-ary 3-tree of 8-port
    /// switches), central-buffer switches, bit-string hardware multicast,
    /// SP2-class buffer sizes, 1 µs send / 0.5 µs receive overheads at
    /// 40 MHz (40 / 20 cycles).
    fn default() -> Self {
        SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 3 },
            arch: SwitchArch::CentralBuffer,
            mcast: McastImpl::HwBitString,
            switch: SwitchConfig::default(),
            link_delay: 1,
            host_eject_credits: 8,
            bits_per_flit: 8,
            send_overhead: 40,
            recv_overhead: 20,
            seed: 0xD0E5_1997,
            barrier_combining: false,
            recovery: None,
            response: None,
            routed: None,
            model_mode: ModelMode::Auto,
            engine_shards: 1,
            epoch_audit: false,
            certify: CertifyConfig::default(),
        }
    }
}

impl SystemConfig {
    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.topology.n_hosts()
    }

    /// The switch configuration with the port count the topology dictates.
    pub fn effective_switch(&self) -> SwitchConfig {
        SwitchConfig {
            ports: self.topology.switch_ports(),
            ..self.switch.clone()
        }
    }

    /// Runs the full static analysis — switch buffer sizing, system-level
    /// consistency, and (when the cheap checks pass) the fabric pass:
    /// channel-dependency-graph cycle detection and header round-trip
    /// linting over the actual topology — into one unified
    /// [`ConfigReport`].
    ///
    /// Check order matches the historical `validate()` behavior, so
    /// [`ConfigReport::first_error`] names the same violation the legacy
    /// `Result` interface always has. The fabric pass is skipped when an
    /// earlier check already failed (building routing tables for a config
    /// with broken sizing would only bury the root cause).
    pub fn report(&self) -> ConfigReport {
        let mut report = ConfigReport::new();
        let arch_class = match self.arch {
            SwitchArch::CentralBuffer => ArchClass::CentralBuffer,
            SwitchArch::InputBuffered => ArchClass::InputBuffered,
        };
        switch_sizing(&self.effective_switch(), arch_class, &mut report);

        if self.mcast == McastImpl::HwMultiport
            && !matches!(self.topology, TopologyKind::KaryTree { .. })
        {
            report.error(
                "multiport-needs-tree",
                format!(
                    "multiport encoding requires a k-ary tree topology, got {:?}",
                    self.topology
                ),
            );
        }
        if self.barrier_combining && self.arch != SwitchArch::CentralBuffer {
            report.error(
                "barrier-combining-needs-cb",
                format!(
                    "barrier combining is implemented for the central-buffer switch, \
                     not {:?}",
                    self.arch
                ),
            );
        }
        let n = self.n_hosts();
        let bitstring_header = 1 + n.div_ceil(self.bits_per_flit);
        if usize::from(self.switch.max_packet_flits) <= bitstring_header {
            report.error(
                "bitstring-header-overflow",
                format!(
                    "bit-string header ({bitstring_header} flits) leaves no payload in \
                     {}-flit packets — grow max_packet_flits or the buffers",
                    self.switch.max_packet_flits
                ),
            );
        }
        if let Some(r) = &self.recovery {
            if r.timeout < 1 {
                report.error("recovery-timeout-zero", "recovery timeout must be positive");
            } else if r.timeout_cap < r.timeout {
                report.error(
                    "recovery-cap-below-base",
                    format!(
                        "recovery timeout cap ({}) below base timeout ({})",
                        r.timeout_cap, r.timeout
                    ),
                );
            }
        }
        if let Some(resp) = &self.response {
            if self.mcast == McastImpl::HwMultiport {
                report.error(
                    "response-needs-bitstring",
                    "fault response reroutes by re-deriving bit-string reach \
                     tables; multiport-encoded headers bake port indices of the \
                     unmasked tree into the worm and cannot survive a table swap",
                );
            }
            if self.barrier_combining {
                report.error(
                    "response-excludes-combining",
                    "switch barrier combining precomputes its gather plan \
                     against the original tables; a masked reroute would \
                     silently break the combining tree",
                );
            }
            if resp.max_hops < 1 {
                report.error(
                    "response-hops-zero",
                    "response max_hops must be positive for coverage traces",
                );
            }
            if resp.purge_max < 1 {
                report.error(
                    "response-purge-zero",
                    "response purge_max must be positive: a zero-cycle purge \
                     window can never confirm the fabric drained",
                );
            }
            if resp.snapshot_every < 1 {
                report.error(
                    "journal-snapshot-zero",
                    "journal snapshot_every must be positive: a zero cadence \
                     snapshots (and compacts) after every single record, \
                     turning the write-ahead log into pure snapshot churn",
                );
            }
            if resp.latency_cap < 1 {
                report.error(
                    "journal-latency-cap-zero",
                    "journal latency_cap must be positive — a zero-slot ring \
                     cannot hold even the most recent episode",
                );
            }
            if self.recovery.is_none() {
                report.warning(
                    "response-needs-recovery",
                    "fault response without end-to-end recovery loses every \
                     message the quiesce gate drops or the purge kills — \
                     enable recovery for lossless outage handling",
                );
            }
        }

        if let Some(routed) = &self.routed {
            if self.response.is_none() {
                report.error(
                    "routed-needs-response",
                    "the resident control plane drives recovery through the \
                     fault responder; enable the response block",
                );
            }
            if routed.queue_cap < 1 {
                report.error(
                    "routed-queue-zero",
                    "routed queue_cap must be positive — a zero-slot queue \
                     sheds every query and blocks every event forever",
                );
            }
            if routed.slice < 1 {
                report.error(
                    "routed-slice-zero",
                    "routed slice must be positive for the storm controller \
                     to observe the fabric at all",
                );
            }
            if routed.deadline < 1 {
                report.error(
                    "routed-deadline-zero",
                    "routed deadline must be positive: a zero-cycle watchdog \
                     trips on every successful response",
                );
            }
            if routed.flap_reuse >= routed.flap_suppress {
                report.error(
                    "routed-flap-thresholds",
                    format!(
                        "routed flap_reuse ({}) must be below flap_suppress \
                         ({}) or a suppressed link can never cool off",
                        routed.flap_reuse, routed.flap_suppress
                    ),
                );
            }
        }

        if self.engine_shards < 1 {
            report.error(
                "engine-shards-zero",
                "engine.shards must be at least 1 (1 = sequential oracle)",
            );
        }

        if self.certify.cdg_budget < 1 {
            report.error(
                "certify-budget-zero",
                "certify.cdg_budget must be positive — a zero-edge budget \
                 truncates the explicit CDG before it sees a single dependency",
            );
        }

        if !report.has_errors() {
            let (topology, tree) = crate::build::build_topology(self.topology);
            if self.engine_shards > topology.n_switches() {
                report.error(
                    "engine-shards-exceed-switches",
                    format!(
                        "engine.shards ({}) exceeds the topology's switch count \
                         ({}) — shards beyond that hold no switch and only add \
                         barrier overhead",
                        self.engine_shards,
                        topology.n_switches()
                    ),
                );
            }
            let tables = RouteTables::build(&topology);
            if self.certify.enabled {
                let completed = analyze_fabric_budgeted(
                    &topology,
                    &tables,
                    self.switch.policy,
                    self.certify.cdg_budget,
                    &mut report,
                );
                let cert = match &tree {
                    Some(t) => Certificate::for_karytree(t),
                    None => Certificate::for_topology(&topology),
                };
                let compact = CompactTables::from_dense(&tables);
                if completed {
                    // The explicit verdict stands; the certificate must
                    // agree with it (defense in depth — a divergence means
                    // the rank construction or the checker is wrong).
                    let mut shadow = ConfigReport::new();
                    certify_fabric(&cert, &topology, &compact, &mut shadow);
                    let explicit_rejects = report.diagnostics.iter().any(|d| d.code == "cdg-cycle");
                    if shadow.has_errors() != explicit_rejects {
                        report.error(
                            "certificate-disagreement",
                            format!(
                                "certificate checker {} the fabric but the \
                                 explicit CDG analysis {} it — the two deadlock \
                                 verdicts must agree whenever both run",
                                if shadow.has_errors() {
                                    "rejects"
                                } else {
                                    "accepts"
                                },
                                if explicit_rejects {
                                    "rejects"
                                } else {
                                    "accepts"
                                },
                            ),
                        );
                    }
                } else {
                    // Budget exhausted: the certificate supplies the
                    // deadlock verdict (and the true channel/dependency
                    // counts the truncated enumeration could not).
                    certify_fabric(&cert, &topology, &compact, &mut report);
                }
            } else {
                analyze_fabric(&topology, &tables, self.switch.policy, &mut report);
            }
        }
        report
    }

    /// Runs both deadlock-verdict paths — the O(routes) certificate
    /// checker and the budget-bounded explicit CDG analysis — over this
    /// configuration's built fabric, under wall-clock timers.
    ///
    /// This is the engine behind `mdw-lint --certify` and the certify
    /// bench rows: it reports whether the two verdicts agree wherever the
    /// explicit pass completes, and records honestly when the explicit
    /// enumeration hit its `certify.cdg_budget` and the certificate alone
    /// carries the verdict.
    pub fn certify_comparison(&self) -> CertifyComparison {
        let (topology, tree) = crate::build::build_topology(self.topology);
        let tables = RouteTables::build(&topology);
        let cert = match &tree {
            Some(t) => Certificate::for_karytree(t),
            None => Certificate::for_topology(&topology),
        };

        let t0 = std::time::Instant::now();
        let compact = CompactTables::from_dense(&tables);
        let mut cert_report = ConfigReport::new();
        certify_fabric(&cert, &topology, &compact, &mut cert_report);
        let certify_secs = t0.elapsed().as_secs_f64();
        let certify_ok = !cert_report.has_errors();

        let t1 = std::time::Instant::now();
        let mut explicit_report = ConfigReport::new();
        let explicit_completed = analyze_fabric_budgeted(
            &topology,
            &tables,
            self.switch.policy,
            self.certify.cdg_budget,
            &mut explicit_report,
        );
        let explicit_secs = t1.elapsed().as_secs_f64();
        let explicit_ok = explicit_completed
            && !explicit_report
                .diagnostics
                .iter()
                .any(|d| d.code == "cdg-cycle");

        CertifyComparison {
            channels: cert_report.stats.channels,
            dependencies: cert_report.stats.dependencies,
            certify_ok,
            certify_secs,
            explicit_budget: self.certify.cdg_budget,
            explicit_deps: explicit_report.stats.dependencies,
            explicit_completed,
            explicit_ok,
            explicit_secs,
            agree: !explicit_completed || certify_ok == explicit_ok,
        }
    }

    /// Validates cross-cutting constraints, returning a descriptive
    /// [`ConfigError`] on the first violation (multiport encoding off a
    /// k-ary tree, switch sizing violations, bit-string header leaving no
    /// payload room, degenerate recovery timers, dependency cycles or
    /// header-encoding mismatches in the built fabric).
    ///
    /// Thin wrapper over [`SystemConfig::report`]: the first
    /// error-severity diagnostic becomes the [`ConfigError`]. Warnings
    /// (e.g. the synchronous-replication hazard) do not fail validation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.report().first_error() {
            Some(d) => Err(ConfigError(d.message.clone())),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_64_procs() {
        let c = SystemConfig::default();
        c.validate().expect("defaults are valid");
        assert_eq!(c.n_hosts(), 64);
        assert_eq!(c.topology.switch_ports(), 8);
        assert_eq!(c.effective_switch().ports, 8);
    }

    #[test]
    fn topology_host_counts() {
        assert_eq!(TopologyKind::KaryTree { k: 2, n: 4 }.n_hosts(), 16);
        assert_eq!(TopologyKind::UniMin { k: 4, n: 2 }.n_hosts(), 16);
        assert_eq!(
            TopologyKind::Irregular {
                switches: 6,
                ports: 8,
                hosts: 12,
                extra_links: 3,
                seed: 1
            }
            .n_hosts(),
            12
        );
    }

    #[test]
    fn multiport_needs_tree() {
        let c = SystemConfig {
            mcast: McastImpl::HwMultiport,
            topology: TopologyKind::UniMin { k: 2, n: 3 },
            ..SystemConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(
            err.to_string().contains("multiport encoding requires"),
            "{err}"
        );
    }

    #[test]
    fn bitstring_header_must_fit() {
        let mut c = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 5 }, // 1024 hosts
            ..SystemConfig::default()
        };
        // 1024-bit string = 128 header flits but packets are 128 flits.
        c.switch.max_packet_flits = 128;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("leaves no payload"), "{err}");
    }

    #[test]
    fn switch_errors_propagate_and_recovery_is_checked() {
        let mut c = SystemConfig::default();
        c.switch.input_buf_flits = 4;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("exceeds input buffer"), "{err}");

        let c = SystemConfig {
            recovery: Some(collectives::RecoveryConfig {
                timeout: 100,
                timeout_cap: 10,
                max_retries: 3,
            }),
            ..SystemConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("timeout cap"), "{err}");
    }

    #[test]
    fn labels() {
        assert_eq!(McastImpl::HwBitString.label(), "HW-bitstring");
        assert_eq!(SwitchArch::InputBuffered.label(), "IB");
    }

    #[test]
    fn report_on_default_config_is_clean_with_fabric_coverage() {
        let r = SystemConfig::default().report();
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert!(r.cycles.is_empty());
        // The fabric pass actually ran: channels, dependencies and header
        // round-trips were all enumerated on the 64-host tree.
        assert!(r.stats.channels > 64, "{:?}", r.stats);
        assert!(r.stats.dependencies > 0);
        assert!(r.stats.roundtrips > 0);
    }

    #[test]
    fn report_first_error_matches_validate() {
        let mut c = SystemConfig::default();
        c.switch.input_buf_flits = 4;
        let report_err = c.report().first_error().expect("broken").message.clone();
        let validate_err = c.validate().unwrap_err().to_string();
        assert_eq!(report_err, validate_err);
    }

    #[test]
    fn broken_sizing_skips_fabric_pass() {
        let mut c = SystemConfig::default();
        c.switch.cq_chunks = 0;
        let r = c.report();
        assert!(r.has_errors());
        assert_eq!(r.stats.channels, 0, "fabric pass must not run");
    }

    #[test]
    fn sync_replication_warns_but_validates() {
        let c = SystemConfig {
            arch: SwitchArch::InputBuffered,
            switch: SwitchConfig {
                replication: switches::ReplicationMode::Synchronous,
                ..SwitchConfig::default()
            },
            ..SystemConfig::default()
        };
        let r = c.report();
        assert!(!r.has_errors());
        assert!(r.warnings().any(|w| w.code == "sync-replication-hazard"));
        c.validate().expect("warnings do not fail validation");
    }

    #[test]
    fn certified_report_is_byte_identical_when_explicit_completes() {
        // Paper-scale fabric, budget ample: the explicit verdict stands,
        // the certificate silently agrees, and the rendered report is
        // byte-identical to the uncertified one.
        let plain = SystemConfig::default().report();
        let certified = SystemConfig {
            certify: CertifyConfig {
                enabled: true,
                ..CertifyConfig::default()
            },
            ..SystemConfig::default()
        }
        .report();
        assert_eq!(plain.render_human(), certified.render_human());
        assert_eq!(plain.render_json(), certified.render_json());
    }

    #[test]
    fn exhausted_budget_hands_the_verdict_to_the_certificate() {
        let c = SystemConfig {
            certify: CertifyConfig {
                enabled: true,
                cdg_budget: 10, // far below the 64-host fabric's ~1.5k deps
            },
            ..SystemConfig::default()
        };
        let r = c.report();
        assert!(!r.has_errors(), "{:?}", r.diagnostics);
        assert!(
            r.warnings().any(|w| w.code == "cdg-budget-exhausted"),
            "{:?}",
            r.diagnostics
        );
        // The certificate restored the true counters the truncated
        // enumeration could not provide.
        let full = SystemConfig::default().report();
        assert_eq!(r.stats.channels, full.stats.channels);
        assert_eq!(r.stats.dependencies, full.stats.dependencies);
        assert_eq!(r.stats.sccs, full.stats.sccs);
    }

    #[test]
    fn certify_budget_zero_is_rejected() {
        let c = SystemConfig {
            certify: CertifyConfig {
                enabled: true,
                cdg_budget: 0,
            },
            ..SystemConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("cdg_budget"), "{err}");
    }

    #[test]
    fn certified_report_covers_every_topology_kind() {
        // The explicit-rule certificate path (UniMin, Irregular) and the
        // family-rule path (KaryTree) both agree with the explicit CDG.
        for topology in [
            TopologyKind::KaryTree { k: 2, n: 3 },
            TopologyKind::UniMin { k: 2, n: 3 },
            TopologyKind::Irregular {
                switches: 6,
                ports: 8,
                hosts: 12,
                extra_links: 3,
                seed: 1,
            },
        ] {
            let c = SystemConfig {
                topology,
                certify: CertifyConfig {
                    enabled: true,
                    ..CertifyConfig::default()
                },
                ..SystemConfig::default()
            };
            let r = c.report();
            assert!(!r.has_errors(), "{topology:?}: {:?}", r.diagnostics);
        }
    }

    #[test]
    fn certify_comparison_agrees_on_the_paper_fabric() {
        let cmp = SystemConfig::default().certify_comparison();
        assert!(cmp.certify_ok);
        assert!(cmp.explicit_completed);
        assert!(cmp.explicit_ok);
        assert!(cmp.agree);
        assert!(cmp.channels > 64);
        assert_eq!(cmp.dependencies, cmp.explicit_deps);

        // Starve the explicit budget: agreement becomes vacuous, the
        // truncation is reported honestly.
        let starved = SystemConfig {
            certify: CertifyConfig {
                enabled: false,
                cdg_budget: 10,
            },
            ..SystemConfig::default()
        }
        .certify_comparison();
        assert!(starved.certify_ok);
        assert!(!starved.explicit_completed);
        assert!(!starved.explicit_ok);
        assert!(starved.agree, "vacuous agreement past the budget");
        assert!(starved.explicit_deps <= 10);
    }

    #[test]
    fn report_covers_all_topology_kinds() {
        for topology in [
            TopologyKind::KaryTree { k: 2, n: 3 },
            TopologyKind::UniMin { k: 2, n: 3 },
            TopologyKind::Irregular {
                switches: 6,
                ports: 8,
                hosts: 12,
                extra_links: 3,
                seed: 1,
            },
        ] {
            let c = SystemConfig {
                topology,
                ..SystemConfig::default()
            };
            let r = c.report();
            assert!(!r.has_errors(), "{topology:?}: {:?}", r.diagnostics);
            assert!(r.stats.channels > 0, "{topology:?}");
        }
    }
}
