//! Measurement harness: warm-up, measurement window, drain, deadlock
//! watchdog.

use crate::build::build_system;
use crate::config::SystemConfig;
use crate::forensics::{capture_deadlock_report, DeadlockReport};
use crate::respond::{FaultResponder, MemoStats, ResponseCounters};
use crate::workload::{make_sources, TrafficSpec};
use collectives::{DegradeCounters, RecoveryCounters};
use netsim::stats::Summary;
use netsim::{Cycle, FaultCounters, FaultPlan};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide engine-shard override; 0 means "not set".
static SHARDS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the compiled-engine shard count for all subsequent
/// [`run_experiment`] calls (0 clears the override, falling back to
/// `MDWORM_SHARDS` / the config's `engine.shards`). Mirrors
/// [`crate::sweep::set_jobs`] for e.g. the `figures --shards N` flag.
pub fn set_engine_shards(n: usize) {
    SHARDS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The shard count a [`run_experiment`] call uses: [`set_engine_shards`]
/// override, else the `MDWORM_SHARDS` environment variable, else the
/// config's `engine.shards` key. 1 means the plain sequential loop.
pub fn engine_shards(config: &SystemConfig) -> usize {
    resolve_shards(
        SHARDS_OVERRIDE.load(Ordering::Relaxed),
        std::env::var("MDWORM_SHARDS").ok().as_deref(),
        config.engine_shards,
    )
}

/// Pure resolution logic behind [`engine_shards`], separated for
/// testability.
fn resolve_shards(override_n: usize, env: Option<&str>, config_n: usize) -> usize {
    if override_n > 0 {
        return override_n;
    }
    if let Some(n) = env.and_then(|v| v.trim().parse::<usize>().ok()) {
        if n > 0 {
            return n;
        }
    }
    config_n.max(1)
}

/// Run-length parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Cycles before measurement starts (messages created earlier are
    /// excluded from statistics).
    pub warmup: Cycle,
    /// Measurement window length; traffic generation stops at its end.
    pub measure: Cycle,
    /// Maximum extra cycles allowed for draining in-flight messages.
    pub drain_max: Cycle,
    /// Watchdog: if in-flight messages exist but no flit moves for this
    /// many cycles, declare deadlock.
    pub watchdog_grace: Cycle,
    /// Fault plan injected into every link; `None` (and no-op plans) keep
    /// the fault-free fast path.
    pub faults: Option<FaultPlan>,
    /// Scripted fabric-link outages: `(fabric link index, down, up)`
    /// cycles, applied to `System::links.fabric[index % len]` after the
    /// build. Unlike the [`FaultPlan`] hazard process these are bounded,
    /// deterministic windows — the storm shape crash sweeps and response
    /// experiments want.
    pub outages: Vec<(usize, Cycle, Cycle)>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup: 5_000,
            measure: 40_000,
            drain_max: 200_000,
            watchdog_grace: 20_000,
            faults: None,
            outages: Vec::new(),
        }
    }
}

/// Upper bound on the drain-phase probe step: how many cycles the engine
/// runs between checks of the outstanding-message count and the deadlock
/// watchdog.
const PROBE: Cycle = 500;

/// Cycles between fault-responder polls while a responder is attached.
/// Half the default debounce window, so a confirmed transition is acted on
/// at most one poll after it matures.
const RESPONDER_POLL: Cycle = 32;

/// The drain probe step actually taken: at most [`PROBE`] cycles, but
/// never more than half the watchdog grace (so stalls are noticed
/// promptly), at least 1 (so degenerate graces still make progress), and
/// never more than the cycles `remaining` in the drain budget (so the run
/// cannot overshoot `stop_at + drain_max`).
fn drain_probe_step(watchdog_grace: Cycle, remaining: Cycle) -> Cycle {
    PROBE.min(watchdog_grace / 2).max(1).min(remaining)
}

impl RunConfig {
    /// A small run for tests and smoke benchmarks.
    pub fn quick() -> Self {
        RunConfig {
            warmup: 1_000,
            measure: 6_000,
            drain_max: 60_000,
            watchdog_grace: 10_000,
            faults: None,
            outages: Vec::new(),
        }
    }
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Offered load the workload was configured for.
    pub offered_load: f64,
    /// Multicast latency to the last destination (the paper's metric).
    pub mcast_last: Summary,
    /// Mean-over-destinations multicast latency.
    pub mcast_avg: Summary,
    /// Unicast latency.
    pub unicast: Summary,
    /// Delivered payload flits per node per cycle over the measurement
    /// window (each destination's copy counts).
    pub throughput: f64,
    /// Completed multicasts in the window.
    pub completed_mcasts: u64,
    /// Completed unicasts in the window.
    pub completed_unicasts: u64,
    /// Messages still undelivered when the run ended (should be 0 unless
    /// saturated or deadlocked).
    pub leftover: usize,
    /// The drain phase did not finish: the network could not keep up.
    pub saturated: bool,
    /// The watchdog saw in-flight traffic make no progress.
    pub deadlocked: bool,
    /// Forensic snapshot captured when the watchdog fired: buffer
    /// occupancy, blocked worms, and the wait-for cycle.
    pub deadlock: Option<DeadlockReport>,
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Mean ejection-link utilization over the whole run (flits per link
    /// per cycle) — the scheme-independent capacity bound.
    pub eject_utilization: f64,
    /// Mean inter-switch fabric-link utilization over the whole run.
    pub fabric_utilization: f64,
    /// Faults the links actually injected (all zero on fault-free runs).
    pub faults: FaultCounters,
    /// Host-side recovery activity (all zero when recovery is disabled).
    pub recovery: RecoveryCounters,
    /// Gate/split degradation activity (all zero without fault response).
    pub degrade: DegradeCounters,
    /// Fault-responder activity (all zero without fault response).
    pub response: ResponseCounters,
    /// Responder event-log entries plus latency samples evicted by their
    /// ring bounds (0 without fault response) — how much history the
    /// bounded logs shed over the run.
    pub response_dropped: u64,
    /// Structural-vet memo activity (hits, misses, LRU evictions; all
    /// zero without fault response).
    pub vet_memo: MemoStats,
    /// Deep-vet (bounded model check) memo activity.
    pub deep_memo: MemoStats,
    /// FNV-64 digest of the responder's full durable state at run end
    /// (`None` without fault response). A crashed-and-recovered run must
    /// reproduce the uncrashed oracle's digest exactly.
    pub response_digest: Option<String>,
    /// Cycles the engine's torn-install audit flagged: committed table
    /// epochs diverged across switches with no armed commit explaining
    /// the laggard. Always 0 when the audit is off (`epoch.audit`); must
    /// stay 0 when it is on, crash recovery included.
    pub torn_cycles: u64,
}

/// Builds the system, applies the workload and measures it.
///
/// Traffic runs for `run.warmup + run.measure` cycles; statistics cover
/// messages created inside the measurement window; afterwards the system
/// drains (no new traffic) until empty, `run.drain_max` elapses, or the
/// watchdog fires.
pub fn run_experiment(config: &SystemConfig, spec: &TrafficSpec, run: &RunConfig) -> RunOutcome {
    let n = config.n_hosts();
    let stop_at = run.warmup + run.measure;
    let sources = make_sources(spec, n, config.seed, Some(stop_at));
    let mut sys = build_system(config.clone(), sources, None);
    // Engine selection: ≥ 2 shards compiles the cycle loop (bit-identical
    // results, see DESIGN.md §13); 1 keeps the sequential oracle.
    let shards = engine_shards(config);
    if shards > 1 {
        sys.engine.set_shards(shards);
    }
    #[cfg(feature = "invariant-audit")]
    for trace in &sys.sem_traces {
        trace.borrow_mut().set_enabled(true);
    }
    if config.epoch_audit {
        sys.engine.enable_epoch_audit();
    }
    if let Some(plan) = &run.faults {
        sys.engine.install_faults(plan);
    }
    if !sys.links.fabric.is_empty() {
        for &(idx, down, up) in &run.outages {
            let link = sys.links.fabric[idx % sys.links.fabric.len()];
            sys.engine.script_outage(link, down, up);
        }
    }
    sys.shared.tracker.borrow_mut().set_measure_from(run.warmup);
    let mut responder = sys
        .config
        .response
        .clone()
        .map(|rc| FaultResponder::new(rc, &mut sys));

    match &mut responder {
        None => sys.engine.run_until(stop_at),
        Some(r) => {
            // The responder needs the engine paused at a steady cadence to
            // drain link events and run quiesce windows; its own protocol
            // phases advance the engine too, so re-check the clock.
            while sys.engine.now() < stop_at {
                let step = RESPONDER_POLL.min(stop_at - sys.engine.now());
                sys.engine.run_for(step);
                r.poll(&mut sys);
            }
        }
    }

    // Drain with watchdog. The probe step is clamped both by the watchdog
    // grace (so stalls are noticed promptly) and by the cycles left in the
    // drain budget (so the run never overshoots `stop_at + drain_max`).
    let drain_end = stop_at + run.drain_max;
    let mut deadlocked = false;
    let mut last_moves = sys.engine.total_flit_moves();
    let mut last_progress = sys.engine.now();
    while sys.tracker().borrow().outstanding() > 0 && sys.engine.now() < drain_end && !deadlocked {
        let step = drain_probe_step(run.watchdog_grace, drain_end - sys.engine.now());
        sys.engine.run_for(step);
        if let Some(r) = &mut responder {
            r.poll(&mut sys);
        }
        let moves = sys.engine.total_flit_moves();
        if moves != last_moves {
            last_moves = moves;
            last_progress = sys.engine.now();
        } else if sys.engine.now() - last_progress >= run.watchdog_grace {
            deadlocked = true;
        }
    }

    // Trace-conformance refinement check: every reservation/release the
    // switches recorded must replay cleanly through the pure `cq_step`
    // machine the model checker explores.
    #[cfg(feature = "invariant-audit")]
    {
        let swcfg = config.effective_switch();
        for trace in &sys.sem_traces {
            if let Err(m) = mdw_analysis::replay_cq_trace(
                trace.borrow().events(),
                swcfg.cq_chunks,
                swcfg.cq_down_reserve(),
            ) {
                panic!("trace-conformance replay failed: {m}");
            }
        }
    }

    let deadlock = deadlocked.then(|| capture_deadlock_report(&mut sys, last_progress));
    // Catch sleeping switches' per-cycle gauges up before stats are read
    // (no-op on the sequential path).
    sys.engine.flush();
    let utilization = sys.link_utilization();
    let recovery = sys.shared.recovery.borrow().counters;
    let tracker = sys.tracker();
    let tracker = tracker.borrow();
    let leftover = tracker.outstanding();
    RunOutcome {
        offered_load: spec.load,
        mcast_last: tracker.mcast_last.summary(),
        mcast_avg: tracker.mcast_avg.summary(),
        unicast: tracker.unicast.summary(),
        throughput: tracker.payload_delivered() as f64 / n as f64 / run.measure as f64,
        completed_mcasts: tracker.completed_mcasts(),
        completed_unicasts: tracker.completed_unicasts(),
        leftover,
        saturated: leftover > 0 && !deadlocked,
        deadlocked,
        deadlock,
        cycles: sys.engine.now(),
        eject_utilization: utilization.eject,
        fabric_utilization: utilization.fabric,
        faults: sys.engine.fault_counters(),
        recovery,
        degrade: sys.fabric_mode.counters(),
        response: responder.as_ref().map(|r| r.counters()).unwrap_or_default(),
        response_dropped: responder.as_ref().map(|r| r.dropped()).unwrap_or_default(),
        vet_memo: responder
            .as_ref()
            .map(|r| r.vet_memo_stats())
            .unwrap_or_default(),
        deep_memo: responder
            .as_ref()
            .map(|r| r.deep_memo_stats())
            .unwrap_or_default(),
        response_digest: responder.as_ref().map(|r| r.state_digest()),
        torn_cycles: sys
            .engine
            .epoch_audit()
            .map(|a| a.torn_cycles)
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{McastImpl, SwitchArch, TopologyKind};

    fn small_cfg(arch: SwitchArch, mcast: McastImpl) -> SystemConfig {
        SystemConfig {
            topology: TopologyKind::KaryTree { k: 2, n: 3 }, // 8 hosts
            arch,
            mcast,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn light_unicast_load_is_clean() {
        let cfg = small_cfg(SwitchArch::CentralBuffer, McastImpl::HwBitString);
        let spec = TrafficSpec::unicast(0.05, 32);
        let out = run_experiment(&cfg, &spec, &RunConfig::quick());
        assert!(!out.deadlocked, "deadlock under light load");
        assert!(!out.saturated, "saturation under light load");
        assert_eq!(out.leftover, 0);
        assert!(out.completed_unicasts > 10);
        assert!(out.unicast.mean > 0.0);
        assert!(out.throughput > 0.0);
    }

    #[test]
    fn light_multicast_load_all_schemes_deliver() {
        for (arch, mcast) in [
            (SwitchArch::CentralBuffer, McastImpl::HwBitString),
            (SwitchArch::InputBuffered, McastImpl::HwBitString),
            (SwitchArch::CentralBuffer, McastImpl::SwBinomial),
        ] {
            let cfg = small_cfg(arch, mcast);
            let spec = TrafficSpec::multiple_multicast(0.03, 4, 32);
            let out = run_experiment(&cfg, &spec, &RunConfig::quick());
            assert!(!out.deadlocked, "{arch:?}/{mcast:?} deadlocked");
            assert_eq!(out.leftover, 0, "{arch:?}/{mcast:?} left messages");
            assert!(out.completed_mcasts > 5, "{arch:?}/{mcast:?}");
        }
    }

    #[test]
    fn heavy_load_saturates_not_deadlocks() {
        let cfg = small_cfg(SwitchArch::CentralBuffer, McastImpl::HwBitString);
        let spec = TrafficSpec::multiple_multicast(0.9, 7, 64);
        let run = RunConfig {
            warmup: 500,
            measure: 4_000,
            drain_max: 2_000, // deliberately too short to drain
            watchdog_grace: 10_000,
            faults: None,
            outages: Vec::new(),
        };
        let out = run_experiment(&cfg, &spec, &run);
        assert!(!out.deadlocked, "watchdog fired under saturation");
    }

    #[test]
    fn eject_utilization_tracks_delivered_load() {
        // Below saturation, ejection-link usage ≈ delivered payload plus
        // header overhead, independent of scheme.
        let cfg = small_cfg(SwitchArch::CentralBuffer, McastImpl::HwBitString);
        let spec = TrafficSpec::multiple_multicast(0.3, 4, 32);
        let run = RunConfig::quick();
        let out = run_experiment(&cfg, &spec, &run);
        assert!(!out.deadlocked);
        // Headers add ~2/34 for this configuration; warm-up/drain phases
        // dilute the average, so accept a broad band around the load.
        assert!(
            out.eject_utilization > 0.15 && out.eject_utilization < 0.45,
            "eject utilization {} for load 0.3",
            out.eject_utilization
        );
        assert!(out.fabric_utilization > 0.0);
    }

    #[test]
    fn drain_probe_step_clamps() {
        // Nominal: a generous grace leaves the full PROBE step.
        assert_eq!(drain_probe_step(20_000, 1 << 30), PROBE);
        // Tight grace halves the step so stalls are noticed in time.
        assert_eq!(drain_probe_step(600, 1 << 30), 300);
        // Degenerate graces still make progress.
        assert_eq!(drain_probe_step(0, 1 << 30), 1);
        assert_eq!(drain_probe_step(1, 1 << 30), 1);
        // The drain_max < watchdog_grace/2 edge: the remaining budget is
        // the binding clamp, never the grace-derived step.
        assert_eq!(drain_probe_step(20_000, 123), 123);
        assert_eq!(drain_probe_step(20_000, 1), 1);
        // ...and a remaining budget above the grace clamp leaves the
        // grace clamp binding.
        assert_eq!(drain_probe_step(100, 123), 50);
    }

    #[test]
    fn drain_probe_never_overshoots_the_budget() {
        // With an odd, tiny drain budget the probe step must shrink to the
        // remaining cycles instead of sailing past `stop_at + drain_max`.
        let cfg = small_cfg(SwitchArch::CentralBuffer, McastImpl::HwBitString);
        let spec = TrafficSpec::multiple_multicast(0.9, 7, 64);
        let run = RunConfig {
            warmup: 500,
            measure: 4_000,
            drain_max: 123,
            watchdog_grace: 10_000,
            faults: None,
            outages: Vec::new(),
        };
        let out = run_experiment(&cfg, &spec, &run);
        assert!(
            out.saturated,
            "load 0.9 with a 123-cycle drain must saturate"
        );
        assert_eq!(
            out.cycles,
            run.warmup + run.measure + run.drain_max,
            "drain ran past its budget"
        );
    }

    #[test]
    fn faulty_links_with_recovery_still_deliver_everything() {
        let mut cfg = small_cfg(SwitchArch::CentralBuffer, McastImpl::HwBitString);
        cfg.recovery = Some(collectives::RecoveryConfig {
            timeout: 1_500,
            timeout_cap: 12_000,
            max_retries: 10,
        });
        let spec = TrafficSpec::multiple_multicast(0.03, 4, 32);
        let run = RunConfig {
            faults: Some(netsim::FaultPlan::drops(9, 1e-3)),
            ..RunConfig::quick()
        };
        let out = run_experiment(&cfg, &spec, &run);
        assert!(!out.deadlocked);
        assert_eq!(out.leftover, 0, "recovery must re-deliver dropped worms");
        assert!(out.faults.worms_dropped > 0, "fault plan never fired");
        assert!(out.recovery.retransmits > 0, "drops must trigger resends");
        assert_eq!(out.recovery.gave_up, 0);
    }

    #[test]
    fn permanent_outage_wedges_and_watchdog_reports() {
        // Every link dies within ~100 cycles and never comes back; without
        // recovery the network freezes and the watchdog must produce a
        // forensic report through the run_experiment path.
        let cfg = small_cfg(SwitchArch::CentralBuffer, McastImpl::HwBitString);
        let spec = TrafficSpec::multiple_multicast(0.1, 4, 32);
        let run = RunConfig {
            warmup: 500,
            measure: 2_000,
            drain_max: 60_000,
            watchdog_grace: 3_000,
            faults: Some(netsim::FaultPlan {
                down_every: 50,
                down_len: 1 << 40,
                ..netsim::FaultPlan::none(5)
            }),
            outages: Vec::new(),
        };
        let out = run_experiment(&cfg, &spec, &run);
        assert!(out.deadlocked, "a fully cut network cannot drain");
        assert!(out.faults.down_cycles > 0);
        let report = out.deadlock.expect("deadlock implies a report");
        assert!(report.outstanding_messages > 0);
        assert_eq!(report.outstanding_messages, out.leftover);
        // An outage stall is not a circular wait, so `cycle` may well be
        // empty — but any reported cycle must be made of real edges.
        for pair in report.cycle.windows(2) {
            assert!(report
                .wait_edges
                .iter()
                .any(|e| e.from_link == pair[0] && e.to_link == pair[1]));
        }
    }

    #[test]
    fn shards_resolution_precedence() {
        assert_eq!(resolve_shards(3, Some("7"), 1), 3, "override wins");
        assert_eq!(resolve_shards(0, Some("7"), 1), 7, "env var next");
        assert_eq!(resolve_shards(0, Some(" 5 "), 1), 5, "env var is trimmed");
        assert_eq!(resolve_shards(0, Some("garbage"), 2), 2, "bad env ignored");
        assert_eq!(resolve_shards(0, None, 4), 4, "config key last");
        assert_eq!(resolve_shards(0, None, 0), 1, "floor at 1");
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let cfg = small_cfg(SwitchArch::CentralBuffer, McastImpl::HwBitString);
        let spec = TrafficSpec::bimodal(0.1, 0.2, 3, 16);
        let a = run_experiment(&cfg, &spec, &RunConfig::quick());
        let b = run_experiment(&cfg, &spec, &RunConfig::quick());
        assert_eq!(a.completed_mcasts, b.completed_mcasts);
        assert_eq!(a.completed_unicasts, b.completed_unicasts);
        assert_eq!(a.mcast_last, b.mcast_last);
        assert_eq!(a.cycles, b.cycles);
    }
}
