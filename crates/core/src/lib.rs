//! # mdworm — reproduction of *Implementing Multidestination Worms in
//! Switch-Based Parallel Systems: Architectural Alternatives and their
//! Impact* (Stunkel, Sivaram & Panda, ISCA 1997)
//!
//! This crate ties the substrates together into runnable systems and
//! experiments:
//!
//! * [`config::SystemConfig`] — topology (k-ary tree / butterfly /
//!   irregular), switch architecture (central-buffer / input-buffer),
//!   multicast scheme (bit-string HW / multiport HW / U-Min SW), timing;
//! * [`build::build_system`] — wires hosts, switches and links into a
//!   deterministic [`netsim::engine::Engine`];
//! * [`workload`] — the paper's traffic mixes (multiple multicast,
//!   bimodal, degree/length/size sweeps);
//! * [`sim::run_experiment`] — warm-up / measure / drain harness with a
//!   deadlock watchdog, optional link-fault injection and end-to-end
//!   recovery;
//! * [`forensics`] — structured [`forensics::DeadlockReport`] (buffer
//!   occupancy, blocked worms, wait-for cycle) when the watchdog fires;
//! * [`sweep`] — parallel fan-out of independent runs over a worker pool
//!   (thread-confined engines, deterministic result order);
//! * [`experiments`] — the E1..E11 suite mapped to the paper's evaluation
//!   (see DESIGN.md and EXPERIMENTS.md);
//! * [`report`] — markdown/CSV result tables.
//!
//! ## Quickstart
//!
//! ```
//! use mdworm::config::{SystemConfig, TopologyKind};
//! use mdworm::sim::{run_experiment, RunConfig};
//! use mdworm::workload::TrafficSpec;
//!
//! // 8-processor tree, light multiple-multicast traffic, short run.
//! let cfg = SystemConfig {
//!     topology: TopologyKind::KaryTree { k: 2, n: 3 },
//!     ..SystemConfig::default()
//! };
//! let spec = TrafficSpec::multiple_multicast(0.02, 4, 16);
//! let out = run_experiment(&cfg, &spec, &RunConfig::quick());
//! assert!(!out.deadlocked);
//! assert!(out.completed_mcasts > 0);
//! ```

pub mod build;
pub mod cfgtext;
pub mod chaos;
pub mod config;
pub mod experiments;
pub mod forensics;
pub mod journal;
pub mod report;
pub mod respond;
pub mod routed;
pub mod sim;
pub mod sweep;
pub mod workload;

pub use build::{build_system, System};
pub use cfgtext::parse_config;
pub use config::{
    CertifyComparison, CertifyConfig, McastImpl, SwitchArch, SystemConfig, TopologyKind,
};
pub use forensics::{capture_deadlock_report, DeadlockReport};
pub use mdw_analysis::{ConfigReport, Diagnostic, Severity};
pub use respond::{FaultResponder, MemoStats, ResponseConfig, ResponseCounters, ResponseEvent};
pub use routed::{RoutedConfig, RoutedService, StormResponder};
pub use sim::{run_experiment, RunConfig, RunOutcome};
pub use sweep::{parallel_map, run_sweep, SweepJob};
pub use workload::{make_sources, RandomTraffic, TrafficSpec};
