//! Result-table rendering: markdown for the console, CSV for files.

/// A result row that knows how to print itself.
pub trait TableRow {
    /// Column headers.
    fn headers() -> Vec<&'static str>;
    /// Cell values, aligned with [`TableRow::headers`].
    fn cells(&self) -> Vec<String>;
}

/// Renders rows as a GitHub-flavored markdown table.
pub fn markdown_table<T: TableRow>(rows: &[T]) -> String {
    let headers = T::headers();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let cells: Vec<Vec<String>> = rows.iter().map(TableRow::cells).collect();
    for row in &cells {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cols: &[String], widths: &[usize]| -> String {
        let body: Vec<String> = cols
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        format!("| {} |\n", body.join(" | "))
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&dashes, &widths));
    for row in &cells {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders rows as CSV (header line + one line per row).
pub fn csv<T: TableRow>(rows: &[T]) -> String {
    let mut out = String::new();
    out.push_str(&T::headers().join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .cells()
            .into_iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        a: u32,
        b: f64,
    }
    impl TableRow for Demo {
        fn headers() -> Vec<&'static str> {
            vec!["a", "b"]
        }
        fn cells(&self) -> Vec<String> {
            vec![self.a.to_string(), f(self.b)]
        }
    }

    #[test]
    fn markdown_shape() {
        let t = markdown_table(&[Demo { a: 1, b: 0.5 }, Demo { a: 22, b: 123.4 }]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[1].contains("--"));
        assert!(lines[3].contains("123"));
    }

    #[test]
    fn csv_shape() {
        let t = csv(&[Demo { a: 1, b: 2.0 }]);
        assert_eq!(t, "a,b\n1,2.0\n");
    }

    #[test]
    fn csv_quotes_commas() {
        struct Q;
        impl TableRow for Q {
            fn headers() -> Vec<&'static str> {
                vec!["x"]
            }
            fn cells(&self) -> Vec<String> {
                vec!["a,b".to_string()]
            }
        }
        assert_eq!(csv(&[Q]), "x\n\"a,b\"\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.1234), "0.1234");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(1234.6), "1235");
    }
}
