//! Result-table rendering: markdown for the console, CSV for files, and
//! JSON for deadlock forensics.

use crate::forensics::DeadlockReport;

/// A result row that knows how to print itself.
pub trait TableRow {
    /// Column headers.
    fn headers() -> Vec<&'static str>;
    /// Cell values, aligned with [`TableRow::headers`].
    fn cells(&self) -> Vec<String>;
}

/// Renders rows as a GitHub-flavored markdown table.
pub fn markdown_table<T: TableRow>(rows: &[T]) -> String {
    let headers = T::headers();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let cells: Vec<Vec<String>> = rows.iter().map(TableRow::cells).collect();
    for row in &cells {
        for (w, c) in widths.iter_mut().zip(row) {
            *w = (*w).max(c.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cols: &[String], widths: &[usize]| -> String {
        let body: Vec<String> = cols
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        format!("| {} |\n", body.join(" | "))
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&dashes, &widths));
    for row in &cells {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders rows as CSV (header line + one line per row).
pub fn csv<T: TableRow>(rows: &[T]) -> String {
    let mut out = String::new();
    out.push_str(&T::headers().join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .cells()
            .into_iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Serializes a [`DeadlockReport`] as pretty-printed JSON.
///
/// Hand-rolled (the workspace carries no serde dependency); every value is
/// a number, an array of numbers, or one of a fixed set of state labels,
/// so no string escaping is needed.
pub fn deadlock_json(r: &DeadlockReport) -> String {
    fn ints<T: ToString, I: IntoIterator<Item = T>>(v: I) -> String {
        let body: Vec<String> = v.into_iter().map(|x| x.to_string()).collect();
        format!("[{}]", body.join(","))
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"at_cycle\": {},\n", r.at_cycle));
    out.push_str(&format!(
        "  \"last_progress_cycle\": {},\n",
        r.last_progress_cycle
    ));
    out.push_str(&format!(
        "  \"outstanding_messages\": {},\n",
        r.outstanding_messages
    ));
    out.push_str(&format!("  \"cycle\": {},\n", ints(r.cycle.iter())));
    let edges: Vec<String> = r
        .wait_edges
        .iter()
        .map(|e| {
            format!(
                "    {{\"from_link\": {}, \"to_link\": {}, \"switch\": {}}}",
                e.from_link, e.to_link, e.switch
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"wait_edges\": [\n{}\n  ],\n",
        edges.join(",\n")
    ));
    let switches: Vec<String> = r
        .switches
        .iter()
        .map(|d| {
            let worms: Vec<String> = d
                .snapshot
                .blocked
                .iter()
                .map(|w| {
                    format!(
                        "      {{\"input\": {}, \"packet\": {}, \"msg\": {}, \
                         \"src\": {}, \"state\": \"{}\", \"remaining_dests\": {}, \
                         \"holds_outputs\": {}, \"waits_outputs\": {}}}",
                        w.input.map_or("null".to_string(), |i| i.to_string()),
                        w.packet,
                        w.msg,
                        w.src,
                        w.state,
                        ints(w.remaining_dests.iter()),
                        ints(w.holds_outputs.iter()),
                        ints(w.waits_outputs.iter()),
                    )
                })
                .collect();
            format!(
                "    {{\"switch\": {}, \"cq_used_chunks\": {}, \
                 \"cq_free_chunks\": {}, \"input_occupancy\": {},\n\
                 \"blocked_worms\": [\n{}\n    ]}}",
                d.switch,
                d.snapshot.cq_used_chunks,
                d.snapshot.cq_free_chunks,
                ints(d.snapshot.input_occupancy.iter()),
                worms.join(",\n"),
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"switches\": [\n{}\n  ]\n}}\n",
        switches.join(",\n")
    ));
    out
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        a: u32,
        b: f64,
    }
    impl TableRow for Demo {
        fn headers() -> Vec<&'static str> {
            vec!["a", "b"]
        }
        fn cells(&self) -> Vec<String> {
            vec![self.a.to_string(), f(self.b)]
        }
    }

    #[test]
    fn markdown_shape() {
        let t = markdown_table(&[Demo { a: 1, b: 0.5 }, Demo { a: 22, b: 123.4 }]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[1].contains("--"));
        assert!(lines[3].contains("123"));
    }

    #[test]
    fn csv_shape() {
        let t = csv(&[Demo { a: 1, b: 2.0 }]);
        assert_eq!(t, "a,b\n1,2.0\n");
    }

    #[test]
    fn csv_quotes_commas() {
        struct Q;
        impl TableRow for Q {
            fn headers() -> Vec<&'static str> {
                vec!["x"]
            }
            fn cells(&self) -> Vec<String> {
                vec!["a,b".to_string()]
            }
        }
        assert_eq!(csv(&[Q]), "x\n\"a,b\"\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.1234), "0.1234");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(1234.6), "1235");
    }
}
