//! Synthetic traffic generators for the paper's workloads.
//!
//! The evaluation uses (abstract §7): *multiple multicast* (every node
//! multicasts), *bimodal* traffic (a unicast background with a multicast
//! fraction), *varying degree of multicast*, *varying message length*, and
//! *varying system size*. All of these reduce to [`RandomTraffic`]
//! instances with different parameters.
//!
//! **Offered load** is defined as requested *delivery* bandwidth: the
//! expected number of payload flits per node per cycle that destinations
//! should receive, as a fraction of link bandwidth (one flit per cycle). A
//! unicast message of `L` flits contributes `L`; a multicast of degree `d`
//! contributes `d·L`, since every destination must receive a copy — the
//! ejection links are the hard capacity bound no scheme can beat, so load 1
//! is the ideal saturation point regardless of scheme. A load of 0.2 with
//! 64-flit unicasts means each node starts a message every 320 cycles on
//! average; with degree-16 multicasts, every 5120 cycles.

use collectives::{MessageSpec, TrafficSource};
use netsim::ids::NodeId;
use netsim::message::MessageKind;
use netsim::rng::SimRng;
use netsim::Cycle;

/// Unicast destination pattern.
///
/// `Uniform` is the paper's default; the permutations are the classic MIN
/// stress patterns ("other traffic patterns" in the paper's §9 outlook).
/// Permutation patterns require a power-of-two system size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pattern {
    /// Uniformly random destination (excluding the source).
    #[default]
    Uniform,
    /// Destination = source with its address bits reversed.
    BitReversal,
    /// Destination = source with high and low address halves swapped.
    Transpose,
    /// Destination = source + 1 (mod N).
    NearNeighbor,
}

impl Pattern {
    /// The destination this pattern maps `me` to, or `None` when the
    /// pattern maps a node to itself (those nodes fall back to uniform).
    ///
    /// # Panics
    ///
    /// Panics if a permutation pattern is used with a non-power-of-two
    /// system size.
    pub fn dest(&self, me: NodeId, n_hosts: usize) -> Option<NodeId> {
        let bits = n_hosts.trailing_zeros();
        if !matches!(self, Pattern::Uniform) {
            assert!(
                n_hosts.is_power_of_two(),
                "permutation patterns need a power-of-two system size"
            );
        }
        let m = me.index();
        let d = match self {
            Pattern::Uniform => return None,
            Pattern::BitReversal => (m.reverse_bits() >> (usize::BITS - bits)) & (n_hosts - 1),
            Pattern::Transpose => {
                let half = bits / 2;
                let lo_mask = (1 << half) - 1;
                // Swap the low `half` bits with the bits above them.
                ((m & lo_mask) << (bits - half)) | (m >> half)
            }
            Pattern::NearNeighbor => (m + 1) % n_hosts,
        };
        if d == m {
            None
        } else {
            Some(NodeId::from(d))
        }
    }
}

/// Parameters of the random traffic mix.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Offered load in payload flits per node per cycle (0.0 ..= 1.0).
    pub load: f64,
    /// Fraction of messages that are multicasts (0 = pure unicast,
    /// 1 = multiple-multicast).
    pub mcast_fraction: f64,
    /// Destinations per multicast.
    pub degree: usize,
    /// Unicast payload length in flits.
    pub unicast_len: u16,
    /// Multicast payload length in flits.
    pub mcast_len: u16,
    /// Fraction of unicast messages directed at the hot-spot node
    /// (0 disables hot-spot traffic; the paper's §9 names hot-spot impact
    /// as follow-on work).
    pub hotspot_fraction: f64,
    /// The hot-spot node id.
    pub hotspot: u32,
    /// Unicast destination pattern.
    pub pattern: Pattern,
}

impl TrafficSpec {
    /// Pure unicast background at `load` with `len`-flit messages.
    pub fn unicast(load: f64, len: u16) -> Self {
        TrafficSpec {
            load,
            mcast_fraction: 0.0,
            degree: 1,
            unicast_len: len,
            mcast_len: len,
            hotspot_fraction: 0.0,
            hotspot: 0,
            pattern: Pattern::Uniform,
        }
    }

    /// The paper's *multiple multicast* workload: every message is a
    /// multicast of `degree` destinations and `len` payload flits.
    pub fn multiple_multicast(load: f64, degree: usize, len: u16) -> Self {
        TrafficSpec {
            load,
            mcast_fraction: 1.0,
            degree,
            unicast_len: len,
            mcast_len: len,
            hotspot_fraction: 0.0,
            hotspot: 0,
            pattern: Pattern::Uniform,
        }
    }

    /// The paper's *bimodal* workload: `mcast_fraction` of messages are
    /// multicasts of `degree` destinations, the rest unicasts.
    pub fn bimodal(load: f64, mcast_fraction: f64, degree: usize, len: u16) -> Self {
        TrafficSpec {
            load,
            mcast_fraction,
            degree,
            unicast_len: len,
            mcast_len: len,
            hotspot_fraction: 0.0,
            hotspot: 0,
            pattern: Pattern::Uniform,
        }
    }

    /// Directs `fraction` of the unicast messages at `hotspot` instead of
    /// a uniformly random destination (extension workload E12).
    pub fn with_hotspot(mut self, fraction: f64, hotspot: u32) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.hotspot_fraction = fraction;
        self.hotspot = hotspot;
        self
    }

    /// Uses a fixed permutation for unicast destinations (extension
    /// workload E15).
    pub fn with_pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Expected *delivered* payload flits per generated message (multicast
    /// payload counts once per destination).
    pub fn mean_payload(&self) -> f64 {
        (1.0 - self.mcast_fraction) * f64::from(self.unicast_len)
            + self.mcast_fraction * f64::from(self.mcast_len) * self.degree as f64
    }

    /// Per-cycle message-generation probability that realizes `load`.
    pub fn message_probability(&self) -> f64 {
        assert!(self.load >= 0.0, "load must be non-negative");
        assert!(self.mean_payload() > 0.0, "messages must carry payload");
        (self.load / self.mean_payload()).min(1.0)
    }
}

/// A per-host Bernoulli message generator implementing the traffic mix.
#[derive(Debug)]
pub struct RandomTraffic {
    spec: TrafficSpec,
    rng: SimRng,
    me: NodeId,
    n_hosts: usize,
    stop_at: Option<Cycle>,
    generated: u64,
}

impl RandomTraffic {
    /// Creates a generator for host `me` of `n_hosts`, stopping (if given)
    /// at `stop_at` so the system can drain.
    ///
    /// # Panics
    ///
    /// Panics if the degree cannot be satisfied (`degree > n_hosts - 1`).
    pub fn new(
        spec: TrafficSpec,
        rng: SimRng,
        me: NodeId,
        n_hosts: usize,
        stop_at: Option<Cycle>,
    ) -> Self {
        assert!(
            spec.mcast_fraction == 0.0 || spec.degree < n_hosts,
            "multicast degree {} impossible with {} hosts",
            spec.degree,
            n_hosts
        );
        RandomTraffic {
            spec,
            rng,
            me,
            n_hosts,
            stop_at,
            generated: 0,
        }
    }

    /// Messages generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }
}

impl TrafficSource for RandomTraffic {
    fn poll(&mut self, now: Cycle) -> Option<MessageSpec> {
        if self.stop_at.is_some_and(|t| now >= t) {
            return None;
        }
        if !self.rng.chance(self.spec.message_probability()) {
            return None;
        }
        self.generated += 1;
        let is_mcast = self.rng.chance(self.spec.mcast_fraction);
        if is_mcast {
            let dests = self.rng.dest_set(self.n_hosts, self.spec.degree, self.me);
            Some(MessageSpec {
                kind: MessageKind::Multicast(dests),
                payload_flits: self.spec.mcast_len,
            })
        } else {
            let hot = NodeId(self.spec.hotspot);
            let dest = if self.spec.hotspot_fraction > 0.0
                && self.me != hot
                && self.rng.chance(self.spec.hotspot_fraction)
            {
                hot
            } else if let Some(d) = self.spec.pattern.dest(self.me, self.n_hosts) {
                d
            } else {
                self.rng.other_node(self.n_hosts, self.me)
            };
            Some(MessageSpec {
                kind: MessageKind::Unicast(dest),
                payload_flits: self.spec.unicast_len,
            })
        }
    }
}

/// Builds one [`RandomTraffic`] source per host, each with an independent
/// RNG stream forked from `seed`.
pub fn make_sources(
    spec: &TrafficSpec,
    n_hosts: usize,
    seed: u64,
    stop_at: Option<Cycle>,
) -> Vec<Box<dyn TrafficSource>> {
    let root = SimRng::new(seed);
    (0..n_hosts)
        .map(|h| {
            Box::new(RandomTraffic::new(
                spec.clone(),
                root.fork(h as u64),
                NodeId::from(h),
                n_hosts,
                stop_at,
            )) as Box<dyn TrafficSource>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_probability_matches_load() {
        let spec = TrafficSpec::unicast(0.5, 64);
        assert!((spec.message_probability() - 0.5 / 64.0).abs() < 1e-12);
        let mm = TrafficSpec::multiple_multicast(0.2, 16, 32);
        assert!((mm.message_probability() - 0.2 / (16.0 * 32.0)).abs() < 1e-12);
    }

    #[test]
    fn mean_payload_counts_fanout() {
        // 75% unicasts of 64 flits + 25% degree-8 multicasts of 64 flits:
        // 0.75*64 + 0.25*8*64 = 176 delivered flits per message.
        let spec = TrafficSpec::bimodal(0.1, 0.25, 8, 64);
        assert!((spec.mean_payload() - 176.0).abs() < 1e-12);
        let uni = TrafficSpec::unicast(0.1, 32);
        assert!((uni.mean_payload() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn generation_rate_is_close_to_expected() {
        let spec = TrafficSpec::unicast(0.4, 16);
        let mut src = RandomTraffic::new(spec.clone(), SimRng::new(5), NodeId(0), 16, None);
        let cycles = 200_000u64;
        let mut got = 0u64;
        for now in 0..cycles {
            if src.poll(now).is_some() {
                got += 1;
            }
        }
        let expected = spec.message_probability() * cycles as f64;
        let ratio = got as f64 / expected;
        assert!(
            (0.95..1.05).contains(&ratio),
            "rate off: got {got}, expected ~{expected}"
        );
        assert_eq!(src.generated(), got);
    }

    #[test]
    fn bimodal_mixes_kinds() {
        let spec = TrafficSpec::bimodal(0.9, 0.3, 4, 8);
        let mut src = RandomTraffic::new(spec, SimRng::new(9), NodeId(3), 16, None);
        let (mut uni, mut mc) = (0, 0);
        for now in 0..20_000 {
            match src.poll(now) {
                Some(MessageSpec {
                    kind: MessageKind::Unicast(d),
                    ..
                }) => {
                    assert_ne!(d, NodeId(3));
                    uni += 1;
                }
                Some(MessageSpec {
                    kind: MessageKind::Multicast(d),
                    ..
                }) => {
                    assert_eq!(d.count(), 4);
                    assert!(!d.contains(NodeId(3)));
                    mc += 1;
                }
                None => {}
                Some(other) => panic!("unexpected spec {other:?}"),
            }
        }
        assert!(uni > 0 && mc > 0);
        let frac = f64::from(mc) / f64::from(uni + mc);
        assert!((0.2..0.4).contains(&frac), "multicast fraction {frac}");
    }

    #[test]
    fn patterns_are_permutations() {
        for (pattern, n) in [
            (Pattern::BitReversal, 64usize),
            (Pattern::Transpose, 64),
            (Pattern::NearNeighbor, 64),
            (Pattern::BitReversal, 16),
            (Pattern::Transpose, 16),
        ] {
            let mut seen = std::collections::HashSet::new();
            for m in 0..n {
                let d = pattern.dest(NodeId::from(m), n).map_or(m, |d| d.index());
                seen.insert(d);
            }
            assert_eq!(seen.len(), n, "{pattern:?} over {n} is a bijection");
        }
        // Concrete spot checks: 64 nodes = 6 bits.
        assert_eq!(
            Pattern::BitReversal.dest(NodeId(1), 64),
            Some(NodeId(32)),
            "000001 reversed is 100000"
        );
        assert_eq!(
            Pattern::Transpose.dest(NodeId(7), 64),
            Some(NodeId(0b111_000)),
            "low half moves to the top"
        );
        assert_eq!(Pattern::NearNeighbor.dest(NodeId(63), 64), Some(NodeId(0)));
        // Fixed points fall back to uniform.
        assert_eq!(Pattern::BitReversal.dest(NodeId(0), 64), None);
        assert_eq!(Pattern::Uniform.dest(NodeId(5), 64), None);
    }

    #[test]
    fn pattern_traffic_targets_the_permutation() {
        let spec = TrafficSpec::unicast(0.9, 4).with_pattern(Pattern::NearNeighbor);
        let mut src = RandomTraffic::new(spec, SimRng::new(8), NodeId(3), 16, None);
        for now in 0..2000 {
            if let Some(MessageSpec {
                kind: MessageKind::Unicast(d),
                ..
            }) = src.poll(now)
            {
                assert_eq!(d, NodeId(4));
            }
        }
    }

    #[test]
    fn hotspot_fraction_biases_destinations() {
        let spec = TrafficSpec::unicast(0.9, 4).with_hotspot(0.5, 7);
        let mut src = RandomTraffic::new(spec, SimRng::new(3), NodeId(0), 16, None);
        let (mut hot, mut total) = (0u32, 0u32);
        for now in 0..40_000 {
            if let Some(MessageSpec {
                kind: MessageKind::Unicast(d),
                ..
            }) = src.poll(now)
            {
                total += 1;
                if d == NodeId(7) {
                    hot += 1;
                }
            }
        }
        let frac = f64::from(hot) / f64::from(total);
        // 50% directed + ~1/15 of the random remainder.
        assert!((0.45..0.65).contains(&frac), "hotspot fraction {frac}");
        // The hotspot node itself never targets the hotspot deliberately.
        let spec2 = TrafficSpec::unicast(0.9, 4).with_hotspot(1.0, 7);
        let mut hotsrc = RandomTraffic::new(spec2, SimRng::new(4), NodeId(7), 16, None);
        for now in 0..1000 {
            if let Some(MessageSpec {
                kind: MessageKind::Unicast(d),
                ..
            }) = hotsrc.poll(now)
            {
                assert_ne!(d, NodeId(7));
            }
        }
    }

    #[test]
    fn stop_at_silences_the_source() {
        let spec = TrafficSpec::unicast(1.0, 1);
        let mut src = RandomTraffic::new(spec, SimRng::new(1), NodeId(0), 4, Some(100));
        assert!(src.poll(50).is_some());
        assert!(src.poll(100).is_none());
        assert!(src.poll(5000).is_none());
    }

    #[test]
    fn sources_are_decorrelated_but_deterministic() {
        let spec = TrafficSpec::unicast(0.5, 8);
        let mk = |seed| {
            let v = make_sources(&spec, 4, seed, None);
            v.len()
        };
        assert_eq!(mk(1), 4);
        // Two hosts with the same seed root behave identically per index.
        let mut a = make_sources(&spec, 2, 7, None);
        let mut b = make_sources(&spec, 2, 7, None);
        for now in 0..200 {
            assert_eq!(a[0].poll(now).is_some(), b[0].poll(now).is_some());
        }
    }
}
