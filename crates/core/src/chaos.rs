//! Deterministic crash injection for the journaled fault responder
//! (DESIGN.md §15).
//!
//! The harness models a **control-plane process crash**: the
//! [`crate::respond::FaultResponder`] loses all in-memory state at a
//! chosen protocol-step boundary, while the fabric — engine, switches,
//! staged prepares, gate/purge flags, the journal bytes — survives,
//! exactly as an SP2 service-processor restart leaves the switch fabric
//! running. Recovery replays the journal and re-drives whatever episode
//! was in flight; the restart itself consumes zero simulated cycles, so a
//! recovered run must end in a [`crate::sim::RunOutcome`] byte-identical
//! to an uncrashed one. The sweep driver ([`run_crash_sweep`]) asserts
//! exactly that at *every* boundary of the protocol, in the same
//! exhaustive spirit as the PR-1 [`netsim::FaultPlan`] fault schedules.
//!
//! Crash sites are counted, not named: a `Record`-mode oracle run first
//! counts how many boundaries the protocol actually crosses (every
//! journal-apply step, plus each per-switch prepare and commit — the
//! "crash after prepare on switch k" and torn-commit windows), then one
//! injected run per boundary index crashes there. Each boundary is also
//! swept with a **dirty tail**: the crashed process had started writing
//! its next journal record and died mid-line, leaving a torn,
//! checksum-failing fragment that recovery must fence off. (Records
//! already appended are durable by the WAL convention — the harness
//! never deletes durable bytes, it only adds torn ones.)

use crate::config::SystemConfig;
use crate::journal::JournalStore;
use crate::sim::{run_experiment, RunConfig, RunOutcome};
use crate::workload::TrafficSpec;
use mdw_analysis::Samples;
use std::cell::RefCell;
use std::rc::Rc;

/// The responder process died. Unwinds the response protocol out to the
/// public entry points, which recover in place ([`crate::respond::FaultResponder`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crashed;

/// What the injection handle does at each protocol-step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Count boundaries, never crash — the oracle pass that sizes the
    /// sweep.
    Record,
    /// Crash (once) when the running boundary counter hits `boundary`.
    CrashAt {
        /// Zero-based index of the boundary to crash at.
        boundary: u64,
        /// Bytes of a torn partial record to append to the journal at
        /// the crash (0 = the process died between appends).
        tear_bytes: usize,
    },
}

/// Shared state between a responder under test and the harness.
#[derive(Debug)]
pub struct ChaosState {
    /// The injection schedule.
    pub mode: ChaosMode,
    /// Boundaries crossed so far (also the next boundary's index).
    pub boundaries: u64,
    /// The scheduled crash already fired (single-shot).
    pub fired: bool,
    /// Recoveries the responder completed.
    pub recoveries: u64,
    /// Wall-clock restart→caught-up duration of each recovery, ns.
    pub recovery_ns: Vec<u64>,
}

/// The harness's end of the injection channel.
pub type ChaosHandle = Rc<RefCell<ChaosState>>;

/// A fresh injection handle in the given mode.
pub fn handle(mode: ChaosMode) -> ChaosHandle {
    Rc::new(RefCell::new(ChaosState {
        mode,
        boundaries: 0,
        fired: false,
        recoveries: 0,
        recovery_ns: Vec::new(),
    }))
}

thread_local! {
    static INSTALLED: RefCell<Option<ChaosHandle>> = const { RefCell::new(None) };
}

/// Arms the next [`crate::respond::FaultResponder::new`] on this thread
/// with an injection handle. The constructor consumes it, so one install
/// covers exactly one responder — typically the one
/// [`crate::sim::run_experiment`] builds internally.
pub fn install(h: ChaosHandle) {
    INSTALLED.with(|slot| *slot.borrow_mut() = Some(h));
}

/// Consumes the installed handle, if any.
pub(crate) fn take_installed() -> Option<ChaosHandle> {
    INSTALLED.with(|slot| slot.borrow_mut().take())
}

/// Appends `n` bytes of a torn partial record (no trailing newline, no
/// valid checksum) to a journal store: the crashed writer died mid-way
/// through its next append. Recovery's intact-prefix rule drops the
/// fragment; no durable record is touched.
pub(crate) fn dirty_tail(store: &JournalStore, n: usize) {
    let frag: String = "v1 0 prepared 999 1 0:1 "
        .bytes()
        .cycle()
        .take(n.max(1))
        .map(char::from)
        .collect();
    store.borrow_mut().push_str(&frag);
}

/// Verdict of one exhaustive crash sweep.
#[derive(Debug, Clone)]
pub struct CrashSweepOutcome {
    /// Protocol-step boundaries the oracle run crossed (= crash sites
    /// swept per tear variant).
    pub boundaries: u64,
    /// Injected runs executed (boundaries × tear variants).
    pub runs: u64,
    /// Boundary indices whose recovered [`RunOutcome`] diverged from the
    /// oracle's, with the tear size that exposed them. Empty = every
    /// crash recovered to byte-identical state.
    pub mismatches: Vec<(u64, usize)>,
    /// Torn-install cycles summed over every injected run (the engine's
    /// epoch audit; 0 = no run ever left committed epochs diverged).
    pub torn_cycles: u64,
    /// Recoveries completed across all injected runs.
    pub recoveries: u64,
    /// Restart→caught-up wall-clock latencies of every recovery, ns
    /// (p50/p99 of this series are the headline recovery metrics).
    pub recovery_ns: Samples,
    /// The oracle outcome the injected runs were held to.
    pub oracle: RunOutcome,
}

/// Sweeps a deterministic crash through **every** protocol-step boundary
/// of a run: first an uncrashed `Record`-mode oracle counts the
/// boundaries, then one injected run per (boundary, tear-size) pair
/// crashes there and the recovered outcome is compared to the oracle
/// byte-for-byte (`Debug` formatting is exact, including floats).
///
/// `tears` lists the dirty-tail sizes to sweep *in addition to* the
/// clean crash (`0` bytes, always included).
pub fn run_crash_sweep(
    config: &SystemConfig,
    spec: &TrafficSpec,
    run: &RunConfig,
    tears: &[usize],
) -> CrashSweepOutcome {
    assert!(
        config.response.is_some(),
        "crash sweep needs a responder (config.response)"
    );
    // Memo hit/miss counters are process-local observability, not durable
    // state: journal replay re-inserts vet verdicts without looking them
    // up, so a crashed-and-recovered run reaches the same durable state
    // through a different lookup sequence. They are cleared before the
    // byte comparison (recovery wall-times are likewise excluded);
    // everything else must match exactly.
    fn comparable(outcome: &RunOutcome) -> RunOutcome {
        RunOutcome {
            vet_memo: Default::default(),
            deep_memo: Default::default(),
            ..outcome.clone()
        }
    }

    let oracle_h = handle(ChaosMode::Record);
    install(oracle_h.clone());
    let oracle = run_experiment(config, spec, run);
    let boundaries = oracle_h.borrow().boundaries;
    let oracle_repr = format!("{:?}", comparable(&oracle));

    let mut tear_sizes = vec![0usize];
    tear_sizes.extend(tears.iter().copied().filter(|&t| t > 0));

    let mut out = CrashSweepOutcome {
        boundaries,
        runs: 0,
        mismatches: Vec::new(),
        torn_cycles: 0,
        recoveries: 0,
        recovery_ns: Samples::new(),
        oracle,
    };
    for boundary in 0..boundaries {
        for &tear_bytes in &tear_sizes {
            let h = handle(ChaosMode::CrashAt {
                boundary,
                tear_bytes,
            });
            install(h.clone());
            let outcome = run_experiment(config, spec, run);
            out.runs += 1;
            out.torn_cycles += outcome.torn_cycles;
            if format!("{:?}", comparable(&outcome)) != oracle_repr {
                out.mismatches.push((boundary, tear_bytes));
            }
            let st = h.borrow();
            debug_assert!(st.fired, "boundary {boundary} was counted by the oracle");
            out.recoveries += st.recoveries;
            for &ns in &st.recovery_ns {
                out.recovery_ns.record(ns);
            }
        }
    }
    INSTALLED.with(|slot| *slot.borrow_mut() = None);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig, JournalRecord};

    #[test]
    fn install_is_single_shot() {
        let h = handle(ChaosMode::Record);
        install(h);
        assert!(take_installed().is_some());
        assert!(take_installed().is_none(), "consumed by the first take");
    }

    #[test]
    fn dirty_tail_is_fenced_by_reopen() {
        let mut j = Journal::new(JournalConfig::default());
        j.append(&JournalRecord::Committed { epoch: 1 });
        j.append(&JournalRecord::Committed { epoch: 2 });
        let store = j.store();
        dirty_tail(&store, 13);
        let (mut j2, records) = Journal::reopen(store, JournalConfig::default());
        assert_eq!(records.len(), 2, "durable records all survive the tear");
        // The reopened write end appends cleanly past the fenced fragment.
        j2.append(&JournalRecord::Committed { epoch: 3 });
        assert_eq!(j2.records().len(), 3);
    }
}
