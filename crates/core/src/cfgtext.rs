//! The `key = value` config-text dialect shared by `mdw-lint` and
//! `mdw-routed`.
//!
//! One `key = value` per line, `#` starts a comment, unknown keys are
//! rejected with their line number. Parsing starts from
//! [`SystemConfig::default`] (the paper-style 64-host SP2 fabric), so a
//! config file only states what it changes. See `configs/` for annotated
//! examples.

use crate::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use crate::respond::ResponseConfig;
use crate::routed::RoutedConfig;
use collectives::RecoveryConfig;
use mintopo::route::ReplicatePolicy;
use switches::{ReplicationMode, UpSelect};

/// Parses `key = value` config text into a [`SystemConfig`], starting
/// from the paper-style defaults.
///
/// # Errors
///
/// A message naming the line number and the offending key or value.
pub fn parse_config(text: &str) -> Result<SystemConfig, String> {
    let mut cfg = SystemConfig::default();
    // Topology fields are gathered first so the kind can be assembled
    // whichever order the keys appear in.
    let mut kind = "karytree".to_string();
    let (mut k, mut stages) = (4usize, 3usize);
    let (mut switches_n, mut ports, mut hosts, mut extra_links, mut topo_seed) =
        (8usize, 8usize, 16usize, 4usize, 1u64);

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got `{line}`", lineno + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let bad = |what: &str| format!("line {}: bad {what} value `{value}`", lineno + 1);
        let parse_usize = |what: &str| value.parse::<usize>().map_err(|_| bad(what));
        let parse_u64 = |what: &str| value.parse::<u64>().map_err(|_| bad(what));
        match key {
            "topology" => kind = value.to_string(),
            "k" => k = parse_usize("k")?,
            "stages" => stages = parse_usize("stages")?,
            "switches" => switches_n = parse_usize("switches")?,
            "ports" => ports = parse_usize("ports")?,
            "hosts" => hosts = parse_usize("hosts")?,
            "extra_links" => extra_links = parse_usize("extra_links")?,
            "topo_seed" => topo_seed = parse_u64("topo_seed")?,
            "arch" => {
                cfg.arch = match value {
                    "cb" | "central-buffer" => SwitchArch::CentralBuffer,
                    "ib" | "input-buffered" => SwitchArch::InputBuffered,
                    _ => return Err(bad("arch (cb|ib)")),
                }
            }
            "mcast" => {
                cfg.mcast = match value {
                    "hw" | "bitstring" => McastImpl::HwBitString,
                    "mp" | "multiport" => McastImpl::HwMultiport,
                    "sw" | "binomial" => McastImpl::SwBinomial,
                    _ => return Err(bad("mcast (hw|mp|sw)")),
                }
            }
            "replication" => {
                cfg.switch.replication = match value {
                    "async" | "asynchronous" => ReplicationMode::Asynchronous,
                    "sync" | "synchronous" => ReplicationMode::Synchronous,
                    _ => return Err(bad("replication (async|sync)")),
                }
            }
            "policy" => {
                cfg.switch.policy = match value {
                    "return-only" => ReplicatePolicy::ReturnOnly,
                    "forward-and-return" => ReplicatePolicy::ForwardAndReturn,
                    _ => return Err(bad("policy (return-only|forward-and-return)")),
                }
            }
            "up_select" => {
                cfg.switch.up_select = match value {
                    "deterministic" => UpSelect::Deterministic,
                    "adaptive" => UpSelect::Adaptive,
                    _ => return Err(bad("up_select (deterministic|adaptive)")),
                }
            }
            "chunk_flits" => cfg.switch.chunk_flits = value.parse().map_err(|_| bad(key))?,
            "cq_chunks" => cfg.switch.cq_chunks = parse_usize(key)?,
            "input_buf_flits" => {
                cfg.switch.input_buf_flits = value.parse().map_err(|_| bad(key))?
            }
            "max_packet_flits" => {
                cfg.switch.max_packet_flits = value.parse().map_err(|_| bad(key))?
            }
            "staging_flits" => cfg.switch.staging_flits = value.parse().map_err(|_| bad(key))?,
            "route_delay" => cfg.switch.route_delay = value.parse().map_err(|_| bad(key))?,
            "bypass_crossbar" => {
                cfg.switch.bypass_crossbar = value.parse().map_err(|_| bad(key))?
            }
            "link_delay" => cfg.link_delay = value.parse().map_err(|_| bad(key))?,
            "host_eject_credits" => cfg.host_eject_credits = value.parse().map_err(|_| bad(key))?,
            "bits_per_flit" => cfg.bits_per_flit = parse_usize(key)?,
            "barrier_combining" => cfg.barrier_combining = value.parse().map_err(|_| bad(key))?,
            "seed" => cfg.seed = parse_u64(key)?,
            // Compiled sharded engine (DESIGN.md §13); both spellings
            // accepted, `MDWORM_SHARDS` overrides at run time.
            "engine.shards" | "engine_shards" => cfg.engine_shards = parse_usize(key)?,
            // Model-check decomposition of the deep reroute vet
            // (DESIGN.md §14); both spellings accepted.
            "model.mode" | "model_mode" => {
                cfg.model_mode = match value {
                    "exact" => mdw_analysis::ModelMode::Exact,
                    "compositional" => mdw_analysis::ModelMode::Compositional,
                    "auto" => mdw_analysis::ModelMode::Auto,
                    _ => return Err(bad("model.mode (exact|compositional|auto)")),
                }
            }
            // End-to-end recovery (ACK ledger + retransmission).
            "recovery" => match value {
                "on" | "true" => {
                    cfg.recovery.get_or_insert_with(RecoveryConfig::default);
                }
                "off" | "false" => cfg.recovery = None,
                _ => return Err(bad("recovery (on|off)")),
            },
            "recovery_timeout" => {
                cfg.recovery
                    .get_or_insert_with(RecoveryConfig::default)
                    .timeout = parse_u64(key)?
            }
            "recovery_timeout_cap" => {
                cfg.recovery
                    .get_or_insert_with(RecoveryConfig::default)
                    .timeout_cap = parse_u64(key)?
            }
            "recovery_max_retries" => {
                cfg.recovery
                    .get_or_insert_with(RecoveryConfig::default)
                    .max_retries = value.parse().map_err(|_| bad(key))?
            }
            // Online fault response (detect / reroute / quiesce / degrade).
            "response" => match value {
                "on" | "true" => {
                    cfg.response.get_or_insert_with(ResponseConfig::default);
                }
                "off" | "false" => cfg.response = None,
                _ => return Err(bad("response (on|off)")),
            },
            "response_debounce" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .debounce = parse_u64(key)?
            }
            "response_drain_wait" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .drain_wait = parse_u64(key)?
            }
            "response_purge_max" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .purge_max = parse_u64(key)?
            }
            "response_max_hops" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .max_hops = parse_usize(key)?
            }
            "response_event_log_cap" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .event_log_cap = parse_usize(key)?
            }
            // Responder write-ahead journal (DESIGN.md §15); both
            // spellings accepted. Setting either implies `response = on`.
            "journal.snapshot_every" | "journal_snapshot_every" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .snapshot_every = parse_u64(key)?
            }
            "journal.latency_cap" | "journal_latency_cap" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .latency_cap = parse_usize(key)?
            }
            // Engine-level torn-install audit over the two-phase epoch
            // protocol; both spellings accepted.
            "epoch.audit" | "epoch_audit" => match value {
                "on" | "true" => cfg.epoch_audit = true,
                "off" | "false" => cfg.epoch_audit = false,
                _ => return Err(bad("epoch.audit (on|off)")),
            },
            // Certificate-based deadlock-freedom checking (DESIGN.md
            // §16); both spellings accepted.
            "certify.enabled" | "certify_enabled" => match value {
                "on" | "true" => cfg.certify.enabled = true,
                "off" | "false" => cfg.certify.enabled = false,
                _ => return Err(bad("certify.enabled (on|off)")),
            },
            "certify.cdg_budget" | "certify_cdg_budget" => {
                cfg.certify.cdg_budget = parse_usize(key)?
            }
            // LRU capacity of the fault responder's vet memos; setting it
            // implies `response = on`.
            "response.memo_cap" | "response_memo_cap" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .memo_cap = parse_usize(key)?
            }
            // Resident control plane (`mdw-routed`) storm hardening.
            "routed" => match value {
                "on" | "true" => {
                    cfg.routed.get_or_insert_with(RoutedConfig::default);
                }
                "off" | "false" => cfg.routed = None,
                _ => return Err(bad("routed (on|off)")),
            },
            "routed_queue_cap" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .queue_cap = parse_usize(key)?
            }
            "routed_slice" => {
                cfg.routed.get_or_insert_with(RoutedConfig::default).slice = parse_u64(key)?
            }
            "routed_flap_penalty" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .flap_penalty = parse_u64(key)?
            }
            "routed_flap_suppress" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .flap_suppress = parse_u64(key)?
            }
            "routed_flap_reuse" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .flap_reuse = parse_u64(key)?
            }
            "routed_flap_half_life" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .flap_half_life = parse_u64(key)?
            }
            "routed_retry_base" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .retry_base = parse_u64(key)?
            }
            "routed_retry_cap" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .retry_cap = parse_u64(key)?
            }
            "routed_retry_max" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .retry_max = value.parse().map_err(|_| bad(key))?
            }
            "routed_heal_hysteresis" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .heal_hysteresis = parse_u64(key)?
            }
            "routed_deadline" => {
                cfg.routed
                    .get_or_insert_with(RoutedConfig::default)
                    .deadline = parse_u64(key)?
            }
            _ => return Err(format!("line {}: unknown key `{key}`", lineno + 1)),
        }
    }

    cfg.topology = match kind.as_str() {
        "karytree" | "tree" => TopologyKind::KaryTree { k, n: stages },
        "unimin" | "butterfly" => TopologyKind::UniMin { k, n: stages },
        "irregular" => TopologyKind::Irregular {
            switches: switches_n,
            ports,
            hosts,
            extra_links,
            seed: topo_seed,
        },
        other => {
            return Err(format!(
                "unknown topology `{other}` (karytree|unimin|irregular)"
            ))
        }
    };
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_is_the_default_config() {
        let cfg = parse_config("").expect("parses");
        assert_eq!(cfg.n_hosts(), 64);
        assert_eq!(cfg.arch, SwitchArch::CentralBuffer);
        assert!(cfg.routed.is_none());
    }

    #[test]
    fn full_config_roundtrips_values() {
        let text = "
            # an input-buffered 16-host tree with lock-step replication
            topology = karytree
            k = 2          # arity
            stages = 4
            arch = ib
            mcast = hw
            replication = sync
            policy = forward-and-return
            up_select = deterministic
            input_buf_flits = 256
            max_packet_flits = 100
            seed = 42
        ";
        let cfg = parse_config(text).expect("parses");
        assert_eq!(cfg.topology, TopologyKind::KaryTree { k: 2, n: 4 });
        assert_eq!(cfg.arch, SwitchArch::InputBuffered);
        assert_eq!(cfg.switch.replication, ReplicationMode::Synchronous);
        assert_eq!(cfg.switch.policy, ReplicatePolicy::ForwardAndReturn);
        assert_eq!(cfg.switch.up_select, UpSelect::Deterministic);
        assert_eq!(cfg.switch.input_buf_flits, 256);
        assert_eq!(cfg.switch.max_packet_flits, 100);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn irregular_topology_keys() {
        let text = "
            topology = irregular
            switches = 6
            ports = 8
            hosts = 12
            extra_links = 3
            topo_seed = 7
        ";
        let cfg = parse_config(text).expect("parses");
        assert_eq!(
            cfg.topology,
            TopologyKind::Irregular {
                switches: 6,
                ports: 8,
                hosts: 12,
                extra_links: 3,
                seed: 7
            }
        );
    }

    #[test]
    fn recovery_and_response_keys_parse_in_any_order() {
        // Tuning keys materialize the block even without an `= on` line.
        let cfg = parse_config(
            "
            recovery_timeout = 5000
            recovery = on
            recovery_max_retries = 3
            response_debounce = 128
            response = on
            response_purge_max = 512
            response_max_hops = 32
            response_event_log_cap = 64
            ",
        )
        .expect("parses");
        let rec = cfg.recovery.expect("recovery on");
        assert_eq!(rec.timeout, 5_000);
        assert_eq!(rec.max_retries, 3);
        assert_eq!(rec.timeout_cap, RecoveryConfig::default().timeout_cap);
        let resp = cfg.response.expect("response on");
        assert_eq!(resp.debounce, 128);
        assert_eq!(resp.purge_max, 512);
        assert_eq!(resp.max_hops, 32);
        assert_eq!(resp.event_log_cap, 64);
        assert_eq!(resp.drain_wait, ResponseConfig::default().drain_wait);

        let cfg = parse_config("response = on\nresponse = off").expect("parses");
        assert!(cfg.response.is_none(), "later `off` wins");
        let err = parse_config("response = maybe").unwrap_err();
        assert!(err.contains("response"), "{err}");
    }

    #[test]
    fn routed_keys_materialize_and_lint() {
        let cfg = parse_config(
            "
            routed = on
            routed_queue_cap = 32
            routed_slice = 16
            routed_flap_penalty = 500
            routed_flap_suppress = 1500
            routed_flap_reuse = 400
            routed_flap_half_life = 1024
            routed_retry_base = 32
            routed_retry_cap = 2048
            routed_retry_max = 4
            routed_heal_hysteresis = 4096
            routed_deadline = 8192
            response = on
            recovery = on
            ",
        )
        .expect("parses");
        let routed = cfg.routed.clone().expect("routed on");
        assert_eq!(routed.queue_cap, 32);
        assert_eq!(routed.slice, 16);
        assert_eq!(routed.flap_penalty, 500);
        assert_eq!(routed.flap_suppress, 1_500);
        assert_eq!(routed.flap_reuse, 400);
        assert_eq!(routed.flap_half_life, 1_024);
        assert_eq!(routed.retry_base, 32);
        assert_eq!(routed.retry_cap, 2_048);
        assert_eq!(routed.retry_max, 4);
        assert_eq!(routed.heal_hysteresis, 4_096);
        assert_eq!(routed.deadline, 8_192);
        assert!(!cfg.report().has_errors(), "{:?}", cfg.report().diagnostics);

        // `routed = off` later wins, like the other optional blocks.
        let cfg = parse_config("routed = on\nrouted = off").expect("parses");
        assert!(cfg.routed.is_none());
    }

    #[test]
    fn routed_without_response_fails_the_lint() {
        let cfg = parse_config("routed = on").expect("parses");
        let report = cfg.report();
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "routed-needs-response"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn routed_flap_thresholds_must_leave_a_cooling_gap() {
        let cfg = parse_config(
            "routed = on\nresponse = on\nrecovery = on\n\
             routed_flap_reuse = 3000\nrouted_flap_suppress = 2500",
        )
        .expect("parses");
        let report = cfg.report();
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "routed-flap-thresholds"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn engine_shards_key_parses_and_lints() {
        // Both spellings land in the same field.
        let cfg = parse_config("engine.shards = 4").expect("parses");
        assert_eq!(cfg.engine_shards, 4);
        let cfg = parse_config("engine_shards = 2").expect("parses");
        assert_eq!(cfg.engine_shards, 2);
        assert!(!cfg.report().has_errors(), "{:?}", cfg.report().diagnostics);

        // Shard count 0 is rejected (1 is the sequential oracle).
        let cfg = parse_config("engine.shards = 0").expect("parses");
        assert!(
            cfg.report()
                .diagnostics
                .iter()
                .any(|d| d.code == "engine-shards-zero"),
            "{:?}",
            cfg.report().diagnostics
        );

        // More shards than the fabric has switches is rejected too
        // (the default 64-host MIN has 48 switches).
        let cfg = parse_config("engine.shards = 999").expect("parses");
        assert!(
            cfg.report()
                .diagnostics
                .iter()
                .any(|d| d.code == "engine-shards-exceed-switches"),
            "{:?}",
            cfg.report().diagnostics
        );
        let err = parse_config("engine.shards = many").unwrap_err();
        assert!(err.contains("engine.shards"), "{err}");
    }

    #[test]
    fn journal_and_epoch_keys_parse_both_spellings() {
        // Journal tuning keys materialize the response block and land in
        // the same fields under either spelling.
        let cfg = parse_config("journal.snapshot_every = 128").expect("parses");
        assert_eq!(
            cfg.response
                .as_ref()
                .expect("implies response")
                .snapshot_every,
            128
        );
        let cfg =
            parse_config("journal_snapshot_every = 64\njournal.latency_cap = 512").expect("parses");
        let resp = cfg.response.clone().expect("implies response");
        assert_eq!(resp.snapshot_every, 64);
        assert_eq!(resp.latency_cap, 512);
        assert!(!cfg.report().has_errors(), "{:?}", cfg.report().diagnostics);

        let cfg = parse_config("epoch.audit = on").expect("parses");
        assert!(cfg.epoch_audit);
        let cfg = parse_config("epoch_audit = true\nepoch.audit = off").expect("parses");
        assert!(!cfg.epoch_audit, "later `off` wins");
        let err = parse_config("epoch.audit = maybe").unwrap_err();
        assert!(err.contains("epoch.audit"), "{err}");

        // Zero cadences are parseable but fail the lint: a zero snapshot
        // interval would snapshot on every append, a zero latency ring
        // records nothing.
        let cfg = parse_config("journal.snapshot_every = 0").expect("parses");
        assert!(
            cfg.report()
                .diagnostics
                .iter()
                .any(|d| d.code == "journal-snapshot-zero"),
            "{:?}",
            cfg.report().diagnostics
        );
        let cfg = parse_config("journal.latency_cap = 0").expect("parses");
        assert!(
            cfg.report()
                .diagnostics
                .iter()
                .any(|d| d.code == "journal-latency-cap-zero"),
            "{:?}",
            cfg.report().diagnostics
        );
        let err = parse_config("journal.latency_cap = many").unwrap_err();
        assert!(err.contains("journal.latency_cap"), "{err}");
    }

    #[test]
    fn certify_and_memo_keys_parse_both_spellings() {
        let cfg = parse_config("").expect("parses");
        assert!(!cfg.certify.enabled);
        assert_eq!(cfg.certify.cdg_budget, 100_000);

        let cfg = parse_config("certify.enabled = on").expect("parses");
        assert!(cfg.certify.enabled);
        let cfg = parse_config("certify_enabled = true\ncertify.enabled = off").expect("parses");
        assert!(!cfg.certify.enabled, "later `off` wins");
        let cfg = parse_config("certify.cdg_budget = 5000\ncertify_enabled = on").expect("parses");
        assert!(cfg.certify.enabled);
        assert_eq!(cfg.certify.cdg_budget, 5_000);
        let cfg = parse_config("certify_cdg_budget = 123").expect("parses");
        assert_eq!(cfg.certify.cdg_budget, 123);
        assert!(!cfg.report().has_errors(), "{:?}", cfg.report().diagnostics);

        // A zero budget is parseable but fails the lint.
        let cfg = parse_config("certify.cdg_budget = 0").expect("parses");
        assert!(
            cfg.report()
                .diagnostics
                .iter()
                .any(|d| d.code == "certify-budget-zero"),
            "{:?}",
            cfg.report().diagnostics
        );
        let err = parse_config("certify.enabled = maybe").unwrap_err();
        assert!(err.contains("certify.enabled"), "{err}");
        let err = parse_config("certify.cdg_budget = many").unwrap_err();
        assert!(err.contains("certify.cdg_budget"), "{err}");

        // Memo-cap keys materialize the response block like the journal
        // keys do.
        let cfg = parse_config("response.memo_cap = 64").expect("parses");
        assert_eq!(
            cfg.response.as_ref().expect("implies response").memo_cap,
            64
        );
        let cfg = parse_config("response_memo_cap = 16").expect("parses");
        assert_eq!(
            cfg.response.as_ref().expect("implies response").memo_cap,
            16
        );
        let err = parse_config("response.memo_cap = many").unwrap_err();
        assert!(err.contains("response.memo_cap"), "{err}");
    }

    #[test]
    fn model_mode_key_parses_both_spellings() {
        use mdw_analysis::ModelMode;
        let cfg = parse_config("").expect("parses");
        assert_eq!(cfg.model_mode, ModelMode::Auto);
        let cfg = parse_config("model.mode = exact").expect("parses");
        assert_eq!(cfg.model_mode, ModelMode::Exact);
        let cfg = parse_config("model_mode = compositional").expect("parses");
        assert_eq!(cfg.model_mode, ModelMode::Compositional);
        let cfg = parse_config("model.mode = auto").expect("parses");
        assert_eq!(cfg.model_mode, ModelMode::Auto);
        let err = parse_config("model.mode = heuristic").unwrap_err();
        assert!(err.contains("model.mode"), "{err}");
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected_with_line_numbers() {
        let err = parse_config("typo_key = 3").unwrap_err();
        assert!(err.contains("line 1") && err.contains("typo_key"), "{err}");
        let err = parse_config("\nk = many").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_config("just words").unwrap_err();
        assert!(err.contains("key = value"), "{err}");
        let err = parse_config("topology = moebius").unwrap_err();
        assert!(err.contains("moebius"), "{err}");
        let err = parse_config("routed_retry_max = many").unwrap_err();
        assert!(err.contains("routed_retry_max"), "{err}");
    }
}
