//! Instantiates a complete simulated system: topology → links → switches →
//! hosts, wired into a [`netsim::engine::Engine`].

use crate::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use collectives::traffic::DeliveryHook;
use collectives::{FabricMode, Host, HostConfig, HostShared, McastScheme, TrafficSource};
use mintopo::irregular::Irregular;
use mintopo::karytree::KaryTree;
use mintopo::route::RouteTables;
use mintopo::topology::{End, Topology};
use mintopo::unimin::UniMin;
use netsim::engine::Engine;
use netsim::ids::{LinkId, NodeId, SwitchId};
use netsim::stats::DeliveryTracker;
use netsim::trace::{SemHandle, SemTrace};
use std::cell::RefCell;
use std::rc::Rc;
use switches::{CentralBufferSwitch, InputBufferedSwitch, SwitchConfig, SwitchCtl, SwitchStats};

/// Link ids grouped by role, for utilization accounting.
#[derive(Debug, Default, Clone)]
pub struct LinkMap {
    /// Host → switch injection links.
    pub inject: Vec<LinkId>,
    /// Switch → host ejection links.
    pub eject: Vec<LinkId>,
    /// Switch ↔ switch fabric links (both directions).
    pub fabric: Vec<LinkId>,
}

/// Mean per-link utilization (flits per cycle) over a run, by link role.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkUtilization {
    /// Host injection links.
    pub inject: f64,
    /// Host ejection links — the capacity bound every multicast scheme
    /// shares.
    pub eject: f64,
    /// Inter-switch fabric links.
    pub fabric: f64,
    /// The single busiest link of any role.
    pub max_link: f64,
}

/// A fully wired system ready to run.
pub struct System {
    /// The simulation engine (all components registered).
    pub engine: Engine,
    /// Shared host bookkeeping (tracker, coordinators, id generators).
    pub shared: HostShared,
    /// Per-switch statistics handles, indexed by switch id.
    pub switch_stats: Vec<Rc<RefCell<SwitchStats>>>,
    /// The configuration the system was built from.
    pub config: SystemConfig,
    /// The topology (for inspection).
    pub topology: Rc<Topology>,
    /// Links grouped by role.
    pub links: LinkMap,
    /// Per switch, per port: the link feeding that input port. Used by
    /// deadlock forensics to translate "waiting on output port p" into a
    /// link-level wait-for edge.
    pub sw_in: Vec<Vec<LinkId>>,
    /// Per switch, per port: the link driven by that output port.
    pub sw_out: Vec<Vec<LinkId>>,
    /// Per-switch out-of-band control cells (purge / table swap), indexed
    /// by switch id. Held by the fault-response orchestrator.
    pub switch_ctls: Vec<Rc<SwitchCtl>>,
    /// Shared injection-gate / degradation cell every host watches.
    pub fabric_mode: Rc<FabricMode>,
    /// The routing tables currently active in the switches. The
    /// fault-response orchestrator replaces this handle when a masked
    /// reroute is installed.
    pub tables: Rc<RouteTables>,
    /// Per-switch semantic trace buffers (disabled by default), indexed by
    /// switch id. The `invariant-audit` feature enables them and replays
    /// the recorded events against the pure transition cores after every
    /// experiment (trace-conformance refinement check).
    pub sem_traces: Vec<SemHandle>,
}

impl System {
    /// Convenience accessor for the delivery tracker.
    pub fn tracker(&self) -> Rc<RefCell<DeliveryTracker>> {
        self.shared.tracker.clone()
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.topology.n_hosts()
    }

    /// Mean link utilization since cycle 0 (flits per link per cycle).
    ///
    /// Returns all-zero before the first cycle.
    pub fn link_utilization(&self) -> LinkUtilization {
        let cycles = self.engine.now().max(1) as f64;
        let mean = |ids: &[LinkId]| -> f64 {
            if ids.is_empty() {
                return 0.0;
            }
            let total: u64 = ids.iter().map(|&l| self.engine.link_total_flits(l)).sum();
            total as f64 / cycles / ids.len() as f64
        };
        let max_link = self
            .links
            .inject
            .iter()
            .chain(&self.links.eject)
            .chain(&self.links.fabric)
            .map(|&l| self.engine.link_total_flits(l) as f64 / cycles)
            .fold(0.0, f64::max);
        LinkUtilization {
            inject: mean(&self.links.inject),
            eject: mean(&self.links.eject),
            fabric: mean(&self.links.fabric),
            max_link,
        }
    }
}

/// Builds the topology object for a config, returning the generic topology
/// plus the tree handle multiport encoding needs.
pub(crate) fn build_topology(kind: TopologyKind) -> (Rc<Topology>, Option<Rc<KaryTree>>) {
    match kind {
        TopologyKind::KaryTree { k, n } => {
            let tree = Rc::new(KaryTree::new(k, n));
            (Rc::new(tree.topology().clone()), Some(tree))
        }
        TopologyKind::UniMin { k, n } => (Rc::new(UniMin::new(k, n).into_topology()), None),
        TopologyKind::Irregular {
            switches,
            ports,
            hosts,
            extra_links,
            seed,
        } => (
            Rc::new(Irregular::new(switches, ports, hosts, extra_links, seed).into_topology()),
            None,
        ),
    }
}

/// Builds a complete system.
///
/// `sources` supplies one [`TrafficSource`] per host (index = node id);
/// `hook` is an optional delivery observer installed on every host.
///
/// # Panics
///
/// Panics if `sources.len()` differs from the host count or the
/// configuration fails [`SystemConfig::validate`].
pub fn build_system(
    config: SystemConfig,
    sources: Vec<Box<dyn TrafficSource>>,
    hook: Option<Rc<RefCell<dyn DeliveryHook>>>,
) -> System {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid system config: {e}"));
    let (topology, tree) = build_topology(config.topology);
    assert_eq!(
        sources.len(),
        topology.n_hosts(),
        "need exactly one traffic source per host"
    );
    let tables = Rc::new(RouteTables::build(&topology));
    let swcfg = config.effective_switch();
    let mut engine = Engine::new();

    // Credit window of a link terminating at a switch input depends on the
    // architecture: CB exposes the staging FIFO, IB the input buffer.
    let switch_in_credits = match config.arch {
        SwitchArch::CentralBuffer => swcfg.staging_flits,
        SwitchArch::InputBuffered => swcfg.input_buf_flits,
    };

    // Per switch port: incoming and outgoing link ids.
    let n_sw = topology.n_switches();
    let mut sw_in: Vec<Vec<Option<LinkId>>> = (0..n_sw)
        .map(|s| vec![None; topology.ports(SwitchId::from(s))])
        .collect();
    let mut sw_out: Vec<Vec<Option<LinkId>>> = sw_in.clone();
    // Per host: injection (host→switch) and ejection (switch→host) links.
    let mut host_inject: Vec<Option<LinkId>> = vec![None; topology.n_hosts()];
    let mut host_eject: Vec<Option<LinkId>> = vec![None; topology.n_hosts()];

    let mut links = LinkMap::default();
    for conn in topology.connections() {
        match (conn.a, conn.b) {
            (End::SwitchPort(a, ap), End::SwitchPort(b, bp)) => {
                let l_ab = engine.add_link(config.link_delay, switch_in_credits);
                let l_ba = engine.add_link(config.link_delay, switch_in_credits);
                links.fabric.push(l_ab);
                links.fabric.push(l_ba);
                sw_out[a.index()][ap] = Some(l_ab);
                sw_in[b.index()][bp] = Some(l_ab);
                sw_out[b.index()][bp] = Some(l_ba);
                sw_in[a.index()][ap] = Some(l_ba);
            }
            (End::Host(h), End::SwitchPort(s, p)) | (End::SwitchPort(s, p), End::Host(h)) => {
                if topology.host_inject(h) == (s, p) {
                    let l = engine.add_link(config.link_delay, switch_in_credits);
                    host_inject[h.index()] = Some(l);
                    sw_in[s.index()][p] = Some(l);
                    links.inject.push(l);
                }
                if topology.host_eject(h) == (s, p) {
                    let l = engine.add_link(config.link_delay, config.host_eject_credits);
                    host_eject[h.index()] = Some(l);
                    sw_out[s.index()][p] = Some(l);
                    links.eject.push(l);
                }
            }
            (End::Host(_), End::Host(_)) => unreachable!("hosts never connect directly"),
        }
    }

    // Fill unused port slots with dangling links so bindings stay dense.
    let dangling = |engine: &mut Engine, slot: &mut Option<LinkId>| {
        if slot.is_none() {
            *slot = Some(engine.add_link(1, 1));
        }
    };
    for s in 0..n_sw {
        for p in 0..topology.ports(SwitchId::from(s)) {
            dangling(&mut engine, &mut sw_in[s][p]);
            dangling(&mut engine, &mut sw_out[s][p]);
        }
    }

    // Switches.
    let combining_plan = if config.barrier_combining {
        Some(mintopo::combining::plan_combining(&topology, &tables))
    } else {
        None
    };
    let mut switch_stats = Vec::with_capacity(n_sw);
    let mut switch_ctls = Vec::with_capacity(n_sw);
    let mut sem_traces = Vec::with_capacity(n_sw);
    for s in 0..n_sw {
        let id = SwitchId::from(s);
        let stats = Rc::new(RefCell::new(SwitchStats::default()));
        switch_stats.push(stats.clone());
        let ctl = SwitchCtl::new();
        switch_ctls.push(ctl.clone());
        let sem = SemTrace::handle();
        sem_traces.push(sem.clone());
        let cfg = SwitchConfig {
            ports: topology.ports(id),
            ..swcfg.clone()
        };
        let inputs: Vec<LinkId> = sw_in[s].iter().map(|l| l.expect("dense")).collect();
        let outputs: Vec<LinkId> = sw_out[s].iter().map(|l| l.expect("dense")).collect();
        match config.arch {
            SwitchArch::CentralBuffer => {
                let mut switch = CentralBufferSwitch::new(id, cfg, tables.clone(), stats);
                switch.set_ctl(ctl);
                switch.set_sem_trace(sem);
                if let Some(plan) = &combining_plan {
                    let expected = plan.expected[s];
                    if expected > 0 {
                        switch.enable_barrier_combining(
                            expected,
                            topology.n_hosts(),
                            config.bits_per_flit,
                        );
                    }
                }
                engine.add_component(Box::new(switch), inputs, outputs);
            }
            SwitchArch::InputBuffered => {
                let mut switch = InputBufferedSwitch::new(id, cfg, tables.clone(), stats);
                switch.set_ctl(ctl);
                engine.add_component(Box::new(switch), inputs, outputs);
            }
        }
    }

    // Hosts.
    let shared = HostShared::new(topology.n_hosts());
    let fabric_mode = FabricMode::new();
    let scheme = match config.mcast {
        McastImpl::HwBitString => McastScheme::HardwareBitString,
        McastImpl::HwMultiport => {
            McastScheme::HardwareMultiport(tree.clone().expect("validated: tree topology"))
        }
        McastImpl::SwBinomial => McastScheme::SoftwareBinomial,
    };
    for (h, source) in sources.into_iter().enumerate() {
        let node = NodeId::from(h);
        let hcfg = HostConfig {
            node,
            n_hosts: topology.n_hosts(),
            bits_per_flit: config.bits_per_flit,
            max_packet_flits: swcfg.max_packet_flits,
            send_overhead: config.send_overhead,
            recv_overhead: config.recv_overhead,
            scheme: scheme.clone(),
            recovery: config.recovery.clone(),
        };
        let mut host = Host::new(hcfg, shared.clone(), source);
        host.set_fabric_mode(fabric_mode.clone());
        if let Some(hook) = &hook {
            host.set_hook(hook.clone());
        }
        engine.add_component(
            Box::new(host),
            vec![host_eject[h].expect("every host ejects somewhere")],
            vec![host_inject[h].expect("every host injects somewhere")],
        );
    }

    let dense = |m: Vec<Vec<Option<LinkId>>>| -> Vec<Vec<LinkId>> {
        m.into_iter()
            .map(|v| v.into_iter().map(|l| l.expect("dense")).collect())
            .collect()
    };
    System {
        engine,
        shared,
        switch_stats,
        config,
        topology,
        links,
        sw_in: dense(sw_in),
        sw_out: dense(sw_out),
        switch_ctls,
        fabric_mode,
        tables,
        sem_traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::{MessageSpec, ScheduledSource, SilentSource};
    use netsim::destset::DestSet;
    use netsim::message::MessageKind;

    fn silent_sources(n: usize) -> Vec<Box<dyn TrafficSource>> {
        (0..n)
            .map(|_| Box::new(SilentSource) as Box<dyn TrafficSource>)
            .collect()
    }

    #[test]
    fn builds_default_64() {
        let sys = build_system(SystemConfig::default(), silent_sources(64), None);
        assert_eq!(sys.n_hosts(), 64);
        assert_eq!(sys.switch_stats.len(), 48);
    }

    #[test]
    fn quiet_system_stays_quiet() {
        let mut sys = build_system(SystemConfig::default(), silent_sources(64), None);
        sys.engine.run_for(200);
        assert_eq!(sys.engine.total_flit_moves(), 0);
        assert_eq!(sys.tracker().borrow().outstanding(), 0);
    }

    fn one_message_world(cfg: SystemConfig, src: usize, spec: MessageSpec) -> System {
        let n = cfg.n_hosts();
        let mut sources = silent_sources(n);
        sources[src] = Box::new(ScheduledSource::new(vec![(1, spec)]));
        build_system(cfg, sources, None)
    }

    #[test]
    fn unicast_crosses_the_tree() {
        // Host 0 -> host 63 must climb to the top stage.
        let mut sys = one_message_world(
            SystemConfig::default(),
            0,
            MessageSpec {
                kind: MessageKind::Unicast(NodeId(63)),
                payload_flits: 64,
            },
        );
        sys.engine.run_for(2000);
        let t = sys.tracker();
        let t = t.borrow();
        assert_eq!(t.completed_unicasts(), 1);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn multicast_crosses_the_tree_cb() {
        let dests = DestSet::from_nodes(64, [1, 17, 42, 63].map(NodeId));
        let mut sys = one_message_world(
            SystemConfig::default(),
            0,
            MessageSpec {
                kind: MessageKind::Multicast(dests),
                payload_flits: 64,
            },
        );
        sys.engine.run_for(3000);
        let t = sys.tracker();
        let t = t.borrow();
        assert_eq!(t.completed_mcasts(), 1);
        assert_eq!(t.deliveries(), 4);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn multicast_crosses_the_tree_ib() {
        let dests = DestSet::from_nodes(64, [1, 17, 42, 63].map(NodeId));
        let cfg = SystemConfig {
            arch: SwitchArch::InputBuffered,
            ..SystemConfig::default()
        };
        let mut sys = one_message_world(
            cfg,
            0,
            MessageSpec {
                kind: MessageKind::Multicast(dests),
                payload_flits: 64,
            },
        );
        sys.engine.run_for(3000);
        let t = sys.tracker();
        let t = t.borrow();
        assert_eq!(t.completed_mcasts(), 1);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn software_multicast_forwards_through_hosts() {
        let dests = DestSet::from_nodes(64, (1..16).map(|i| NodeId(i * 4)));
        let cfg = SystemConfig {
            mcast: McastImpl::SwBinomial,
            ..SystemConfig::default()
        };
        let mut sys = one_message_world(
            cfg,
            0,
            MessageSpec {
                kind: MessageKind::Multicast(dests),
                payload_flits: 64,
            },
        );
        sys.engine.run_for(10_000);
        let t = sys.tracker();
        let t = t.borrow();
        assert_eq!(t.completed_mcasts(), 1);
        assert_eq!(t.deliveries(), 15);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn multiport_multicast_on_tree() {
        let dests = DestSet::from_nodes(64, [3, 12, 33, 50, 63].map(NodeId));
        let cfg = SystemConfig {
            mcast: McastImpl::HwMultiport,
            ..SystemConfig::default()
        };
        let mut sys = one_message_world(
            cfg,
            0,
            MessageSpec {
                kind: MessageKind::Multicast(dests),
                payload_flits: 64,
            },
        );
        sys.engine.run_for(5000);
        let t = sys.tracker();
        let t = t.borrow();
        assert_eq!(t.completed_mcasts(), 1);
        assert_eq!(t.deliveries(), 5);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn unimin_unicast_and_multicast() {
        let cfg = SystemConfig {
            topology: TopologyKind::UniMin { k: 4, n: 3 },
            ..SystemConfig::default()
        };
        let dests = DestSet::from_nodes(64, [5, 20, 55].map(NodeId));
        let mut sys = one_message_world(
            cfg,
            2,
            MessageSpec {
                kind: MessageKind::Multicast(dests),
                payload_flits: 32,
            },
        );
        sys.engine.run_for(3000);
        let t = sys.tracker();
        let t = t.borrow();
        assert_eq!(t.completed_mcasts(), 1);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn irregular_multicast() {
        let cfg = SystemConfig {
            topology: TopologyKind::Irregular {
                switches: 8,
                ports: 8,
                hosts: 16,
                extra_links: 4,
                seed: 7,
            },
            ..SystemConfig::default()
        };
        let dests = DestSet::from_nodes(16, [1, 7, 13].map(NodeId));
        let mut sys = one_message_world(
            cfg,
            0,
            MessageSpec {
                kind: MessageKind::Multicast(dests),
                payload_flits: 32,
            },
        );
        sys.engine.run_for(3000);
        let t = sys.tracker();
        let t = t.borrow();
        assert_eq!(t.completed_mcasts(), 1);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn link_utilization_reflects_delivery() {
        // One 64-flit unicast to host 63: its ejection link alone carries
        // ~66 flits; every role's mean utilization is tiny but non-zero.
        let mut sys = one_message_world(
            SystemConfig::default(),
            0,
            MessageSpec {
                kind: MessageKind::Unicast(NodeId(63)),
                payload_flits: 64,
            },
        );
        sys.engine.run_for(2000);
        let u = sys.link_utilization();
        assert!(u.inject > 0.0 && u.eject > 0.0 && u.fabric > 0.0);
        assert!(u.max_link > u.eject, "one hot link dominates the mean");
        // 66 flits over ~2000 cycles on 64 eject links.
        let expected = 66.0 / 2000.0 / 64.0;
        assert!((u.eject - expected).abs() / expected < 0.2, "{u:?}");
    }

    #[test]
    #[should_panic(expected = "one traffic source per host")]
    fn source_count_checked() {
        let _ = build_system(SystemConfig::default(), silent_sources(3), None);
    }
}
