//! Write-ahead journal of fault-responder decisions (DESIGN.md §15).
//!
//! Every durable state change the [`crate::respond::FaultResponder`]
//! makes — a link event observed, a debounce poll that confirmed
//! transitions, an epoch prepared/committed/aborted, an episode
//! finalized — is appended here *before* (decisions) or *atomically with*
//! (observations) its in-memory effect. A responder that crashes loses
//! only its process state: replaying the journal against the surviving
//! fabric rebuilds byte-identical responder state, and the two-phase
//! install records tell the recovery exactly which epoch was prepared but
//! not yet committed so it can re-drive the commit (see
//! [`crate::respond::FaultResponder::recover`]).
//!
//! ## Wire format
//!
//! One ASCII line per record:
//!
//! ```text
//! v1 <seq> <kind> <fields...> #<fnv64-hex>
//! ```
//!
//! * `seq` increases by one per append and makes replay idempotent: a
//!   duplicated tail (the crashed process re-sent records it had already
//!   written) replays as no-ops because their sequence numbers were
//!   already applied.
//! * The trailing FNV-1a checksum covers everything before ` #`. A crash
//!   mid-append leaves a torn last line whose checksum cannot match;
//!   [`Journal::reopen`] drops it (and anything after it), modelling the
//!   classic WAL torn-write rule — an unreadable record was never
//!   durable, so the decision it encoded was never made.
//! * Variable-length string fields (diagnostic codes, messages) are
//!   percent-encoded so every record stays a single space-separated line.
//!
//! ## Snapshots and compaction
//!
//! Every `snapshot_every` records the responder serializes its full
//! durable state into a `snapshot` record and the journal drops all
//! earlier bytes: replay cost and journal memory are both bounded by the
//! snapshot cadence, so a responder embedded in a week-long fault storm
//! holds steady-state memory. Replay starts from the last intact
//! snapshot (or the beginning) and applies subsequent records.

use crate::respond::{ConfirmedTransition, ResponseCounters, ResponseEvent};
use netsim::ids::{LinkId, SwitchId};
use netsim::Cycle;
use std::cell::RefCell;
use std::rc::Rc;

/// Journal tuning knobs (config keys `journal.*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// Records between snapshots; each snapshot compacts everything
    /// before it away. Bounds both replay time and journal memory.
    pub snapshot_every: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            snapshot_every: 256,
        }
    }
}

/// The shared backing store of a journal: plain ASCII record lines. The
/// responder holds one end; a crash harness holds the other, so the
/// bytes survive the responder being dropped and rebuilt — the in-memory
/// stand-in for a file that survives the process.
pub type JournalStore = Rc<RefCell<String>>;

/// How one response episode ended (the `finalized` record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpisodeOutcome {
    /// Masked tables committed and armed on every switch.
    Installed {
        /// Directed dead fabric ports masked out of the new tables.
        masked_ports: usize,
    },
    /// All cuts back up; original tables committed everywhere.
    Healed,
    /// The candidate failed the vet; epoch aborted on every switch.
    Rejected,
    /// The triggering transition reverted during the quiesce; no tables
    /// were built.
    Stale,
}

/// Full durable responder state, as serialized into `snapshot` records.
/// Everything a restarted responder cannot re-derive from the surviving
/// fabric lives here; see [`crate::respond::FaultResponder::recover`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResponderSnapshot {
    /// Highest epoch ever allocated (the next candidate gets +1).
    pub last_epoch: u64,
    /// Directed fabric ports masked out of the active tables.
    pub masked: Vec<(SwitchId, usize)>,
    /// Links administratively suppressed by the flap damper.
    pub suppressed: Vec<LinkId>,
    /// Activity counters.
    pub counters: ResponseCounters,
    /// Detect→install latency series (cycles) and its overflow drops.
    pub latency: Vec<u64>,
    /// Latency samples evicted by the ring bound.
    pub latency_dropped: u64,
    /// Retained event-log entries.
    pub events: Vec<(Cycle, ResponseEvent)>,
    /// Event-log entries evicted by the ring bound.
    pub events_dropped: u64,
    /// Confirmed transitions not yet drained by a storm controller.
    pub fresh: Vec<ConfirmedTransition>,
    /// Debounced health view: confirmed-down links.
    pub health_confirmed: Vec<LinkId>,
    /// Debounced health view: in-flight excursions `(link, onset, down)`.
    pub health_pending: Vec<(LinkId, Cycle, bool)>,
}

/// One journal record. See the module docs for the wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A raw link transition drained from the engine.
    Observed {
        /// The link that changed state.
        link: LinkId,
        /// Engine cycle of the raw transition.
        at: Cycle,
        /// `true` = went down.
        down: bool,
    },
    /// A debounce poll ran at `now` and confirmed at least one
    /// transition. Replay re-runs the poll: its results are a pure
    /// function of the observed events and `now`.
    Polled {
        /// Cycle the poll ran at.
        now: Cycle,
    },
    /// A storm controller drained the fresh-confirmed queue.
    Drained,
    /// The administratively suppressed link set changed.
    Suppressed {
        /// The new suppressed set, sorted.
        links: Vec<LinkId>,
    },
    /// A response episode began (hosts gated).
    RespondStarted {
        /// Cycle the episode was triggered.
        detect: Cycle,
    },
    /// The purge command was raised on every switch.
    PurgeStarted {
        /// Cycle the purge began.
        at: Cycle,
    },
    /// The purge loop exited.
    PurgeDone {
        /// Cycle the loop exited.
        at: Cycle,
        /// Flits still in links if the purge budget ran out.
        flits_left: u64,
        /// `true` if the fabric drained completely.
        complete: bool,
    },
    /// The post-quiesce re-sample matched the already-installed masking.
    StaleDetected {
        /// Cycle of the detection.
        at: Cycle,
    },
    /// Phase one decided: `epoch` is being staged on every switch.
    Prepared {
        /// The candidate's epoch.
        epoch: u64,
        /// The dead-port set the candidate masks.
        masked: Vec<(SwitchId, usize)>,
    },
    /// The candidate was vetted under `epoch`.
    Vetted {
        /// The candidate's epoch.
        epoch: u64,
        /// `Ok` or the first diagnostic `(code, message)`.
        verdict: Result<(), (String, String)>,
    },
    /// Phase two decided: once this record is durable the commit *must*
    /// reach every switch — recovery re-drives it.
    Committed {
        /// The epoch being committed.
        epoch: u64,
    },
    /// The vet rejected the candidate; its stage is discarded.
    Aborted {
        /// Cycle of the rejection.
        at: Cycle,
        /// The aborted epoch.
        epoch: u64,
        /// Diagnostic code of the first analyzer error.
        code: String,
        /// Human-readable analyzer message.
        message: String,
    },
    /// The episode completed its tail (degrade/heal applied, hosts
    /// ungated); nothing is in flight after this.
    Finalized {
        /// Cycle the episode completed.
        at: Cycle,
        /// Epoch of the episode (0 for stale episodes).
        epoch: u64,
        /// How it ended.
        outcome: EpisodeOutcome,
    },
    /// Full durable state; replay restarts from the last intact one.
    Snapshot(Box<ResponderSnapshot>),
}

/// The write end of the journal: appends checksummed records to the
/// shared store and compacts it at snapshot boundaries.
///
/// Compaction is deliberately deferred: the bytes before a snapshot are
/// only dropped once something is durable *after* it (the next append,
/// or a reopen that parsed it intact). A crash can therefore tear the
/// snapshot line itself and recovery still replays from the records it
/// was meant to summarize — the torn snapshot was never durable, and
/// nothing it covered has been thrown away yet.
#[derive(Debug)]
pub struct Journal {
    store: JournalStore,
    cfg: JournalConfig,
    next_seq: u64,
    since_snapshot: u64,
    /// Byte offset of the last snapshot line, whose prefix is safe to
    /// drop as soon as the snapshot is known durable.
    compact_at: Option<usize>,
}

impl Journal {
    /// Opens a fresh, empty journal.
    pub fn new(cfg: JournalConfig) -> Self {
        Journal {
            store: Rc::new(RefCell::new(String::new())),
            cfg,
            next_seq: 0,
            since_snapshot: 0,
            compact_at: None,
        }
    }

    /// The shared backing store (clone to keep the bytes across a crash).
    pub fn store(&self) -> JournalStore {
        self.store.clone()
    }

    /// Re-opens a surviving store after a crash: parses every intact
    /// record (dropping a torn tail), returns them for replay, and
    /// positions the write end after the last durable sequence number.
    pub fn reopen(store: JournalStore, cfg: JournalConfig) -> (Self, Vec<(u64, JournalRecord)>) {
        let records = parse_store(&store.borrow());
        {
            // Truncate to the intact prefix (future appends must not
            // interleave with torn bytes), then compact away everything
            // before the last snapshot — it parsed, so it is durable.
            let mut s = store.borrow_mut();
            let intact_len = intact_prefix_len(&s);
            s.truncate(intact_len);
            if let Some(at) = last_snapshot_offset(&s) {
                s.replace_range(..at, "");
            }
        }
        let next_seq = records.last().map_or(0, |&(seq, _)| seq + 1);
        (
            Journal {
                store,
                cfg,
                next_seq,
                since_snapshot: records
                    .iter()
                    .rev()
                    .take_while(|(_, r)| !matches!(r, JournalRecord::Snapshot(_)))
                    .count() as u64,
                compact_at: None,
            },
            records,
        )
    }

    /// Appends one record, assigning it the next sequence number. A
    /// successful append proves the previous snapshot (if any) durable,
    /// so its deferred compaction runs first.
    pub fn append(&mut self, rec: &JournalRecord) {
        if let Some(at) = self.compact_at.take() {
            self.store.borrow_mut().replace_range(..at, "");
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut line = format!("v1 {seq} {}", encode_record(rec));
        let sum = fnv64(line.as_bytes());
        line.push_str(&format!(" #{sum:016x}\n"));
        let mut store = self.store.borrow_mut();
        let start = store.len();
        store.push_str(&line);
        drop(store);
        if matches!(rec, JournalRecord::Snapshot(_)) {
            self.compact_at = Some(start);
            self.since_snapshot = 0;
        } else {
            self.since_snapshot += 1;
        }
    }

    /// `true` once enough records accumulated that the next quiescent
    /// point should write a snapshot.
    pub fn wants_snapshot(&self) -> bool {
        self.since_snapshot >= self.cfg.snapshot_every
    }

    /// Records currently decodable from the store (diagnostics, tests).
    pub fn records(&self) -> Vec<(u64, JournalRecord)> {
        parse_store(&self.store.borrow())
    }

    /// Bytes currently held (after compaction).
    pub fn len_bytes(&self) -> usize {
        self.store.borrow().len()
    }

    /// Tears `n` bytes off the end of the store — the crash harness's
    /// model of a crash mid-append (a torn, checksum-failing last line).
    pub fn tear_tail(store: &JournalStore, n: usize) {
        let mut s = store.borrow_mut();
        let keep = s.len().saturating_sub(n);
        s.truncate(keep);
    }
}

/// Byte offset where the last intact snapshot line starts, if any.
fn last_snapshot_offset(text: &str) -> Option<usize> {
    let mut offset = 0;
    let mut found = None;
    for line in text.split_inclusive('\n') {
        if let Some((_, JournalRecord::Snapshot(_))) = parse_line(line.trim_end_matches('\n')) {
            found = Some(offset);
        }
        offset += line.len();
    }
    found
}

/// Byte length of the longest prefix of `text` made of intact lines.
fn intact_prefix_len(text: &str) -> usize {
    let mut len = 0;
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') || parse_line(line.trim_end_matches('\n')).is_none() {
            break;
        }
        len += line.len();
    }
    len
}

/// Parses the intact record prefix of a store, starting from the last
/// snapshot found (earlier records were compacted or are redundant).
fn parse_store(text: &str) -> Vec<(u64, JournalRecord)> {
    let mut records = Vec::new();
    for line in text.lines() {
        match parse_line(line) {
            Some(rec) => records.push(rec),
            None => break, // torn tail: nothing after it was durable
        }
    }
    if let Some(snap_idx) = records
        .iter()
        .rposition(|(_, r)| matches!(r, JournalRecord::Snapshot(_)))
    {
        records.drain(..snap_idx);
    }
    records
}

/// FNV-64 hex digest of a snapshot's serialized form — a fingerprint of
/// the responder's complete durable state. Two responders with equal
/// digests would journal byte-identical snapshots; the crash harness
/// holds every recovered run to digest equality with its uncrashed
/// oracle (surfaced as `RunOutcome::response_digest`).
pub fn snapshot_digest(s: &ResponderSnapshot) -> String {
    let encoded = encode_record(&JournalRecord::Snapshot(Box::new(s.clone())));
    format!("{:016x}", fnv64(encoded.as_bytes()))
}

/// FNV-1a, the repo's standard cheap checksum.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Percent-encodes a string into one space-free ASCII token. An empty
/// string encodes as `%` (decodes back to empty).
fn enc(s: &str) -> String {
    if s.is_empty() {
        return "%".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'.' | b':' | b'-' | b'/' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02x}")),
        }
    }
    out
}

/// Inverse of [`enc`]. `None` on malformed escapes.
fn dec(s: &str) -> Option<String> {
    if s == "%" {
        return Some(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn encode_ports(ports: &[(SwitchId, usize)]) -> String {
    let mut out = format!("{}", ports.len());
    for (s, p) in ports {
        out.push_str(&format!(" {}:{}", s.index(), p));
    }
    out
}

fn encode_links(links: &[LinkId]) -> String {
    let mut out = format!("{}", links.len());
    for l in links {
        out.push_str(&format!(" {}", l.index()));
    }
    out
}

fn encode_event(ev: &ResponseEvent) -> String {
    match ev {
        ResponseEvent::LinkConfirmed { link, down } => {
            format!("confirmed,{},{}", link.index(), u8::from(*down))
        }
        ResponseEvent::Rerouted { masked_ports } => format!("rerouted,{masked_ports}"),
        ResponseEvent::RerouteRejected { code, message } => {
            format!("rejected,{},{}", enc(code), enc(message))
        }
        ResponseEvent::Healed => "healed".to_string(),
        ResponseEvent::PurgeIncomplete { flits_left } => format!("purgeinc,{flits_left}"),
        ResponseEvent::StaleDetect => "stale".to_string(),
    }
}

fn decode_event(s: &str) -> Option<ResponseEvent> {
    let mut it = s.split(',');
    let kind = it.next()?;
    let ev = match kind {
        "confirmed" => ResponseEvent::LinkConfirmed {
            link: LinkId::from(it.next()?.parse::<usize>().ok()?),
            down: it.next()? == "1",
        },
        "rerouted" => ResponseEvent::Rerouted {
            masked_ports: it.next()?.parse().ok()?,
        },
        "rejected" => ResponseEvent::RerouteRejected {
            code: dec(it.next()?)?,
            message: dec(it.next()?)?,
        },
        "healed" => ResponseEvent::Healed,
        "purgeinc" => ResponseEvent::PurgeIncomplete {
            flits_left: it.next()?.parse().ok()?,
        },
        "stale" => ResponseEvent::StaleDetect,
        _ => return None,
    };
    Some(ev)
}

fn encode_record(rec: &JournalRecord) -> String {
    match rec {
        JournalRecord::Observed { link, at, down } => {
            format!("observed {} {} {}", link.index(), at, u8::from(*down))
        }
        JournalRecord::Polled { now } => format!("polled {now}"),
        JournalRecord::Drained => "drained".to_string(),
        JournalRecord::Suppressed { links } => {
            format!("suppressed {}", encode_links(links))
        }
        JournalRecord::RespondStarted { detect } => format!("respond {detect}"),
        JournalRecord::PurgeStarted { at } => format!("purge-start {at}"),
        JournalRecord::PurgeDone {
            at,
            flits_left,
            complete,
        } => format!("purge-done {at} {flits_left} {}", u8::from(*complete)),
        JournalRecord::StaleDetected { at } => format!("stale {at}"),
        JournalRecord::Prepared { epoch, masked } => {
            format!("prepared {epoch} {}", encode_ports(masked))
        }
        JournalRecord::Vetted { epoch, verdict } => match verdict {
            Ok(()) => format!("vetted {epoch} 1"),
            Err((code, message)) => {
                format!("vetted {epoch} 0 {} {}", enc(code), enc(message))
            }
        },
        JournalRecord::Committed { epoch } => format!("committed {epoch}"),
        JournalRecord::Aborted {
            at,
            epoch,
            code,
            message,
        } => format!("aborted {at} {epoch} {} {}", enc(code), enc(message)),
        JournalRecord::Finalized { at, epoch, outcome } => {
            let out = match outcome {
                EpisodeOutcome::Installed { masked_ports } => format!("installed {masked_ports}"),
                EpisodeOutcome::Healed => "healed".to_string(),
                EpisodeOutcome::Rejected => "rejected".to_string(),
                EpisodeOutcome::Stale => "stale".to_string(),
            };
            format!("finalized {at} {epoch} {out}")
        }
        JournalRecord::Snapshot(s) => {
            let mut out = format!("snapshot {} {}", s.last_epoch, encode_ports(&s.masked));
            out.push_str(&format!(" {}", encode_links(&s.suppressed)));
            let c = &s.counters;
            out.push_str(&format!(
                " {} {} {} {} {} {} {} {}",
                c.links_down,
                c.links_up,
                c.reroutes,
                c.reroutes_rejected,
                c.heals,
                c.purges,
                c.purges_incomplete,
                c.stale_detects
            ));
            out.push_str(&format!(" {} {}", s.latency_dropped, s.latency.len()));
            for v in &s.latency {
                out.push_str(&format!(" {v}"));
            }
            out.push_str(&format!(" {} {}", s.events_dropped, s.events.len()));
            for (at, ev) in &s.events {
                out.push_str(&format!(" {at} {}", encode_event(ev)));
            }
            out.push_str(&format!(" {}", s.fresh.len()));
            for t in &s.fresh {
                out.push_str(&format!(
                    " {},{},{}",
                    t.at,
                    t.link.index(),
                    u8::from(t.down)
                ));
            }
            out.push_str(&format!(" {}", encode_links(&s.health_confirmed)));
            out.push_str(&format!(" {}", s.health_pending.len()));
            for (l, at, down) in &s.health_pending {
                out.push_str(&format!(" {},{},{}", l.index(), at, u8::from(*down)));
            }
            out
        }
    }
}

/// Parses one `v1` line (without trailing newline), verifying the
/// checksum. `None` = torn or corrupt.
fn parse_line(line: &str) -> Option<(u64, JournalRecord)> {
    let (body, sum_hex) = line.rsplit_once(" #")?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if fnv64(body.as_bytes()) != sum {
        return None;
    }
    let mut it = body.split(' ');
    if it.next()? != "v1" {
        return None;
    }
    let seq: u64 = it.next()?.parse().ok()?;
    let rec = decode_record(&mut it)?;
    Some((seq, rec))
}

fn next_usize<'a>(it: &mut impl Iterator<Item = &'a str>) -> Option<usize> {
    it.next()?.parse().ok()
}

fn next_u64<'a>(it: &mut impl Iterator<Item = &'a str>) -> Option<u64> {
    it.next()?.parse().ok()
}

fn decode_ports<'a>(it: &mut impl Iterator<Item = &'a str>) -> Option<Vec<(SwitchId, usize)>> {
    let n = next_usize(it)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, p) = it.next()?.split_once(':')?;
        out.push((SwitchId::from(s.parse::<usize>().ok()?), p.parse().ok()?));
    }
    Some(out)
}

fn decode_links<'a>(it: &mut impl Iterator<Item = &'a str>) -> Option<Vec<LinkId>> {
    let n = next_usize(it)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(LinkId::from(next_usize(it)?));
    }
    Some(out)
}

fn decode_record<'a>(it: &mut impl Iterator<Item = &'a str>) -> Option<JournalRecord> {
    let rec = match it.next()? {
        "observed" => JournalRecord::Observed {
            link: LinkId::from(next_usize(it)?),
            at: next_u64(it)?,
            down: it.next()? == "1",
        },
        "polled" => JournalRecord::Polled { now: next_u64(it)? },
        "drained" => JournalRecord::Drained,
        "suppressed" => JournalRecord::Suppressed {
            links: decode_links(it)?,
        },
        "respond" => JournalRecord::RespondStarted {
            detect: next_u64(it)?,
        },
        "purge-start" => JournalRecord::PurgeStarted { at: next_u64(it)? },
        "purge-done" => JournalRecord::PurgeDone {
            at: next_u64(it)?,
            flits_left: next_u64(it)?,
            complete: it.next()? == "1",
        },
        "stale" => JournalRecord::StaleDetected { at: next_u64(it)? },
        "prepared" => JournalRecord::Prepared {
            epoch: next_u64(it)?,
            masked: decode_ports(it)?,
        },
        "vetted" => {
            let epoch = next_u64(it)?;
            let verdict = if it.next()? == "1" {
                Ok(())
            } else {
                Err((dec(it.next()?)?, dec(it.next()?)?))
            };
            JournalRecord::Vetted { epoch, verdict }
        }
        "committed" => JournalRecord::Committed {
            epoch: next_u64(it)?,
        },
        "aborted" => JournalRecord::Aborted {
            at: next_u64(it)?,
            epoch: next_u64(it)?,
            code: dec(it.next()?)?,
            message: dec(it.next()?)?,
        },
        "finalized" => {
            let at = next_u64(it)?;
            let epoch = next_u64(it)?;
            let outcome = match it.next()? {
                "installed" => EpisodeOutcome::Installed {
                    masked_ports: next_usize(it)?,
                },
                "healed" => EpisodeOutcome::Healed,
                "rejected" => EpisodeOutcome::Rejected,
                "stale" => EpisodeOutcome::Stale,
                _ => return None,
            };
            JournalRecord::Finalized { at, epoch, outcome }
        }
        "snapshot" => {
            let mut s = ResponderSnapshot {
                last_epoch: next_u64(it)?,
                masked: decode_ports(it)?,
                suppressed: decode_links(it)?,
                ..ResponderSnapshot::default()
            };
            s.counters = ResponseCounters {
                links_down: next_u64(it)?,
                links_up: next_u64(it)?,
                reroutes: next_u64(it)?,
                reroutes_rejected: next_u64(it)?,
                heals: next_u64(it)?,
                purges: next_u64(it)?,
                purges_incomplete: next_u64(it)?,
                stale_detects: next_u64(it)?,
            };
            s.latency_dropped = next_u64(it)?;
            let n = next_usize(it)?;
            for _ in 0..n {
                s.latency.push(next_u64(it)?);
            }
            s.events_dropped = next_u64(it)?;
            let n = next_usize(it)?;
            for _ in 0..n {
                let at = next_u64(it)?;
                s.events.push((at, decode_event(it.next()?)?));
            }
            let n = next_usize(it)?;
            for _ in 0..n {
                let tok = it.next()?;
                let mut f = tok.split(',');
                s.fresh.push(ConfirmedTransition {
                    at: f.next()?.parse().ok()?,
                    link: LinkId::from(f.next()?.parse::<usize>().ok()?),
                    down: f.next()? == "1",
                });
            }
            s.health_confirmed = decode_links(it)?;
            let n = next_usize(it)?;
            for _ in 0..n {
                let tok = it.next()?;
                let mut f = tok.split(',');
                s.health_pending.push((
                    LinkId::from(f.next()?.parse::<usize>().ok()?),
                    f.next()?.parse().ok()?,
                    f.next()? == "1",
                ));
            }
            JournalRecord::Snapshot(Box::new(s))
        }
        _ => return None,
    };
    Some(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Observed {
                link: LinkId::from(3usize),
                at: 100,
                down: true,
            },
            JournalRecord::Polled { now: 164 },
            JournalRecord::RespondStarted { detect: 170 },
            JournalRecord::PurgeStarted { at: 426 },
            JournalRecord::PurgeDone {
                at: 430,
                flits_left: 0,
                complete: true,
            },
            JournalRecord::Prepared {
                epoch: 1,
                masked: vec![(SwitchId::from(2usize), 1)],
            },
            JournalRecord::Vetted {
                epoch: 1,
                verdict: Ok(()),
            },
            JournalRecord::Committed { epoch: 1 },
            JournalRecord::Finalized {
                at: 430,
                epoch: 1,
                outcome: EpisodeOutcome::Installed { masked_ports: 1 },
            },
            JournalRecord::Aborted {
                at: 12,
                epoch: 2,
                code: "cdg-cycle".into(),
                message: "cycle via port 3 (worm shapes: asc)".into(),
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_the_wire_format() {
        let mut j = Journal::new(JournalConfig::default());
        let recs = sample_records();
        for r in &recs {
            j.append(r);
        }
        let back = j.records();
        assert_eq!(back.len(), recs.len());
        for (i, (seq, r)) in back.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(r, &recs[i]);
        }
    }

    #[test]
    fn snapshot_roundtrips_and_compacts() {
        let mut j = Journal::new(JournalConfig { snapshot_every: 4 });
        for r in sample_records() {
            j.append(&r);
        }
        assert!(j.wants_snapshot());
        let snap = ResponderSnapshot {
            last_epoch: 2,
            masked: vec![(SwitchId::from(1usize), 0)],
            suppressed: vec![LinkId::from(9usize)],
            counters: ResponseCounters {
                links_down: 3,
                reroutes: 1,
                ..ResponseCounters::default()
            },
            latency: vec![260, 281],
            latency_dropped: 1,
            events: vec![
                (
                    164,
                    ResponseEvent::LinkConfirmed {
                        link: LinkId::from(3usize),
                        down: true,
                    },
                ),
                (
                    430,
                    ResponseEvent::RerouteRejected {
                        code: "cdg-cycle".into(),
                        message: "has spaces & specials %".into(),
                    },
                ),
            ],
            events_dropped: 7,
            fresh: vec![ConfirmedTransition {
                at: 164,
                link: LinkId::from(3usize),
                down: true,
            }],
            health_confirmed: vec![LinkId::from(3usize)],
            health_pending: vec![(LinkId::from(5usize), 400, true)],
        };
        j.append(&JournalRecord::Snapshot(Box::new(snap.clone())));
        assert!(!j.wants_snapshot());
        let records = j.records();
        assert_eq!(records.len(), 1, "compaction dropped the prefix");
        match &records[0].1 {
            JournalRecord::Snapshot(s) => assert_eq!(**s, snap),
            other => panic!("expected snapshot, got {other:?}"),
        }
    }

    #[test]
    fn torn_snapshot_falls_back_to_the_records_it_summarized() {
        let mut j = Journal::new(JournalConfig { snapshot_every: 4 });
        let recs = sample_records();
        for r in &recs {
            j.append(r);
        }
        j.append(&JournalRecord::Snapshot(Box::new(ResponderSnapshot {
            last_epoch: 2,
            ..ResponderSnapshot::default()
        })));
        let store = j.store();
        // The crash tears the snapshot line itself. Deferred compaction
        // means the summarized records are still physically present.
        Journal::tear_tail(&store, 10);
        let (_, records) = Journal::reopen(store, JournalConfig::default());
        assert_eq!(records.len(), recs.len(), "pre-snapshot records survive");
        assert_eq!(records[0].1, recs[0]);
    }

    #[test]
    fn durable_snapshot_compacts_on_next_append_and_reopen() {
        let mut j = Journal::new(JournalConfig { snapshot_every: 4 });
        for r in sample_records() {
            j.append(&r);
        }
        let pre = j.len_bytes();
        j.append(&JournalRecord::Snapshot(Box::default()));
        assert!(j.len_bytes() > pre, "compaction is deferred");
        j.append(&JournalRecord::Committed { epoch: 3 });
        assert!(j.len_bytes() < pre, "next append proved it durable");
        let records = j.records();
        assert_eq!(records.len(), 2, "snapshot + the record after it");

        // Reopen also compacts behind an intact snapshot.
        let (j2, replay) = Journal::reopen(j.store(), JournalConfig::default());
        assert_eq!(replay.len(), 2);
        assert_eq!(j2.len_bytes(), j.len_bytes());
    }

    #[test]
    fn torn_tail_is_dropped_and_reopen_resumes_sequencing() {
        let mut j = Journal::new(JournalConfig::default());
        for r in sample_records() {
            j.append(&r);
        }
        let store = j.store();
        let full = Journal::reopen(store.clone(), JournalConfig::default())
            .1
            .len();
        // Tear a few bytes off the last line: its checksum cannot match.
        Journal::tear_tail(&store, 5);
        let (mut j2, records) = Journal::reopen(store.clone(), JournalConfig::default());
        assert_eq!(records.len(), full - 1, "torn record was never durable");
        // The write end resumes after the last durable seq and appends fine.
        j2.append(&JournalRecord::Committed { epoch: 9 });
        let records = j2.records();
        assert_eq!(records.last().unwrap().0, full as u64 - 1);
        assert_eq!(
            records.last().unwrap().1,
            JournalRecord::Committed { epoch: 9 }
        );
    }

    #[test]
    fn duplicated_tail_replays_with_stable_seqs() {
        // A crashed writer may duplicate its tail; sequence numbers make
        // the duplicates detectable (same seq) so replay skips them.
        let mut j = Journal::new(JournalConfig::default());
        for r in sample_records() {
            j.append(&r);
        }
        let store = j.store();
        let tail: String = {
            let s = store.borrow();
            let lines: Vec<&str> = s.lines().collect();
            format!("{}\n{}\n", lines[lines.len() - 2], lines[lines.len() - 1])
        };
        store.borrow_mut().push_str(&tail);
        let (_, records) = Journal::reopen(store, JournalConfig::default());
        let n = records.len();
        assert_eq!(records[n - 1].0, records[n - 3].0, "duplicate tail seqs");
    }

    #[test]
    fn mid_log_corruption_fences_everything_after() {
        let mut j = Journal::new(JournalConfig::default());
        for r in sample_records() {
            j.append(&r);
        }
        let store = j.store();
        let corrupted = store.borrow().replacen("respond", "fespond", 1);
        *store.borrow_mut() = corrupted;
        let (_, records) = Journal::reopen(store, JournalConfig::default());
        assert_eq!(records.len(), 2, "only records before the flip survive");
    }
}
