//! Parallel experiment sweeps: fan independent deterministic runs out over
//! a fixed-size worker pool.
//!
//! The evaluation is a large cross-product of *independent* runs — every
//! `(SystemConfig, TrafficSpec, RunConfig)` job builds its own engine,
//! measures it, and returns a [`RunOutcome`]. The simulator internals are
//! deliberately single-threaded (`Rc`/`RefCell` everywhere), so the fan-out
//! happens strictly **above** the engine:
//!
//! * only the plain-data job descriptions (all `Send`) cross into worker
//!   threads;
//! * each worker constructs, runs, and drops its engine entirely inside its
//!   own thread, so no `Rc` ever crosses a thread boundary (the compiler
//!   enforces this: `!Send` types cannot leave the closure);
//! * results come back tagged with their submission index and are returned
//!   in **submission order**, so tables and CSVs are bit-identical to a
//!   serial run regardless of worker count or scheduling.
//!
//! The pool size comes from [`jobs`]: an explicit [`set_jobs`] override
//! (e.g. the `figures --jobs N` flag), else the `MDWORM_JOBS` environment
//! variable, else [`std::thread::available_parallelism`] — clamped to the
//! host's CPU count, since oversubscribing a CPU-bound sweep only adds
//! overhead.

use crate::config::SystemConfig;
use crate::sim::{run_experiment, RunConfig, RunOutcome};
use crate::workload::TrafficSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-pool size for all subsequent sweeps (0 clears the
/// override, falling back to `MDWORM_JOBS` / available parallelism).
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker-pool size sweeps use: [`set_jobs`] override, else the
/// `MDWORM_JOBS` environment variable, else available parallelism — in
/// every case clamped to the host's CPU count. Requesting more workers
/// than cores never helps a CPU-bound sweep: the extra threads just add
/// submission and contention overhead (measured as the `speedup: 0.888`
/// regression in `results/BENCH_sweep.json` on a 1-core host), and at an
/// effective count of 1 [`parallel_map`] skips the pool entirely.
pub fn jobs() -> usize {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    resolve_jobs(
        JOBS_OVERRIDE.load(Ordering::Relaxed),
        std::env::var("MDWORM_JOBS").ok().as_deref(),
    )
    .min(host_cpus)
}

/// Pure resolution logic behind [`jobs`], separated for testability.
fn resolve_jobs(override_n: usize, env: Option<&str>) -> usize {
    if override_n > 0 {
        return override_n;
    }
    if let Some(n) = env.and_then(|v| v.trim().parse::<usize>().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over every job on a pool of `n_workers` scoped threads and
/// returns the results **in submission order**.
///
/// Jobs are handed out first-come-first-served, so long and short runs
/// load-balance naturally; the submission index travels with each result
/// and the output is re-sorted before returning. With `n_workers <= 1` (or
/// a single job) everything runs inline on the caller's thread — that path
/// is the serial reference the determinism tests compare against.
///
/// # Panics
///
/// Propagates the first worker panic after all threads have joined
/// (via [`std::thread::scope`]).
pub fn parallel_map<J, R, F>(jobs_list: Vec<J>, n_workers: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let n_workers = n_workers.clamp(1, jobs_list.len().max(1));
    if n_workers == 1 {
        return jobs_list.into_iter().map(f).collect();
    }
    let n_jobs = jobs_list.len();
    let queue = Mutex::new(jobs_list.into_iter().enumerate());
    let results = Mutex::new(Vec::with_capacity(n_jobs));
    std::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|| loop {
                // Take the lock only to pull the next job; the engine run
                // itself happens lock-free on this worker's own state.
                let next = queue.lock().expect("job queue poisoned").next();
                let Some((i, job)) = next else { break };
                let r = f(job);
                results.lock().expect("result sink poisoned").push((i, r));
            });
        }
    });
    let mut tagged = results.into_inner().expect("result sink poisoned");
    debug_assert_eq!(tagged.len(), n_jobs);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// One simulation run of a sweep: everything [`run_experiment`] needs,
/// as plain `Send` data.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// System to build.
    pub config: SystemConfig,
    /// Workload to offer.
    pub spec: TrafficSpec,
    /// Run-length parameters.
    pub run: RunConfig,
}

impl SweepJob {
    /// Bundles one run's parameters.
    pub fn new(config: SystemConfig, spec: TrafficSpec, run: RunConfig) -> Self {
        SweepJob { config, spec, run }
    }
}

// The whole scheme rests on job descriptions and outcomes being Send while
// the engine internals are not; make the former a compile-time guarantee.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SweepJob>();
    assert_send::<RunOutcome>();
};

/// Runs every job through [`run_experiment`] on `n_workers` threads,
/// returning outcomes in submission order.
pub fn run_sweep(jobs_list: Vec<SweepJob>, n_workers: usize) -> Vec<RunOutcome> {
    parallel_map(jobs_list, n_workers, |j| {
        run_experiment(&j.config, &j.spec, &j.run)
    })
}

/// [`run_sweep`] with the pool size from [`jobs`].
pub fn run_sweep_auto(jobs_list: Vec<SweepJob>) -> Vec<RunOutcome> {
    let n = jobs();
    run_sweep(jobs_list, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};

    #[test]
    fn results_come_back_in_submission_order() {
        // Reverse-sized workloads so later (cheaper) jobs finish first.
        let jobs_list: Vec<u64> = (0..32).rev().collect();
        let out = parallel_map(jobs_list.clone(), 4, |ms| {
            std::thread::sleep(std::time::Duration::from_micros(ms * 10));
            ms
        });
        assert_eq!(out, jobs_list);
    }

    #[test]
    fn single_worker_runs_inline() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        let empty: Vec<i32> = parallel_map(Vec::new(), 8, |x: i32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn jobs_resolution_precedence() {
        assert_eq!(resolve_jobs(3, Some("7")), 3, "override wins");
        assert_eq!(resolve_jobs(0, Some("7")), 7, "env var next");
        assert_eq!(resolve_jobs(0, Some(" 5 ")), 5, "env var is trimmed");
        let fallback = resolve_jobs(0, Some("garbage"));
        assert!(fallback >= 1, "bad env falls back to parallelism");
        assert_eq!(resolve_jobs(0, None), resolve_jobs(0, Some("0")));
    }

    #[test]
    fn jobs_clamps_to_host_cpus() {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        set_jobs(host * 8);
        let effective = jobs();
        set_jobs(0);
        assert_eq!(effective, host, "oversubscribed --jobs must be clamped");
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let _ = parallel_map(vec![0u32, 1, 2, 3], 2, |x| {
            assert_ne!(x, 2, "worker exploded");
            x
        });
    }

    fn e2_style_jobs(seed: u64) -> Vec<SweepJob> {
        let base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 2, n: 3 }, // 8 hosts
            seed,
            ..SystemConfig::default()
        };
        let mut jobs_list = Vec::new();
        for (arch, mcast) in [
            (SwitchArch::CentralBuffer, McastImpl::HwBitString),
            (SwitchArch::InputBuffered, McastImpl::HwBitString),
            (SwitchArch::CentralBuffer, McastImpl::SwBinomial),
        ] {
            for load in [0.03, 0.08] {
                jobs_list.push(SweepJob::new(
                    SystemConfig {
                        arch,
                        mcast,
                        ..base.clone()
                    },
                    TrafficSpec::multiple_multicast(load, 4, 16),
                    RunConfig::quick(),
                ));
            }
        }
        jobs_list
    }

    /// The satellite determinism guarantee: the parallel sweep of an
    /// E2-style job list is outcome-identical to the serial path, for two
    /// seeds and pools of 1 and 4 workers.
    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        for seed in [SystemConfig::default().seed, 0xFEED_FACE] {
            let serial = run_sweep(e2_style_jobs(seed), 1);
            for workers in [1usize, 4] {
                let parallel = run_sweep(e2_style_jobs(seed), workers);
                assert_eq!(serial.len(), parallel.len());
                for (s, p) in serial.iter().zip(&parallel) {
                    assert_eq!(s.mcast_last, p.mcast_last, "seed {seed:#x}");
                    assert_eq!(s.mcast_avg, p.mcast_avg);
                    assert_eq!(s.unicast, p.unicast);
                    assert_eq!(s.throughput.to_bits(), p.throughput.to_bits());
                    assert_eq!(s.completed_mcasts, p.completed_mcasts);
                    assert_eq!(s.completed_unicasts, p.completed_unicasts);
                    assert_eq!(s.leftover, p.leftover);
                    assert_eq!(s.cycles, p.cycles);
                    assert_eq!(s.eject_utilization.to_bits(), p.eject_utilization.to_bits());
                }
            }
        }
    }
}
