//! `mdw-routed` — the resident fault-tolerant fabric-control service.
//!
//! Owns one simulated fabric and serves the line protocol of
//! [`mdworm::routed::proto`] over stdin/stdout (default), a local TCP
//! socket (`--listen`), or a script file (`--script`, deterministic:
//! no reader threads, time moves only on `step`).
//!
//! ```text
//! mdw-routed [--config FILE] [--script FILE] [--listen ADDR]
//!            [--p99-budget CYCLES]
//! ```
//!
//! * `--config FILE` — `key = value` config text (see `configs/*.mdw`);
//!   the `response` and `routed` blocks default on when absent.
//! * `--script FILE` — run the requests in FILE, echo each with its
//!   reply, print the final metrics line, and exit.
//! * `--listen ADDR` — accept line-protocol clients on `ADDR`
//!   (e.g. `127.0.0.1:9097`), one thread per connection, all funneled
//!   through the bounded queue: events get backpressure, queries shed.
//! * `--p99-budget CYCLES` — exit non-zero if the final p99
//!   detect→install latency exceeds the budget (CI smoke gate).
//!
//! Exit status: 0 on clean shutdown within budget, 1 on budget breach,
//! 2 on usage/config errors.

use mdworm::cfgtext::parse_config;
use mdworm::config::SystemConfig;
use mdworm::routed::queue::{submit, Envelope, ShedCounter};
use mdworm::routed::{Request, RoutedService};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, SyncSender};

struct Args {
    config: Option<String>,
    script: Option<String>,
    listen: Option<String>,
    p99_budget: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let usage = "usage: mdw-routed [--config FILE] [--script FILE] \
                 [--listen ADDR] [--p99-budget CYCLES]";
    let mut args = Args {
        config: None,
        script: None,
        listen: None,
        p99_budget: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut want = |what: &str| argv.next().ok_or(format!("{what} needs a value\n{usage}"));
        match arg.as_str() {
            "--config" => args.config = Some(want("--config")?),
            "--script" => args.script = Some(want("--script")?),
            "--listen" => args.listen = Some(want("--listen")?),
            "--p99-budget" => {
                let v = want("--p99-budget")?;
                args.p99_budget = Some(v.parse().map_err(|_| format!("bad --p99-budget `{v}`"))?);
            }
            "--help" | "-h" => return Err(usage.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{usage}")),
        }
    }
    if args.script.is_some() && args.listen.is_some() {
        return Err(format!("--script and --listen are exclusive\n{usage}"));
    }
    Ok(args)
}

fn load_config(path: Option<&str>) -> Result<SystemConfig, String> {
    match path {
        None => Ok(SystemConfig::default()),
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            parse_config(&text).map_err(|e| format!("{p}: {e}"))
        }
    }
}

/// Deterministic script mode: requests apply in file order on the one
/// service thread; nothing is shed and time moves only on `step`.
fn run_script(service: &mut RoutedService, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let reply = match Request::parse(line) {
            Ok(req) => {
                let reply = service.handle(&req);
                if req == Request::Quit {
                    println!("> {line}\n{reply}");
                    return Ok(());
                }
                reply
            }
            Err(e) => format!("err line {}: {e}", lineno + 1),
        };
        println!("> {line}\n{reply}");
    }
    Ok(())
}

/// One reader: parse lines from `input`, funnel them through the bounded
/// queue, write each reply to `output`. Returns when the client sends
/// `quit`, hits EOF, or the service loop goes away.
fn pump_lines<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    tx: &SyncSender<Envelope>,
    shed: &ShedCounter,
) {
    for line in input.lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let req = match Request::parse(trimmed) {
            Ok(req) => req,
            Err(e) => {
                if writeln!(output, "err {e}").is_err() {
                    break;
                }
                continue;
            }
        };
        let quit = req == Request::Quit;
        let (reply_tx, reply_rx) = mpsc::channel();
        let env = Envelope {
            req,
            reply: reply_tx,
        };
        match submit(tx, env, shed) {
            Ok(_) => {
                // Shed queries already carry their `err shed` reply.
                if let Ok(reply) = reply_rx.recv() {
                    if writeln!(output, "{reply}").is_err() {
                        break;
                    }
                }
            }
            Err(_) => break,
        }
        if quit {
            break;
        }
    }
}

fn serve_tcp(addr: &str, tx: SyncSender<Envelope>, shed: ShedCounter) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
    eprintln!("mdw-routed: listening on {addr}");
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let tx = tx.clone();
        let shed = shed.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            pump_lines::<BufReader<TcpStream>, TcpStream>(reader, stream, &tx, &shed);
        });
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = match load_config(args.config.as_deref()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mdw-routed: {e}");
            std::process::exit(2);
        }
    };
    let mut service = match RoutedService::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mdw-routed: {e}");
            std::process::exit(2);
        }
    };
    let queue_cap = service.queue_cap();
    let shed = service.shed_counter();

    if let Some(script) = &args.script {
        if let Err(e) = run_script(&mut service, script) {
            eprintln!("mdw-routed: {e}");
            std::process::exit(2);
        }
    } else {
        let (tx, rx) = mpsc::sync_channel::<Envelope>(queue_cap);
        if let Some(addr) = args.listen.clone() {
            let shed = shed.clone();
            std::thread::spawn(move || {
                if let Err(e) = serve_tcp(&addr, tx, shed) {
                    eprintln!("mdw-routed: {e}");
                    std::process::exit(2);
                }
            });
        } else {
            let shed = shed.clone();
            std::thread::spawn(move || {
                let stdin = std::io::stdin();
                pump_lines(stdin.lock(), std::io::stdout(), &tx, &shed);
            });
        }
        // The service loop runs here until `quit` or every client is gone.
        service.run(&rx, true);
    }

    let metrics = service.metrics();
    eprintln!("mdw-routed: {}", metrics.render());
    if let Some(budget) = args.p99_budget {
        if metrics.detect_install_p99 > budget {
            eprintln!(
                "mdw-routed: p99 detect→install {} cycles exceeds budget {budget}",
                metrics.detect_install_p99
            );
            std::process::exit(1);
        }
    }
}
