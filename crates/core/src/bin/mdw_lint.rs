//! Static deadlock-freedom & protocol-invariant linter for system configs.
//!
//! Runs the full `mdw-analysis` pass — switch buffer sizing, system-level
//! consistency, channel-dependency-graph cycle detection, and header
//! round-trip checks — over one or more config files *without simulating
//! a single cycle*, and reports the findings human-readably or as JSON.
//!
//! ```text
//! cargo run --release -p mdworm --bin mdw-lint -- configs/sp2-default.mdw
//! cargo run --release -p mdworm --bin mdw-lint -- --json configs/*.mdw
//! cargo run --release -p mdworm --bin mdw-lint -- --default
//! cargo run --release -p mdworm --bin mdw-lint -- --model-check configs/*.mdw
//! cargo run --release -p mdworm --bin mdw-lint -- --model-check \
//!     --model-switches 16 --model-jobs 4 --model-stats configs/sp2-default.mdw
//! cargo run --release -p mdworm --bin mdw-lint -- --certify configs/fat-tree-4k.mdw
//! ```
//!
//! Config files are `key = value` lines (`#` starts a comment); unknown
//! keys are rejected. See `configs/` for annotated examples. Exit status
//! is non-zero iff any linted config has an error-severity finding, so
//! the tool slots directly into CI and sweep-launcher scripts.
//!
//! `--model-check` additionally runs the `mdw-model` bounded model
//! checker (see `mdw_analysis::model`): the configured architecture,
//! replication mode, and replication policy are explored exhaustively
//! over small fabrics, verifying chunk conservation and the paper's
//! buffered-eventually liveness condition on the state machines the
//! simulator actually runs. A violation prints a minimal counterexample
//! trace and fails the lint. The exploration runs symmetry-reduced with
//! partial-order reduction (DESIGN.md §14); knobs:
//!
//! * `--model-mode exact|compositional|auto` — joint exploration, the
//!   per-switch assume-guarantee decomposition, or size-driven selection
//!   (the default; overrides the config's `model.mode` key when given);
//! * `--model-switches N` — largest scenario fabric explored (default 2);
//! * `--model-jobs N` — worker threads per BFS level (verdicts are
//!   byte-identical at any value);
//! * `--model-stats` — one JSON line per config with state counts, the
//!   orbit-reduction factor, ample-set skips and wall time.
//!
//! `--certify` runs *both* deadlock-verdict paths over each statically
//! sound config — the O(routes) rank-certificate checker
//! (`mdw_analysis::certify`, DESIGN.md §16) and the explicit CDG
//! analysis bounded at the config's `certify.cdg_budget` — and fails the
//! lint if the certificate rejects the fabric or the two verdicts
//! disagree where the explicit pass completed. The per-config line
//! reports both wall times, so the certificate's advantage at 4K+
//! endpoints (where explicit enumeration exhausts its budget) is visible
//! directly.

use mdw_analysis::{
    check_model_opts, ArchClass, CheckOutcome, ModelBounds, ModelMode, ModelOptions,
};
use mdworm::cfgtext::parse_config;
use mdworm::config::{SwitchArch, SystemConfig};
use switches::ReplicationMode;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: mdw-lint [--json] [--default] [--model-check] \
                 [--model-mode exact|compositional|auto] [--model-switches N] \
                 [--model-jobs N] [--model-stats] [--certify] <config.mdw>...";
    let mut json = false;
    let mut lint_default = false;
    let mut model_check = false;
    let mut certify = false;
    let mut model_stats = false;
    let mut model_mode: Option<ModelMode> = None;
    let mut model_switches: Option<usize> = None;
    let mut model_jobs: usize = 1;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let value_of = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("{} needs a value\n{usage}", argv[*i - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--json" => json = true,
            "--default" => lint_default = true,
            "--model-check" => model_check = true,
            "--certify" => certify = true,
            "--model-stats" => model_stats = true,
            "--model-mode" => {
                model_mode = Some(match value_of(&mut i).as_str() {
                    "exact" => ModelMode::Exact,
                    "compositional" => ModelMode::Compositional,
                    "auto" => ModelMode::Auto,
                    other => {
                        eprintln!("bad --model-mode `{other}` (exact|compositional|auto)");
                        std::process::exit(2);
                    }
                })
            }
            "--model-switches" => {
                model_switches = Some(value_of(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("bad --model-switches value\n{usage}");
                    std::process::exit(2);
                }))
            }
            "--model-jobs" => {
                model_jobs = value_of(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("bad --model-jobs value\n{usage}");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{usage}");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }
    if files.is_empty() && !lint_default {
        eprintln!("no config files given\n{usage}");
        std::process::exit(2);
    }

    let mut targets: Vec<(String, SystemConfig)> = Vec::new();
    if lint_default {
        targets.push(("<default>".to_string(), SystemConfig::default()));
    }
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("{file}: {e}");
            std::process::exit(2);
        });
        match parse_config(&text) {
            Ok(cfg) => targets.push((file.clone(), cfg)),
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut any_errors = false;
    for (i, (name, cfg)) in targets.iter().enumerate() {
        let report = cfg.report();
        any_errors |= report.has_errors();
        if json {
            if targets.len() > 1 && i > 0 {
                println!();
            }
            print!("{}", report.render_json());
        } else {
            print!("{name}: {}", report.render_human());
        }
        if certify && !report.has_errors() {
            // Statically broken configs already fail the lint; sound ones
            // get both deadlock-verdict paths, timed.
            let cmp = cfg.certify_comparison();
            let explicit_part = if cmp.explicit_completed {
                format!(
                    "explicit CDG {} in {:.3}s",
                    if cmp.explicit_ok {
                        "agreed"
                    } else {
                        "disagreed"
                    },
                    cmp.explicit_secs
                )
            } else {
                format!(
                    "explicit CDG budget-exhausted at {}/{} dependencies \
                     after {:.3}s — certificate carries the verdict",
                    cmp.explicit_deps, cmp.explicit_budget, cmp.explicit_secs
                )
            };
            if cmp.certify_ok && cmp.agree {
                if !json {
                    println!(
                        "{name}: certify passed — {} channels, {} dependencies \
                         descend the rank in {:.3}s; {explicit_part}",
                        cmp.channels, cmp.dependencies, cmp.certify_secs
                    );
                }
            } else {
                any_errors = true;
                let why = if !cmp.certify_ok {
                    "certificate checker rejected the fabric"
                } else {
                    "certificate and explicit CDG verdicts disagree"
                };
                if json {
                    eprintln!("{name}: certify FAILED: {why}; {explicit_part}");
                } else {
                    println!("{name}: certify FAILED: {why}; {explicit_part}");
                }
            }
        }
        if model_check && !report.has_errors() {
            // Statically broken configs already fail the lint; only sound
            // ones earn the (more expensive) state-space exploration.
            let arch = match cfg.arch {
                SwitchArch::CentralBuffer => ArchClass::CentralBuffer,
                SwitchArch::InputBuffered => ArchClass::InputBuffered,
            };
            let sync = cfg.switch.replication == ReplicationMode::Synchronous;
            let bounds = ModelBounds {
                max_switches: model_switches.unwrap_or(ModelBounds::default().max_switches),
                ..ModelBounds::default()
            };
            let mode = model_mode.unwrap_or(cfg.model_mode);
            let opts = ModelOptions {
                mode,
                jobs: model_jobs.max(1),
                ..ModelOptions::default()
            };
            let start = std::time::Instant::now();
            let outcome = check_model_opts(arch, sync, cfg.switch.policy, &bounds, &opts);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let mode_str = match mode {
                ModelMode::Exact => "exact",
                ModelMode::Compositional => "compositional",
                ModelMode::Auto => "auto",
            };
            if model_stats {
                // Violations carry a counterexample, not counters; the
                // stats line then reports the verdict with zeroed counts.
                let (verified, st) = match &outcome {
                    CheckOutcome::Verified(st) => (true, Some(st)),
                    CheckOutcome::Violated(_) => (false, None),
                };
                let states = st.map_or(0, |s| s.states);
                let orbit_hits = st.map_or(0, |s| s.orbit_hits);
                let reduction = if states > 0 {
                    (states + orbit_hits) as f64 / states as f64
                } else {
                    1.0
                };
                println!(
                    "{{\"config\":\"{name}\",\"mode\":\"{mode_str}\",\
                     \"verified\":{verified},\"states\":{states},\
                     \"transitions\":{},\"orbit_hits\":{orbit_hits},\
                     \"orbit_reduction_factor\":{reduction:.3},\
                     \"ample_skips\":{},\"frontier_workers\":{},\
                     \"wall_ms\":{wall_ms:.3}}}",
                    st.map_or(0, |s| s.transitions),
                    st.map_or(0, |s| s.ample_skips),
                    opts.jobs,
                );
            }
            match outcome {
                CheckOutcome::Verified(stats) => {
                    if !json {
                        println!(
                            "{name}: model check passed — {} states, {} \
                             transitions over {} scenario(s)",
                            stats.states, stats.transitions, stats.scenarios
                        );
                    }
                }
                CheckOutcome::Violated(v) => {
                    any_errors = true;
                    if json {
                        eprintln!("{name}: model check FAILED: {v}");
                    } else {
                        println!("{name}: model check FAILED: {v}");
                    }
                }
            }
        }
    }
    if any_errors {
        std::process::exit(1);
    }
}
