//! Static deadlock-freedom & protocol-invariant linter for system configs.
//!
//! Runs the full `mdw-analysis` pass — switch buffer sizing, system-level
//! consistency, channel-dependency-graph cycle detection, and header
//! round-trip checks — over one or more config files *without simulating
//! a single cycle*, and reports the findings human-readably or as JSON.
//!
//! ```text
//! cargo run --release -p mdworm --bin mdw-lint -- configs/sp2-default.mdw
//! cargo run --release -p mdworm --bin mdw-lint -- --json configs/*.mdw
//! cargo run --release -p mdworm --bin mdw-lint -- --default
//! cargo run --release -p mdworm --bin mdw-lint -- --model-check configs/*.mdw
//! ```
//!
//! Config files are `key = value` lines (`#` starts a comment); unknown
//! keys are rejected. See `configs/` for annotated examples. Exit status
//! is non-zero iff any linted config has an error-severity finding, so
//! the tool slots directly into CI and sweep-launcher scripts.
//!
//! `--model-check` additionally runs the `mdw-model` bounded model
//! checker (see `mdw_analysis::model`): the configured architecture,
//! replication mode, and replication policy are explored exhaustively
//! over small fabrics, verifying chunk conservation and the paper's
//! buffered-eventually liveness condition on the state machines the
//! simulator actually runs. A violation prints a minimal counterexample
//! trace and fails the lint.

use mdw_analysis::{check_model, ArchClass, CheckOutcome, ModelBounds};
use mdworm::cfgtext::parse_config;
use mdworm::config::{SwitchArch, SystemConfig};
use switches::ReplicationMode;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: mdw-lint [--json] [--default] [--model-check] <config.mdw>...";
    let mut json = false;
    let mut lint_default = false;
    let mut model_check = false;
    let mut files: Vec<String> = Vec::new();
    for arg in &argv {
        match arg.as_str() {
            "--json" => json = true,
            "--default" => lint_default = true,
            "--model-check" => model_check = true,
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{usage}");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() && !lint_default {
        eprintln!("no config files given\n{usage}");
        std::process::exit(2);
    }

    let mut targets: Vec<(String, SystemConfig)> = Vec::new();
    if lint_default {
        targets.push(("<default>".to_string(), SystemConfig::default()));
    }
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("{file}: {e}");
            std::process::exit(2);
        });
        match parse_config(&text) {
            Ok(cfg) => targets.push((file.clone(), cfg)),
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut any_errors = false;
    for (i, (name, cfg)) in targets.iter().enumerate() {
        let report = cfg.report();
        any_errors |= report.has_errors();
        if json {
            if targets.len() > 1 && i > 0 {
                println!();
            }
            print!("{}", report.render_json());
        } else {
            print!("{name}: {}", report.render_human());
        }
        if model_check && !report.has_errors() {
            // Statically broken configs already fail the lint; only sound
            // ones earn the (more expensive) state-space exploration.
            let arch = match cfg.arch {
                SwitchArch::CentralBuffer => ArchClass::CentralBuffer,
                SwitchArch::InputBuffered => ArchClass::InputBuffered,
            };
            let sync = cfg.switch.replication == ReplicationMode::Synchronous;
            match check_model(arch, sync, cfg.switch.policy, &ModelBounds::default()) {
                CheckOutcome::Verified(stats) => {
                    if !json {
                        println!(
                            "{name}: model check passed — {} states, {} \
                             transitions over {} scenario(s)",
                            stats.states, stats.transitions, stats.scenarios
                        );
                    }
                }
                CheckOutcome::Violated(v) => {
                    any_errors = true;
                    if json {
                        eprintln!("{name}: model check FAILED: {v}");
                    } else {
                        println!("{name}: model check FAILED: {v}");
                    }
                }
            }
        }
    }
    if any_errors {
        std::process::exit(1);
    }
}
