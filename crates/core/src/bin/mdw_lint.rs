//! Static deadlock-freedom & protocol-invariant linter for system configs.
//!
//! Runs the full `mdw-analysis` pass — switch buffer sizing, system-level
//! consistency, channel-dependency-graph cycle detection, and header
//! round-trip checks — over one or more config files *without simulating
//! a single cycle*, and reports the findings human-readably or as JSON.
//!
//! ```text
//! cargo run --release -p mdworm --bin mdw-lint -- configs/sp2-default.mdw
//! cargo run --release -p mdworm --bin mdw-lint -- --json configs/*.mdw
//! cargo run --release -p mdworm --bin mdw-lint -- --default
//! cargo run --release -p mdworm --bin mdw-lint -- --model-check configs/*.mdw
//! ```
//!
//! Config files are `key = value` lines (`#` starts a comment); unknown
//! keys are rejected. See `configs/` for annotated examples. Exit status
//! is non-zero iff any linted config has an error-severity finding, so
//! the tool slots directly into CI and sweep-launcher scripts.
//!
//! `--model-check` additionally runs the `mdw-model` bounded model
//! checker (see `mdw_analysis::model`): the configured architecture,
//! replication mode, and replication policy are explored exhaustively
//! over small fabrics, verifying chunk conservation and the paper's
//! buffered-eventually liveness condition on the state machines the
//! simulator actually runs. A violation prints a minimal counterexample
//! trace and fails the lint.

use collectives::RecoveryConfig;
use mdw_analysis::{check_model, ArchClass, CheckOutcome, ModelBounds};
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::respond::ResponseConfig;
use mintopo::route::ReplicatePolicy;
use switches::{ReplicationMode, UpSelect};

/// Parses `key = value` config text into a [`SystemConfig`], starting
/// from the paper-style defaults.
fn parse_config(text: &str) -> Result<SystemConfig, String> {
    let mut cfg = SystemConfig::default();
    // Topology fields are gathered first so the kind can be assembled
    // whichever order the keys appear in.
    let mut kind = "karytree".to_string();
    let (mut k, mut stages) = (4usize, 3usize);
    let (mut switches_n, mut ports, mut hosts, mut extra_links, mut topo_seed) =
        (8usize, 8usize, 16usize, 4usize, 1u64);

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got `{line}`", lineno + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let bad = |what: &str| format!("line {}: bad {what} value `{value}`", lineno + 1);
        let parse_usize = |what: &str| value.parse::<usize>().map_err(|_| bad(what));
        let parse_u64 = |what: &str| value.parse::<u64>().map_err(|_| bad(what));
        match key {
            "topology" => kind = value.to_string(),
            "k" => k = parse_usize("k")?,
            "stages" => stages = parse_usize("stages")?,
            "switches" => switches_n = parse_usize("switches")?,
            "ports" => ports = parse_usize("ports")?,
            "hosts" => hosts = parse_usize("hosts")?,
            "extra_links" => extra_links = parse_usize("extra_links")?,
            "topo_seed" => topo_seed = parse_u64("topo_seed")?,
            "arch" => {
                cfg.arch = match value {
                    "cb" | "central-buffer" => SwitchArch::CentralBuffer,
                    "ib" | "input-buffered" => SwitchArch::InputBuffered,
                    _ => return Err(bad("arch (cb|ib)")),
                }
            }
            "mcast" => {
                cfg.mcast = match value {
                    "hw" | "bitstring" => McastImpl::HwBitString,
                    "mp" | "multiport" => McastImpl::HwMultiport,
                    "sw" | "binomial" => McastImpl::SwBinomial,
                    _ => return Err(bad("mcast (hw|mp|sw)")),
                }
            }
            "replication" => {
                cfg.switch.replication = match value {
                    "async" | "asynchronous" => ReplicationMode::Asynchronous,
                    "sync" | "synchronous" => ReplicationMode::Synchronous,
                    _ => return Err(bad("replication (async|sync)")),
                }
            }
            "policy" => {
                cfg.switch.policy = match value {
                    "return-only" => ReplicatePolicy::ReturnOnly,
                    "forward-and-return" => ReplicatePolicy::ForwardAndReturn,
                    _ => return Err(bad("policy (return-only|forward-and-return)")),
                }
            }
            "up_select" => {
                cfg.switch.up_select = match value {
                    "deterministic" => UpSelect::Deterministic,
                    "adaptive" => UpSelect::Adaptive,
                    _ => return Err(bad("up_select (deterministic|adaptive)")),
                }
            }
            "chunk_flits" => cfg.switch.chunk_flits = value.parse().map_err(|_| bad(key))?,
            "cq_chunks" => cfg.switch.cq_chunks = parse_usize(key)?,
            "input_buf_flits" => {
                cfg.switch.input_buf_flits = value.parse().map_err(|_| bad(key))?
            }
            "max_packet_flits" => {
                cfg.switch.max_packet_flits = value.parse().map_err(|_| bad(key))?
            }
            "staging_flits" => cfg.switch.staging_flits = value.parse().map_err(|_| bad(key))?,
            "route_delay" => cfg.switch.route_delay = value.parse().map_err(|_| bad(key))?,
            "bypass_crossbar" => {
                cfg.switch.bypass_crossbar = value.parse().map_err(|_| bad(key))?
            }
            "link_delay" => cfg.link_delay = value.parse().map_err(|_| bad(key))?,
            "host_eject_credits" => cfg.host_eject_credits = value.parse().map_err(|_| bad(key))?,
            "bits_per_flit" => cfg.bits_per_flit = parse_usize(key)?,
            "barrier_combining" => cfg.barrier_combining = value.parse().map_err(|_| bad(key))?,
            "seed" => cfg.seed = parse_u64(key)?,
            // End-to-end recovery (ACK ledger + retransmission).
            "recovery" => match value {
                "on" | "true" => {
                    cfg.recovery.get_or_insert_with(RecoveryConfig::default);
                }
                "off" | "false" => cfg.recovery = None,
                _ => return Err(bad("recovery (on|off)")),
            },
            "recovery_timeout" => {
                cfg.recovery
                    .get_or_insert_with(RecoveryConfig::default)
                    .timeout = parse_u64(key)?
            }
            "recovery_timeout_cap" => {
                cfg.recovery
                    .get_or_insert_with(RecoveryConfig::default)
                    .timeout_cap = parse_u64(key)?
            }
            "recovery_max_retries" => {
                cfg.recovery
                    .get_or_insert_with(RecoveryConfig::default)
                    .max_retries = value.parse().map_err(|_| bad(key))?
            }
            // Online fault response (detect / reroute / quiesce / degrade).
            "response" => match value {
                "on" | "true" => {
                    cfg.response.get_or_insert_with(ResponseConfig::default);
                }
                "off" | "false" => cfg.response = None,
                _ => return Err(bad("response (on|off)")),
            },
            "response_debounce" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .debounce = parse_u64(key)?
            }
            "response_drain_wait" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .drain_wait = parse_u64(key)?
            }
            "response_purge_max" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .purge_max = parse_u64(key)?
            }
            "response_max_hops" => {
                cfg.response
                    .get_or_insert_with(ResponseConfig::default)
                    .max_hops = parse_usize(key)?
            }
            _ => return Err(format!("line {}: unknown key `{key}`", lineno + 1)),
        }
    }

    cfg.topology = match kind.as_str() {
        "karytree" | "tree" => TopologyKind::KaryTree { k, n: stages },
        "unimin" | "butterfly" => TopologyKind::UniMin { k, n: stages },
        "irregular" => TopologyKind::Irregular {
            switches: switches_n,
            ports,
            hosts,
            extra_links,
            seed: topo_seed,
        },
        other => {
            return Err(format!(
                "unknown topology `{other}` (karytree|unimin|irregular)"
            ))
        }
    };
    Ok(cfg)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: mdw-lint [--json] [--default] [--model-check] <config.mdw>...";
    let mut json = false;
    let mut lint_default = false;
    let mut model_check = false;
    let mut files: Vec<String> = Vec::new();
    for arg in &argv {
        match arg.as_str() {
            "--json" => json = true,
            "--default" => lint_default = true,
            "--model-check" => model_check = true,
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{usage}");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() && !lint_default {
        eprintln!("no config files given\n{usage}");
        std::process::exit(2);
    }

    let mut targets: Vec<(String, SystemConfig)> = Vec::new();
    if lint_default {
        targets.push(("<default>".to_string(), SystemConfig::default()));
    }
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("{file}: {e}");
            std::process::exit(2);
        });
        match parse_config(&text) {
            Ok(cfg) => targets.push((file.clone(), cfg)),
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut any_errors = false;
    for (i, (name, cfg)) in targets.iter().enumerate() {
        let report = cfg.report();
        any_errors |= report.has_errors();
        if json {
            if targets.len() > 1 && i > 0 {
                println!();
            }
            print!("{}", report.render_json());
        } else {
            print!("{name}: {}", report.render_human());
        }
        if model_check && !report.has_errors() {
            // Statically broken configs already fail the lint; only sound
            // ones earn the (more expensive) state-space exploration.
            let arch = match cfg.arch {
                SwitchArch::CentralBuffer => ArchClass::CentralBuffer,
                SwitchArch::InputBuffered => ArchClass::InputBuffered,
            };
            let sync = cfg.switch.replication == ReplicationMode::Synchronous;
            match check_model(arch, sync, cfg.switch.policy, &ModelBounds::default()) {
                CheckOutcome::Verified(stats) => {
                    if !json {
                        println!(
                            "{name}: model check passed — {} states, {} \
                             transitions over {} scenario(s)",
                            stats.states, stats.transitions, stats.scenarios
                        );
                    }
                }
                CheckOutcome::Violated(v) => {
                    any_errors = true;
                    if json {
                        eprintln!("{name}: model check FAILED: {v}");
                    } else {
                        println!("{name}: model check FAILED: {v}");
                    }
                }
            }
        }
    }
    if any_errors {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_is_the_default_config() {
        let cfg = parse_config("").expect("parses");
        assert_eq!(cfg.n_hosts(), 64);
        assert_eq!(cfg.arch, SwitchArch::CentralBuffer);
    }

    #[test]
    fn full_config_roundtrips_values() {
        let text = "
            # an input-buffered 16-host tree with lock-step replication
            topology = karytree
            k = 2          # arity
            stages = 4
            arch = ib
            mcast = hw
            replication = sync
            policy = forward-and-return
            up_select = deterministic
            input_buf_flits = 256
            max_packet_flits = 100
            seed = 42
        ";
        let cfg = parse_config(text).expect("parses");
        assert_eq!(cfg.topology, TopologyKind::KaryTree { k: 2, n: 4 });
        assert_eq!(cfg.arch, SwitchArch::InputBuffered);
        assert_eq!(cfg.switch.replication, ReplicationMode::Synchronous);
        assert_eq!(cfg.switch.policy, ReplicatePolicy::ForwardAndReturn);
        assert_eq!(cfg.switch.up_select, UpSelect::Deterministic);
        assert_eq!(cfg.switch.input_buf_flits, 256);
        assert_eq!(cfg.switch.max_packet_flits, 100);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn irregular_topology_keys() {
        let text = "
            topology = irregular
            switches = 6
            ports = 8
            hosts = 12
            extra_links = 3
            topo_seed = 7
        ";
        let cfg = parse_config(text).expect("parses");
        assert_eq!(
            cfg.topology,
            TopologyKind::Irregular {
                switches: 6,
                ports: 8,
                hosts: 12,
                extra_links: 3,
                seed: 7
            }
        );
    }

    #[test]
    fn recovery_and_response_keys_parse_in_any_order() {
        // Tuning keys materialize the block even without an `= on` line.
        let cfg = parse_config(
            "
            recovery_timeout = 5000
            recovery = on
            recovery_max_retries = 3
            response_debounce = 128
            response = on
            response_purge_max = 512
            response_max_hops = 32
            ",
        )
        .expect("parses");
        let rec = cfg.recovery.expect("recovery on");
        assert_eq!(rec.timeout, 5_000);
        assert_eq!(rec.max_retries, 3);
        assert_eq!(rec.timeout_cap, RecoveryConfig::default().timeout_cap);
        let resp = cfg.response.expect("response on");
        assert_eq!(resp.debounce, 128);
        assert_eq!(resp.purge_max, 512);
        assert_eq!(resp.max_hops, 32);
        assert_eq!(resp.drain_wait, ResponseConfig::default().drain_wait);

        let cfg = parse_config("response = on\nresponse = off").expect("parses");
        assert!(cfg.response.is_none(), "later `off` wins");
        let err = parse_config("response = maybe").unwrap_err();
        assert!(err.contains("response"), "{err}");
    }

    #[test]
    fn response_config_lints_through_the_full_report() {
        // `response = on` with multiport headers is a contradiction the
        // static analyzer must catch without simulating.
        let cfg = parse_config("response = on\nrecovery = on\nmcast = mp").expect("parses");
        let report = cfg.report();
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "response-needs-bitstring"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected_with_line_numbers() {
        let err = parse_config("typo_key = 3").unwrap_err();
        assert!(err.contains("line 1") && err.contains("typo_key"), "{err}");
        let err = parse_config("\nk = many").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_config("just words").unwrap_err();
        assert!(err.contains("key = value"), "{err}");
        let err = parse_config("topology = moebius").unwrap_err();
        assert!(err.contains("moebius"), "{err}");
    }
}
