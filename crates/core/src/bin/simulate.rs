//! One-off simulation runs from the command line.
//!
//! ```text
//! cargo run --release -p mdworm --bin simulate -- \
//!     --arch cb --mcast hw --k 4 --stages 3 \
//!     --load 0.5 --mcast-fraction 0.1 --degree 16 --len 64
//! ```

use collectives::RecoveryConfig;
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::sim::{run_experiment, RunConfig};
use mdworm::workload::{Pattern, TrafficSpec};
use netsim::FaultPlan;

struct Args {
    arch: SwitchArch,
    mcast: McastImpl,
    k: usize,
    stages: usize,
    load: f64,
    mcast_fraction: f64,
    degree: usize,
    len: u16,
    warmup: u64,
    measure: u64,
    seed: u64,
    pattern: Pattern,
    drop_rate: f64,
    corrupt_rate: f64,
    down_every: u64,
    down_len: u64,
    credit_leak: f64,
    fault_seed: u64,
    recovery_timeout: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            arch: SwitchArch::CentralBuffer,
            mcast: McastImpl::HwBitString,
            k: 4,
            stages: 3,
            load: 0.4,
            mcast_fraction: 1.0,
            degree: 16,
            len: 64,
            warmup: 5_000,
            measure: 40_000,
            seed: 0xD0E5_1997,
            pattern: Pattern::Uniform,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            down_every: 0,
            down_len: 0,
            credit_leak: 0.0,
            fault_seed: 0xFA17,
            recovery_timeout: 0,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = "flags: --arch cb|ib  --mcast hw|mp|sw  --k N --stages N \
                 --load F --mcast-fraction F --degree N --len N \
                 --warmup N --measure N --seed N \
                 --pattern uniform|bitrev|transpose|neighbor \
                 --drop-rate F --corrupt-rate F --down-every N --down-len N \
                 --credit-leak F --fault-seed N --recovery-timeout N";
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv
            .get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value\n{usage}"))
            .clone();
        match flag {
            "--arch" => {
                args.arch = match value.as_str() {
                    "cb" => SwitchArch::CentralBuffer,
                    "ib" => SwitchArch::InputBuffered,
                    other => panic!("unknown arch {other} (cb|ib)"),
                }
            }
            "--mcast" => {
                args.mcast = match value.as_str() {
                    "hw" => McastImpl::HwBitString,
                    "mp" => McastImpl::HwMultiport,
                    "sw" => McastImpl::SwBinomial,
                    other => panic!("unknown mcast scheme {other} (hw|mp|sw)"),
                }
            }
            "--k" => args.k = value.parse().expect("--k"),
            "--stages" => args.stages = value.parse().expect("--stages"),
            "--load" => args.load = value.parse().expect("--load"),
            "--mcast-fraction" => args.mcast_fraction = value.parse().expect("--mcast-fraction"),
            "--degree" => args.degree = value.parse().expect("--degree"),
            "--len" => args.len = value.parse().expect("--len"),
            "--warmup" => args.warmup = value.parse().expect("--warmup"),
            "--measure" => args.measure = value.parse().expect("--measure"),
            "--seed" => args.seed = value.parse().expect("--seed"),
            "--drop-rate" => args.drop_rate = value.parse().expect("--drop-rate"),
            "--corrupt-rate" => args.corrupt_rate = value.parse().expect("--corrupt-rate"),
            "--down-every" => args.down_every = value.parse().expect("--down-every"),
            "--down-len" => args.down_len = value.parse().expect("--down-len"),
            "--credit-leak" => args.credit_leak = value.parse().expect("--credit-leak"),
            "--fault-seed" => args.fault_seed = value.parse().expect("--fault-seed"),
            "--recovery-timeout" => {
                args.recovery_timeout = value.parse().expect("--recovery-timeout");
            }
            "--pattern" => {
                args.pattern = match value.as_str() {
                    "uniform" => Pattern::Uniform,
                    "bitrev" => Pattern::BitReversal,
                    "transpose" => Pattern::Transpose,
                    "neighbor" => Pattern::NearNeighbor,
                    other => panic!("unknown pattern {other}"),
                }
            }
            other => panic!("unknown flag {other}\n{usage}"),
        }
        i += 2;
    }
    args
}

fn main() {
    let a = parse_args();
    let recovery = (a.recovery_timeout > 0).then(|| RecoveryConfig {
        timeout: a.recovery_timeout,
        ..RecoveryConfig::default()
    });
    let cfg = SystemConfig {
        topology: TopologyKind::KaryTree {
            k: a.k,
            n: a.stages,
        },
        arch: a.arch,
        mcast: a.mcast,
        seed: a.seed,
        recovery,
        ..SystemConfig::default()
    };
    let faults = FaultPlan {
        seed: a.fault_seed,
        flit_drop: a.drop_rate,
        flit_corrupt: a.corrupt_rate,
        down_every: a.down_every,
        down_len: a.down_len,
        credit_leak: a.credit_leak,
    };
    let spec =
        TrafficSpec::bimodal(a.load, a.mcast_fraction, a.degree, a.len).with_pattern(a.pattern);
    let run = RunConfig {
        warmup: a.warmup,
        measure: a.measure,
        faults: (!faults.is_noop()).then_some(faults),
        ..RunConfig::default()
    };
    println!(
        "system: {} hosts, {:?}, {:?} | workload: load {} ({}% multicast, degree {}, {} flits)",
        cfg.n_hosts(),
        cfg.arch,
        cfg.mcast,
        a.load,
        (a.mcast_fraction * 100.0) as u32,
        a.degree,
        a.len
    );
    let started = std::time::Instant::now();
    let out = run_experiment(&cfg, &spec, &run);
    println!(
        "simulated {} cycles in {:.1}s\n",
        out.cycles,
        started.elapsed().as_secs_f64()
    );
    println!("multicasts completed: {}", out.completed_mcasts);
    println!("unicasts completed:   {}", out.completed_unicasts);
    if out.completed_mcasts > 0 {
        println!(
            "multicast latency:    mean {:.0}  p50 {}  p95 {}  p99 {}  max {}",
            out.mcast_last.mean,
            out.mcast_last.p50,
            out.mcast_last.p95,
            out.mcast_last.p99,
            out.mcast_last.max
        );
    }
    if out.completed_unicasts > 0 {
        println!(
            "unicast latency:      mean {:.0}  p50 {}  p95 {}  p99 {}  max {}",
            out.unicast.mean, out.unicast.p50, out.unicast.p95, out.unicast.p99, out.unicast.max
        );
    }
    println!(
        "throughput:           {:.4} payload flits/node/cycle",
        out.throughput
    );
    println!(
        "link utilization:     eject {:.4}, fabric {:.4}",
        out.eject_utilization, out.fabric_utilization
    );
    let rec = &out.recovery;
    if rec.retransmits + rec.corrupt_discards + rec.duplicate_discards + rec.gave_up > 0 {
        println!(
            "recovery:             {} retransmits ({} worms), {} corrupt and {} duplicate discards, {} gave up",
            rec.retransmits,
            rec.packets_retransmitted,
            rec.corrupt_discards,
            rec.duplicate_discards,
            rec.gave_up
        );
    }
    if !out.faults.is_clean() {
        println!(
            "faults injected:      {} worms dropped ({} flits), {} flits corrupted, {} link-down cycles, {} credits leaked",
            out.faults.worms_dropped,
            out.faults.flits_dropped,
            out.faults.flits_corrupted,
            out.faults.down_cycles,
            out.faults.credits_leaked
        );
    }
    if let Some(report) = &out.deadlock {
        println!("!! DEADLOCK detected by the watchdog — forensic report:");
        print!("{}", mdworm::report::deadlock_json(report));
        if report.switches.is_empty() && out.faults.worms_dropped > 0 && a.recovery_timeout == 0 {
            println!(
                "   (no worms blocked in the fabric: these messages were lost to \
                 injected faults with recovery disabled, not to a circular wait — \
                 rerun with --recovery-timeout to retransmit them)"
            );
        }
    } else if out.saturated {
        println!("!! saturated: {} messages undelivered", out.leftover);
    }
}
