//! Online fault response: detection → quiesce → reroute → degrade → heal
//! (DESIGN.md §10), made crash-tolerant by a write-ahead journal and
//! two-phase epoch'd table installs (DESIGN.md §15).
//!
//! The [`FaultResponder`] models an SP2-style service processor sitting
//! beside the fabric. It watches the engine's link up/down event stream
//! through a debounced [`netsim::health::FabricHealth`] view and, whenever
//! the set of confirmed-dead *fabric* ports changes, runs the response
//! protocol:
//!
//! 1. **gate** — hosts stop injecting ([`collectives::FabricMode`]);
//!    ejection keeps draining, so worms already past the cut complete;
//! 2. **drain + purge** — after a grace window the per-switch
//!    [`switches::SwitchCtl`] purge command kills whatever is still
//!    resident (wedged against the dead link), returning credits so
//!    link-level conservation holds; the killed payloads come back through
//!    the end-to-end retransmission ledger;
//! 3. **reroute** — new LCA tables are derived with the dead ports masked
//!    ([`mintopo::route::RouteTables::build_masked`]) and **prepared**
//!    under a fresh epoch on every switch (two-phase: staged, inactive).
//!    The candidate is vetted in two halves: structurally by the static
//!    deadlock analyzer ([`mdw_analysis::vet_reroute`] — memoized per
//!    *(epoch, masked-port set)*, so an identical dead set re-vetted
//!    under a new epoch never reuses a stale verdict) and behaviorally by
//!    the bounded model checker ([`mdw_analysis::check_model_opts`],
//!    memoized per ([`ModelBounds`], [`mdw_analysis::ModelOptions`])
//!    pair). A passing candidate is **committed** — armed on every
//!    switch, each swapping it in on its first empty tick and stamping
//!    the epoch; a failing candidate is **aborted** and the fabric stays
//!    on the old tables, degraded rather than deadlocked;
//! 4. **degrade** — while masked tables are active, each hardware
//!    multicast is split into the worm-coverable part and a peeled
//!    remainder served by binomial-tree unicast
//!    ([`collectives::DegradePlanner`]);
//! 5. **heal** — when every cut is confirmed back up the original tables
//!    are re-derived, vetted and swapped in, and hosts return to pure
//!    hardware multicast.
//!
//! ## Crash tolerance (DESIGN.md §15)
//!
//! Every durable decision is journaled ([`crate::journal`]) before or
//! atomically with its in-memory effect, and every wait inside an episode
//! is keyed to an *absolute* engine-cycle deadline derived from the
//! detection cycle. A responder that crashes (modeled by the
//! [`crate::chaos`] harness as an early unwind at a protocol boundary)
//! therefore recovers by replaying the journal — rebuilding health,
//! counters, the event log, the latency series and the epoch cursor to
//! byte-identical state — and *re-driving* the in-flight episode. Every
//! re-driven step is idempotent: deadlines in the past are no-ops,
//! [`SwitchCtl::prepare`]/[`SwitchCtl::commit`] tolerate re-issue, and
//! journaled verdicts short-circuit re-vetting. An install whose commit
//! record is durable but whose per-switch commits were cut short is
//! completed by recovery, so the fabric can never be left torn — the
//! engine's epoch audit ([`netsim::engine::Engine::enable_epoch_audit`])
//! holds every cycle to that.
//!
//! The only deliberately ephemeral bit is
//! [`request_retry`](FaultResponder::request_retry): a retry lost to a
//! crash is re-armed by the storm controller's backoff on its own
//! schedule, so journaling it would buy nothing.
//!
//! Table swaps ride the switches' install-only-when-empty rule, so no worm
//! ever decodes against a mix of old and new tables.
//!
//! Only switch→switch links are masked. A dead injection/ejection link
//! makes a *host* unreachable — no reroute can fix that, exactly as no
//! spare path exists to a dead adapter in a real machine — so those
//! outages are left to the end-to-end recovery layer alone.

use crate::build::System;
use crate::chaos::{ChaosHandle, ChaosMode, Crashed};
use crate::config::{SwitchArch, SystemConfig};
use crate::journal::{
    EpisodeOutcome, Journal, JournalConfig, JournalRecord, JournalStore, ResponderSnapshot,
};
use collectives::DegradePlanner;
use mdw_analysis::{
    check_model_opts_timed, vet_reroute_certified_timed, vet_reroute_timed, ArchClass, Certificate,
    CheckOutcome, ModelBounds, ModelOptions, Samples, VetStats,
};
use mintopo::route::RouteTables;
use mintopo::topology::Topology;
use netsim::health::FabricHealth;
use netsim::ids::{LinkId, SwitchId};
use netsim::Cycle;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use switches::ReplicationMode;

/// Tuning knobs of the online fault-response protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseConfig {
    /// Cycles a link must hold a new state before the transition is
    /// confirmed (absorbs fault-injector blips).
    pub debounce: Cycle,
    /// Gated grace window before the purge: in-flight worms get this many
    /// cycles to complete on their own.
    pub drain_wait: Cycle,
    /// Maximum cycles the purge may take to empty the fabric before the
    /// responder gives up waiting (and records the incident).
    pub purge_max: Cycle,
    /// Hop budget for coverage traces on the degraded planner.
    pub max_hops: usize,
    /// Capacity of the bounded event log; the oldest entries are evicted
    /// (and counted) once the ring fills, so a responder embedded in a
    /// long-running service holds steady-state memory.
    pub event_log_cap: usize,
    /// Capacity of the detect→install latency ring (oldest evicted and
    /// counted, like the event log).
    pub latency_cap: usize,
    /// Journal records between snapshots (config key
    /// `journal.snapshot_every`); each snapshot compacts the journal, so
    /// this bounds both replay time and journal memory.
    pub snapshot_every: u64,
    /// LRU capacity of the structural-vet and deep-vet memos (config key
    /// `response.memo_cap`, floor 1). A responder embedded in a
    /// long-running service sees an unbounded stream of (epoch, dead-set)
    /// keys; the cap keeps both memos at steady-state memory, with
    /// hit/miss/eviction counters surfaced in
    /// [`crate::sim::RunOutcome::vet_memo`].
    pub memo_cap: usize,
}

impl Default for ResponseConfig {
    fn default() -> Self {
        ResponseConfig {
            debounce: 64,
            drain_wait: 256,
            purge_max: 256,
            max_hops: 64,
            event_log_cap: 1024,
            latency_cap: 4096,
            snapshot_every: 256,
            memo_cap: 512,
        }
    }
}

/// One entry in the responder's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseEvent {
    /// A link transition survived the debounce window.
    LinkConfirmed {
        /// The link that changed state.
        link: LinkId,
        /// `true` = confirmed down, `false` = confirmed back up.
        down: bool,
    },
    /// New masked tables passed the deadlock vet and were committed.
    Rerouted {
        /// Directed dead fabric ports masked out of the new tables.
        masked_ports: usize,
    },
    /// The candidate tables failed the deadlock vet; its epoch was
    /// aborted and the fabric stays on the previous tables, degraded.
    RerouteRejected {
        /// Diagnostic code of the first analyzer error (e.g. "cdg-cycle").
        code: String,
        /// Human-readable analyzer message.
        message: String,
    },
    /// All cuts confirmed back up; original tables restored.
    Healed,
    /// The purge did not empty the fabric within `purge_max` cycles.
    PurgeIncomplete {
        /// Flits still sitting in links when the responder gave up.
        flits_left: usize,
    },
    /// The dead-port set re-sampled after the quiesce matched the masking
    /// already installed: the transition that triggered this response
    /// reverted during the drain/purge window, so no tables were built.
    StaleDetect,
}

/// A bounded ring of the most recent responder events. Once `cap`
/// entries are held, each push evicts the oldest and bumps the drop
/// counter — the log never grows past its capacity, however long the
/// responder lives.
#[derive(Debug)]
pub struct EventLog {
    cap: usize,
    buf: VecDeque<(Cycle, ResponseEvent)>,
    dropped: u64,
}

impl EventLog {
    fn new(cap: usize) -> Self {
        EventLog {
            cap: cap.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Rebuilds a log from snapshot state: the retained window (already
    /// within `cap`) plus the historical drop count.
    fn restore(cap: usize, entries: Vec<(Cycle, ResponseEvent)>, dropped: u64) -> Self {
        let mut log = EventLog::new(cap);
        log.dropped = dropped;
        for (at, ev) in entries {
            log.push(at, ev);
        }
        log
    }

    fn push(&mut self, at: Cycle, ev: ResponseEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((at, ev));
    }

    /// Iterates the retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Cycle, ResponseEvent)> {
        self.buf.iter()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been logged (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Entries evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a (Cycle, ResponseEvent);
    type IntoIter = std::collections::vec_deque::Iter<'a, (Cycle, ResponseEvent)>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

/// A debounce-confirmed link transition, as handed to callers of
/// [`FaultResponder::drain_confirmed`] (the flap damper feeds on these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfirmedTransition {
    /// Cycle the confirmation fired.
    pub at: Cycle,
    /// The link that changed state.
    pub link: LinkId,
    /// `true` = confirmed down, `false` = confirmed back up.
    pub down: bool,
}

/// Running totals of responder activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResponseCounters {
    /// Debounce-confirmed link-down transitions.
    pub links_down: u64,
    /// Debounce-confirmed link-up transitions.
    pub links_up: u64,
    /// Masked reroutes vetted, committed and activated.
    pub reroutes: u64,
    /// Reroute candidates rejected by the deadlock vet (epoch aborted).
    pub reroutes_rejected: u64,
    /// Full heals (all cuts back up, original tables restored).
    pub heals: u64,
    /// Quiesce windows that purged the fabric.
    pub purges: u64,
    /// Purges that hit the `purge_max` budget with flits still in flight.
    pub purges_incomplete: u64,
    /// Responses abandoned because the triggering transition reverted
    /// during the quiesce (the post-purge recheck found nothing to do).
    pub stale_detects: u64,
}

/// Builds candidate routing tables for a set of dead directed fabric
/// ports. The default is the honest masked rebuild; tests substitute
/// deliberately broken builders to exercise the rejection path (modelling
/// a buggy out-of-band route-planner — exactly what the vet gate exists
/// to catch). The builder must be deterministic in its inputs: episode
/// recovery re-invokes it to rebuild a candidate whose epoch was prepared
/// before the crash.
pub type CandidateBuilder = Box<dyn Fn(&Topology, &[(SwitchId, usize)]) -> RouteTables>;

/// How far a journaled episode had durably progressed — replayed from the
/// record stream and used by [`FaultResponder::drive`] to skip completed
/// steps.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Stage {
    /// Hosts gated; drain window may or may not have elapsed.
    Started,
    /// Purge raised on every switch.
    Purging,
    /// Purge loop finished (fabric empty or budget exhausted).
    Purged,
    /// Post-purge resample found nothing new to do.
    Staled,
    /// Epoch allocated; candidate staged (or staging) on the switches.
    Prepared,
    /// Vet verdict durable.
    Vetted(Result<(), (String, String)>),
    /// Commit decision durable; per-switch commits may be cut short.
    Committing,
    /// Abort decision durable; per-switch aborts may be cut short.
    Aborting,
}

impl Stage {
    fn rank(&self) -> u8 {
        match self {
            Stage::Started => 0,
            Stage::Purging => 1,
            Stage::Purged => 2,
            Stage::Staled => 3,
            Stage::Prepared => 4,
            Stage::Vetted(_) => 5,
            Stage::Committing | Stage::Aborting => 6,
        }
    }
}

/// One in-flight response episode, as reconstructed from the journal.
#[derive(Debug, Clone)]
pub(crate) struct Episode {
    /// Cycle the episode was triggered (all deadlines key off this).
    detect: Cycle,
    stage: Stage,
    /// Epoch allocated by `prepared` (0 before that).
    epoch: u64,
    /// The dead-port set the episode masks (valid from `Prepared` on).
    masked: Vec<(SwitchId, usize)>,
}

/// Activity counters of a [`BoundedMemo`], surfaced per run in
/// [`crate::sim::RunOutcome`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that missed and forced a fresh computation.
    pub misses: u64,
    /// Entries evicted to stay within the LRU capacity.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// An LRU-bounded memo: at most `cap` entries are retained, each insert
/// past capacity evicting the least-recently-used key (and counting it),
/// so a responder embedded in a long-running service holds steady-state
/// memory — the memo analog of the bounded [`EventLog`] ring.
#[derive(Debug)]
struct BoundedMemo<K, V> {
    cap: usize,
    map: HashMap<K, V>,
    /// Keys from least- to most-recently used.
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V> BoundedMemo<K, V> {
    /// An empty memo holding at most `cap` entries (floor 1).
    fn new(cap: usize) -> Self {
        BoundedMemo {
            cap: cap.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks `key` up, counting the hit or miss and refreshing the
    /// entry's recency on a hit.
    fn get(&mut self, key: &K) -> Option<&V> {
        if self.map.contains_key(key) {
            self.hits += 1;
            self.touch(key);
            self.map.get(key)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used
    /// one if the memo is at capacity.
    fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_some() {
            self.touch(&key);
            return;
        }
        self.order.push_back(key);
        if self.map.len() > self.cap {
            let lru = self.order.pop_front().expect("order tracks map");
            self.map.remove(&lru);
            self.evictions += 1;
        }
    }

    /// Moves `key` to the most-recently-used position.
    fn touch(&mut self, key: &K) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos).expect("position is in range");
            self.order.push_back(k);
        }
    }

    /// Entries currently held.
    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }

    /// Snapshot of the activity counters.
    fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
        }
    }
}

/// Key of the epoch-scoped structural-vet memo: the candidate epoch plus
/// the masked-port set it covers.
type VetKey = (u64, Vec<(SwitchId, usize)>);
/// A structural-vet verdict: `Err((code, message))` on rejection.
type VetVerdict = Result<(), (String, String)>;

/// The fault-response orchestrator. Owns the debounced health view, the
/// write-ahead journal, and drives the gate/purge/two-phase-install
/// protocol against a [`System`].
pub struct FaultResponder {
    cfg: ResponseConfig,
    health: FabricHealth,
    /// Directed fabric ports currently masked out of the active tables,
    /// sorted; empty on a healthy fabric.
    masked: Vec<(SwitchId, usize)>,
    /// Fabric link → the directed (switch, out-port) that drives it.
    fabric_ports: HashMap<LinkId, (SwitchId, usize)>,
    builder: Option<CandidateBuilder>,
    events: EventLog,
    counters: ResponseCounters,
    /// Links administratively suppressed by a flap damper: treated as
    /// dead regardless of their confirmed health state.
    suppressed: Vec<LinkId>,
    /// Confirmed transitions accumulated since the last
    /// [`drain_confirmed`](Self::drain_confirmed) call.
    fresh_confirmed: Vec<ConfirmedTransition>,
    /// One-shot override of the `dead == masked` early-exit, set by
    /// [`request_retry`](Self::request_retry) so a storm controller can
    /// re-run the response after a backoff even though nothing changed.
    /// Deliberately not journaled — see the module docs.
    retry_requested: bool,
    /// Wall-clock accounting of the two vet halves.
    vet_stats: VetStats,
    /// Detect→install (or detect→reject) latency of each completed
    /// response episode, in cycles (bounded ring, drops counted).
    latency: Samples,
    /// Write-ahead journal of every durable decision.
    journal: Journal,
    /// Highest epoch allocated so far (0 = none; build-time tables).
    last_epoch: u64,
    /// Structural-vet verdicts keyed by *(epoch, masked-port set)*,
    /// LRU-bounded at `cfg.memo_cap`. The epoch in the key is what makes
    /// recovery safe: a re-driven episode reuses its own journaled
    /// verdict, while the same dead set vetted again under a fresh epoch
    /// (a storm-controller retry) always runs a fresh vet instead of
    /// serving a stale answer.
    vetted: BoundedMemo<VetKey, VetVerdict>,
    /// Cached verdicts of the bounded model check (the deep half of the
    /// reroute gate), keyed by the exploration bounds and reduction
    /// options the check actually ran under and LRU-bounded at
    /// `cfg.memo_cap`. The verdict never depends on the candidate tables,
    /// so one exploration per key covers every reroute of the run — but a
    /// verdict obtained under loose bounds (small fabric, shallow state
    /// cap) says nothing about a stricter vet, so differently-bounded
    /// requests get their own entry instead of silently reusing a weaker
    /// answer.
    deep_vetted: BoundedMemo<(ModelBounds, ModelOptions), Result<(), String>>,
    /// Rank certificate of the live topology, present when
    /// `certify.enabled`: the structural vet then runs the O(routes)
    /// certificate gate ([`mdw_analysis::vet_reroute_certified`]) over
    /// the compressed encoding instead of the explicit CDG analyzer —
    /// same verdicts (differential tier enforced), sub-second at fabric
    /// sizes where CDG enumeration exhausts its budget.
    certificate: Option<Certificate>,
    /// Crash-injection harness hook; `None` outside chaos runs.
    chaos: Option<ChaosHandle>,
    /// Completed crash recoveries (journal replays).
    recoveries: u64,
    /// Wall-clock restart→caught-up duration of each recovery, ns.
    recovery_ns: Samples,
}

impl std::fmt::Debug for FaultResponder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultResponder")
            .field("cfg", &self.cfg)
            .field("masked", &self.masked)
            .field("counters", &self.counters)
            .field("last_epoch", &self.last_epoch)
            .field("recoveries", &self.recoveries)
            .finish_non_exhaustive()
    }
}

impl FaultResponder {
    /// Shared construction: a fresh responder against `sys`, with the
    /// given journal write end.
    fn base(cfg: ResponseConfig, sys: &mut System, journal: Journal) -> Self {
        sys.engine.publish_link_events();
        let mut fabric_ports = HashMap::new();
        for (s, outs) in sys.sw_out.iter().enumerate() {
            for (p, &l) in outs.iter().enumerate() {
                if sys.links.fabric.contains(&l) {
                    fabric_ports.insert(l, (SwitchId::from(s), p));
                }
            }
        }
        let health = FabricHealth::new(cfg.debounce);
        let events = EventLog::new(cfg.event_log_cap);
        let latency = Samples::with_cap(cfg.latency_cap);
        let memo_cap = cfg.memo_cap;
        let certificate = sys
            .config
            .certify
            .enabled
            .then(|| Certificate::for_topology(&sys.topology));
        FaultResponder {
            cfg,
            health,
            masked: Vec::new(),
            fabric_ports,
            builder: None,
            events,
            counters: ResponseCounters::default(),
            suppressed: Vec::new(),
            fresh_confirmed: Vec::new(),
            retry_requested: false,
            vet_stats: VetStats::new(),
            latency,
            journal,
            last_epoch: 0,
            vetted: BoundedMemo::new(memo_cap),
            deep_vetted: BoundedMemo::new(memo_cap),
            certificate,
            chaos: None,
            recoveries: 0,
            recovery_ns: Samples::new(),
        }
    }

    /// Attaches a responder to `sys` with a fresh journal and enables
    /// link-event publication on its engine. Picks up a crash-injection
    /// handle if the chaos harness installed one
    /// ([`crate::chaos::install`]).
    pub fn new(cfg: ResponseConfig, sys: &mut System) -> Self {
        let journal = Journal::new(JournalConfig {
            snapshot_every: cfg.snapshot_every,
        });
        let mut r = FaultResponder::base(cfg, sys, journal);
        r.chaos = crate::chaos::take_installed();
        r
    }

    /// Rebuilds a responder from a surviving journal store: replays every
    /// intact record (snapshot first, then the tail; duplicated-tail
    /// sequence numbers are skipped, torn tails were dropped at reopen)
    /// and returns the recovered responder plus the in-flight episode to
    /// re-drive, if the crash interrupted one. The recovered state is
    /// byte-identical to the pre-crash responder's durable state.
    pub(crate) fn recover(
        cfg: ResponseConfig,
        store: JournalStore,
        sys: &mut System,
    ) -> (Self, Option<Episode>) {
        let (journal, records) = Journal::reopen(
            store,
            JournalConfig {
                snapshot_every: cfg.snapshot_every,
            },
        );
        let mut r = FaultResponder::base(cfg, sys, journal);
        let mut episode = None;
        let mut last_seq: Option<u64> = None;
        for (seq, rec) in records {
            if last_seq.is_some_and(|s| seq <= s) {
                continue; // duplicated tail: already applied
            }
            last_seq = Some(seq);
            r.replay(rec, &mut episode);
        }
        (r, episode)
    }

    /// Applies one journal record's in-memory effects — the exact
    /// counterpart of what the live path does when it writes the record.
    fn replay(&mut self, rec: JournalRecord, episode: &mut Option<Episode>) {
        fn stage_of(episode: &mut Option<Episode>) -> &mut Episode {
            episode.as_mut().expect("episode record outside an episode")
        }
        match rec {
            JournalRecord::Snapshot(s) => {
                self.last_epoch = s.last_epoch;
                self.masked = s.masked;
                self.suppressed = s.suppressed;
                self.counters = s.counters;
                self.latency =
                    Samples::restore(self.cfg.latency_cap, &s.latency, s.latency_dropped);
                self.events = EventLog::restore(self.cfg.event_log_cap, s.events, s.events_dropped);
                self.fresh_confirmed = s.fresh;
                self.health = FabricHealth::restore(
                    self.cfg.debounce,
                    &s.health_confirmed,
                    &s.health_pending,
                );
            }
            JournalRecord::Observed { link, at, down } => {
                self.health.observe(netsim::LinkEvent { link, at, down });
            }
            JournalRecord::Polled { now } => self.apply_poll(now),
            JournalRecord::Drained => self.fresh_confirmed.clear(),
            JournalRecord::Suppressed { links } => self.suppressed = links,
            JournalRecord::RespondStarted { detect } => {
                *episode = Some(Episode {
                    detect,
                    stage: Stage::Started,
                    epoch: 0,
                    masked: Vec::new(),
                });
            }
            JournalRecord::PurgeStarted { .. } => {
                self.counters.purges += 1;
                stage_of(episode).stage = Stage::Purging;
            }
            JournalRecord::PurgeDone {
                at,
                flits_left,
                complete,
            } => {
                if !complete {
                    self.counters.purges_incomplete += 1;
                    self.events.push(
                        at,
                        ResponseEvent::PurgeIncomplete {
                            flits_left: flits_left as usize,
                        },
                    );
                }
                stage_of(episode).stage = Stage::Purged;
            }
            JournalRecord::StaleDetected { at } => {
                self.counters.stale_detects += 1;
                self.events.push(at, ResponseEvent::StaleDetect);
                stage_of(episode).stage = Stage::Staled;
            }
            JournalRecord::Prepared { epoch, masked } => {
                self.last_epoch = self.last_epoch.max(epoch);
                let ep = stage_of(episode);
                ep.epoch = epoch;
                ep.masked = masked;
                ep.stage = Stage::Prepared;
            }
            JournalRecord::Vetted { epoch, verdict } => {
                let ep = stage_of(episode);
                self.vetted
                    .insert((epoch, ep.masked.clone()), verdict.clone());
                ep.stage = Stage::Vetted(verdict);
            }
            JournalRecord::Committed { .. } => stage_of(episode).stage = Stage::Committing,
            JournalRecord::Aborted {
                at, code, message, ..
            } => {
                self.counters.reroutes_rejected += 1;
                self.events
                    .push(at, ResponseEvent::RerouteRejected { code, message });
                stage_of(episode).stage = Stage::Aborting;
            }
            JournalRecord::Finalized { at, outcome, .. } => {
                let (detect, masked) = {
                    let ep = stage_of(episode);
                    (ep.detect, std::mem::take(&mut ep.masked))
                };
                self.apply_finalized(at, detect, &masked, outcome);
                *episode = None;
            }
        }
    }

    /// A chaos-harness protocol-step boundary: in a crash-injected run,
    /// unwinds with [`Crashed`] when the scheduled boundary is reached,
    /// optionally dirtying the journal with a partial record first —
    /// modeling a process that died mid-way through its *next* append.
    /// (Records already appended are durable by the WAL convention; a
    /// mid-append crash can only tear the line being written.)
    fn chaos_point(&mut self) -> Result<(), Crashed> {
        let Some(h) = &self.chaos else { return Ok(()) };
        let mut st = h.borrow_mut();
        let b = st.boundaries;
        st.boundaries += 1;
        if let ChaosMode::CrashAt {
            boundary,
            tear_bytes,
        } = st.mode
        {
            if !st.fired && b == boundary {
                st.fired = true;
                if tear_bytes > 0 {
                    crate::chaos::dirty_tail(&self.journal.store(), tear_bytes);
                }
                return Err(Crashed);
            }
        }
        Ok(())
    }

    /// Simulated process restart: rebuilds this responder from its
    /// surviving journal store and resumes whatever was in flight.
    /// Returns `true` if a response protocol ran (before or after the
    /// crash). The restart itself consumes **zero engine cycles** — only
    /// the responder's memory is lost — so a recovered run's outcome is
    /// byte-identical to an uncrashed one.
    fn crash_recover(&mut self, sys: &mut System) -> bool {
        let cfg = self.cfg.clone();
        let mut recoveries = self.recoveries;
        let mut recovery_ns = std::mem::take(&mut self.recovery_ns);
        loop {
            recoveries += 1;
            let t0 = std::time::Instant::now();
            let store = self.journal.store();
            let builder = self.builder.take();
            let chaos = self.chaos.take();
            let (mut fresh, episode) = FaultResponder::recover(cfg.clone(), store, sys);
            fresh.builder = builder;
            fresh.chaos = chaos;
            *self = fresh;
            let ns = t0.elapsed().as_nanos() as u64;
            recovery_ns.record(ns);
            if let Some(h) = &self.chaos {
                let mut st = h.borrow_mut();
                st.recoveries += 1;
                st.recovery_ns.push(ns);
            }
            let result = match episode {
                Some(ep) => self.drive(sys, ep).map(|()| true),
                None => self.try_poll(sys),
            };
            match result {
                Ok(ran) => {
                    self.recoveries = recoveries;
                    self.recovery_ns = recovery_ns;
                    return ran;
                }
                Err(Crashed) => continue,
            }
        }
    }

    /// Runs (once per distinct bounds/options pair) the `mdw-model`
    /// bounded model check of the configured architecture and replication
    /// mode, caching the verdict under the exact
    /// ([`ModelBounds`], [`ModelOptions`]) key it ran with. The
    /// fabric-size bound scales with the live topology (`n_switches`,
    /// clamped to the checker's scenario range) and the
    /// exact/compositional mode comes from the configuration, so growing
    /// the fabric or switching modes re-vets instead of replaying a
    /// verdict from a weaker exploration. A reroute may only activate
    /// when both the candidate's channel-dependency graph (structural)
    /// and the switch state machines (behavioral) are deadlock-free.
    fn deep_vet(&mut self, config: &SystemConfig, n_switches: usize) -> Result<(), String> {
        let bounds = ModelBounds {
            max_switches: n_switches.clamp(2, 16),
            ..ModelBounds::default()
        };
        let opts = ModelOptions {
            mode: config.model_mode,
            ..ModelOptions::default()
        };
        let key = (bounds, opts);
        if let Some(v) = self.deep_vetted.get(&key) {
            return v.clone();
        }
        let arch = match config.arch {
            SwitchArch::CentralBuffer => ArchClass::CentralBuffer,
            SwitchArch::InputBuffered => ArchClass::InputBuffered,
        };
        let sync = config.switch.replication == ReplicationMode::Synchronous;
        let outcome = check_model_opts_timed(
            arch,
            sync,
            config.switch.policy,
            &key.0,
            &key.1,
            &mut self.vet_stats,
        );
        let verdict = match outcome {
            CheckOutcome::Verified(_) => Ok(()),
            CheckOutcome::Violated(v) => Err(format!(
                "bounded model check found a {} in scenario '{}': {}",
                v.kind, v.scenario, v.detail
            )),
        };
        self.deep_vetted.insert(key, verdict.clone());
        verdict
    }

    /// The full candidate vet — structural analyzer plus behavioral model
    /// check — memoized by *(epoch, masked-port set)*. A hit means this
    /// exact candidate under this exact epoch was already vetted (an
    /// episode re-drive after a crash); the same dead set under a *new*
    /// epoch misses and re-vets, so no stale verdict is ever served.
    fn vet_candidate(
        &mut self,
        topo: &Topology,
        config: &SystemConfig,
        candidate: &RouteTables,
        epoch: u64,
        masked: &[(SwitchId, usize)],
    ) -> Result<(), (String, String)> {
        let key = (epoch, masked.to_vec());
        if let Some(v) = self.vetted.get(&key) {
            return v.clone();
        }
        // Certificate present (certify.enabled): the O(routes) certified
        // gate replaces the explicit CDG analyzer; identical verdicts,
        // sub-second at fabric sizes the explicit pass cannot afford.
        let structural = match &self.certificate {
            Some(cert) => vet_reroute_certified_timed(
                topo,
                candidate,
                config.switch.policy,
                cert,
                &mut self.vet_stats,
            ),
            None => vet_reroute_timed(topo, candidate, config.switch.policy, &mut self.vet_stats),
        };
        let verdict = structural
            .map_err(|report| {
                let d = report.first_error().expect("vet failed with no error");
                (d.code.to_string(), d.message.clone())
            })
            .and_then(|_| {
                self.deep_vet(config, topo.n_switches())
                    .map_err(|detail| ("model-check".to_string(), detail))
            });
        self.vetted.insert(key, verdict.clone());
        verdict
    }

    /// Substitutes the candidate-table builder (rejection-path tests).
    pub fn set_candidate_builder(&mut self, builder: CandidateBuilder) {
        self.builder = Some(builder);
    }

    /// The bounded event log (most recent `event_log_cap` entries, in
    /// occurrence order, tagged with the cycle).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Snapshot of the activity counters.
    pub fn counters(&self) -> ResponseCounters {
        self.counters
    }

    /// Activity counters of the structural-vet memo (LRU-bounded at
    /// `memo_cap`).
    pub fn vet_memo_stats(&self) -> MemoStats {
        self.vetted.stats()
    }

    /// Activity counters of the deep-vet (model-check) memo.
    pub fn deep_memo_stats(&self) -> MemoStats {
        self.deep_vetted.stats()
    }

    /// Directed fabric ports currently masked out of the active tables.
    pub fn masked_ports(&self) -> &[(SwitchId, usize)] {
        &self.masked
    }

    /// Wall-clock accounting of the structural and behavioral vet halves.
    pub fn vet_stats(&self) -> &VetStats {
        &self.vet_stats
    }

    /// Detect→install (or detect→reject) latency of every completed
    /// response episode, in cycles. p50/p99 of this series are the
    /// service's headline recovery metrics.
    pub fn latency(&self) -> &Samples {
        &self.latency
    }

    /// The write-ahead journal (records, store handle, size).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Highest install epoch allocated so far (0 = build-time tables).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Crash recoveries completed (journal replays).
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Wall-clock restart→caught-up duration of each recovery, ns.
    pub fn recovery_ns(&self) -> &Samples {
        &self.recovery_ns
    }

    /// Event-log entries plus latency samples evicted by their ring
    /// bounds — the "how much history did I shed" gauge surfaced in
    /// [`crate::sim::RunOutcome::response_dropped`].
    pub fn dropped(&self) -> u64 {
        self.events.dropped() + self.latency.dropped()
    }

    /// Serializes the responder's full durable state into a snapshot —
    /// exactly what a journal snapshot record would hold.
    fn make_snapshot(&self) -> ResponderSnapshot {
        ResponderSnapshot {
            last_epoch: self.last_epoch,
            masked: self.masked.clone(),
            suppressed: self.suppressed.clone(),
            counters: self.counters,
            latency: self.latency.values().to_vec(),
            latency_dropped: self.latency.dropped(),
            events: self.events.iter().cloned().collect(),
            events_dropped: self.events.dropped(),
            fresh: self.fresh_confirmed.clone(),
            health_confirmed: self.health.confirmed_down(),
            health_pending: self.health.pending(),
        }
    }

    /// FNV-64 digest of the responder's durable state (the snapshot
    /// serialization). A crashed-and-recovered responder produces the
    /// same digest as an uncrashed one — the crash harness holds every
    /// injected run to that.
    pub fn state_digest(&self) -> String {
        crate::journal::snapshot_digest(&self.make_snapshot())
    }

    /// Overrides the set of administratively suppressed links: a flap
    /// damper parks misbehaving links here and the responder masks them
    /// exactly as if they were confirmed dead. The next
    /// [`poll`](Self::poll) acts on any resulting dead-set change.
    pub fn set_suppressed(&mut self, mut links: Vec<LinkId>) {
        links.sort_unstable();
        links.dedup();
        if links == self.suppressed {
            return;
        }
        self.journal.append(&JournalRecord::Suppressed {
            links: links.clone(),
        });
        self.suppressed = links;
    }

    /// Links currently under administrative suppression.
    pub fn suppressed(&self) -> &[LinkId] {
        &self.suppressed
    }

    /// Hands out (and clears) the debounce-confirmed transitions
    /// accumulated since the previous call — the flap damper's diet.
    pub fn drain_confirmed(&mut self) -> Vec<ConfirmedTransition> {
        if !self.fresh_confirmed.is_empty() {
            self.journal.append(&JournalRecord::Drained);
        }
        std::mem::take(&mut self.fresh_confirmed)
    }

    /// Arms a one-shot override of the `dead == masked` early-exit so the
    /// next [`poll`](Self::poll) re-runs the full response even though
    /// the dead-port set is unchanged. A storm controller uses this to
    /// retry after a vet rejection or an incomplete purge once its
    /// backoff expires; clearing the memoized model-check verdicts is
    /// deliberately *not* part of this — each cached verdict depends only
    /// on the configuration and the bounds/options it was explored under,
    /// never on fabric state. (The retry *will* re-run the structural
    /// vet: it allocates a fresh epoch, and the structural memo is keyed
    /// by epoch.)
    pub fn request_retry(&mut self) {
        self.retry_requested = true;
    }

    /// Drains the engine's link events and advances the debounce view,
    /// logging (and accumulating for [`drain_confirmed`](Self::drain_confirmed))
    /// every confirmed transition. Does **not** respond. Recovers in
    /// place if a chaos-injected crash lands inside.
    pub fn observe_health(&mut self, sys: &mut System) {
        if self.observe_inner(sys).is_err() {
            self.crash_recover(sys);
        }
    }

    /// The fallible observation path: journals raw events as they are
    /// drained (the drain + append pair is atomic — the event queue is
    /// reliable, see DESIGN.md §15) and journals one `polled` record per
    /// poll that confirms anything, then applies the poll.
    fn observe_inner(&mut self, sys: &mut System) -> Result<(), Crashed> {
        let events = sys.engine.drain_link_events();
        if !events.is_empty() {
            for ev in events {
                self.journal.append(&JournalRecord::Observed {
                    link: ev.link,
                    at: ev.at,
                    down: ev.down,
                });
                self.health.observe(ev);
            }
            self.chaos_point()?;
        }
        if !self.health.has_pending() {
            return Ok(());
        }
        let now = sys.engine.now();
        // Poll on a probe clone first: a `polled` record is only written
        // when the poll actually confirms something, so quiet ticks leave
        // no journal residue.
        if self.health.clone().poll(now).is_empty() {
            return Ok(());
        }
        self.journal.append(&JournalRecord::Polled { now });
        self.apply_poll(now);
        self.chaos_point()?;
        Ok(())
    }

    /// Applies a debounce poll at `now`: counters, event log, and the
    /// fresh-confirmed queue. Deterministic in the health view and `now`,
    /// so journal replay of a `polled` record reproduces it exactly.
    fn apply_poll(&mut self, now: Cycle) {
        for ev in self.health.poll(now) {
            if ev.down {
                self.counters.links_down += 1;
            } else {
                self.counters.links_up += 1;
            }
            self.events.push(
                now,
                ResponseEvent::LinkConfirmed {
                    link: ev.link,
                    down: ev.down,
                },
            );
            self.fresh_confirmed.push(ConfirmedTransition {
                at: now,
                link: ev.link,
                down: ev.down,
            });
        }
    }

    /// The directed fabric ports that should be masked right now: the
    /// union of debounce-confirmed dead links and administratively
    /// suppressed links, restricted to switch→switch ports (host adapter
    /// outages never change the route tables), sorted.
    pub fn current_dead(&self) -> Vec<(SwitchId, usize)> {
        let mut dead: Vec<(SwitchId, usize)> = self
            .health
            .confirmed_down()
            .into_iter()
            .chain(self.suppressed.iter().copied())
            .filter_map(|l| self.fabric_ports.get(&l).copied())
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Drains the engine's link events, advances the debounce view, and —
    /// when the confirmed-dead fabric-port set changed (or a retry was
    /// requested) — runs the full response protocol (which steps the
    /// engine through the quiesce window). Returns `true` if a response
    /// ran. Recovers in place if a chaos-injected crash lands anywhere
    /// inside.
    pub fn poll(&mut self, sys: &mut System) -> bool {
        match self.try_poll(sys) {
            Ok(ran) => ran,
            Err(Crashed) => self.crash_recover(sys),
        }
    }

    fn try_poll(&mut self, sys: &mut System) -> Result<bool, Crashed> {
        self.observe_inner(sys)?;
        self.respond_if_needed(sys)
    }

    /// The respond-decision half of [`poll`](Self::poll), without the
    /// event drain — for callers (the storm controller) that interleave
    /// damping between observation and response.
    pub fn maybe_respond(&mut self, sys: &mut System) -> bool {
        match self.respond_if_needed(sys) {
            Ok(ran) => ran,
            Err(Crashed) => self.crash_recover(sys),
        }
    }

    fn respond_if_needed(&mut self, sys: &mut System) -> Result<bool, Crashed> {
        let dead = self.current_dead();
        let ran = if dead != self.masked || self.retry_requested {
            self.retry_requested = false;
            let detect = sys.engine.now();
            // journal_apply: episode opened, hosts gated.
            self.journal
                .append(&JournalRecord::RespondStarted { detect });
            sys.fabric_mode.gate();
            self.chaos_point()?;
            self.drive(
                sys,
                Episode {
                    detect,
                    stage: Stage::Started,
                    epoch: 0,
                    masked: Vec::new(),
                },
            )?;
            true
        } else {
            false
        };
        // Quiescent point (never mid-episode): snapshot + compact once
        // enough records accumulated.
        if self.journal.wants_snapshot() {
            self.journal
                .append(&JournalRecord::Snapshot(Box::new(self.make_snapshot())));
        }
        Ok(ran)
    }

    /// Runs (or, after a crash, *re-runs*) an episode from whatever stage
    /// the journal proves durable: gate → drain → purge → resample →
    /// prepare → vet → commit/abort → degrade/heal → ungate. Every step
    /// is idempotent — waits use absolute deadlines keyed off
    /// `ep.detect`, switch control accepts re-issued commands, and
    /// journaled decisions are skipped rather than re-taken — so driving
    /// the same episode any number of times converges on the same fabric
    /// state and the same engine timeline.
    fn drive(&mut self, sys: &mut System, mut ep: Episode) -> Result<(), Crashed> {
        let detect = ep.detect;
        sys.fabric_mode.gate(); // idempotent re-assert on re-drive
        sys.engine.run_until(detect + self.cfg.drain_wait);

        // Purge: raise on every switch (re-raising is a no-op), then loop
        // until the fabric is empty or the absolute budget expires.
        for ctl in &sys.switch_ctls {
            ctl.begin_purge();
        }
        // Control-plane flips are invisible to the compiled engine's wake
        // protocol: sleeping switches must be woken to see the purge flag
        // (no-op on the sequential path).
        sys.engine.wake_all();
        if ep.stage.rank() < Stage::Purging.rank() {
            self.journal.append(&JournalRecord::PurgeStarted {
                at: sys.engine.now(),
            });
            self.counters.purges += 1;
            ep.stage = Stage::Purging;
            self.chaos_point()?;
        }

        if ep.stage.rank() < Stage::Purged.rank() {
            let purge_end = detect + self.cfg.drain_wait + self.cfg.purge_max;
            loop {
                let empty = sys.engine.flits_in_links() == 0
                    && sys.switch_ctls.iter().all(|c| c.is_empty());
                if empty {
                    self.journal.append(&JournalRecord::PurgeDone {
                        at: sys.engine.now(),
                        flits_left: 0,
                        complete: true,
                    });
                    break;
                }
                if sys.engine.now() >= purge_end {
                    let flits_left = sys.engine.flits_in_links();
                    self.journal.append(&JournalRecord::PurgeDone {
                        at: sys.engine.now(),
                        flits_left: flits_left as u64,
                        complete: false,
                    });
                    self.counters.purges_incomplete += 1;
                    self.events.push(
                        sys.engine.now(),
                        ResponseEvent::PurgeIncomplete { flits_left },
                    );
                    break;
                }
                sys.engine.run_for(1);
            }
            ep.stage = Stage::Purged;
            self.chaos_point()?;
        }

        if ep.stage == Stage::Purged {
            // Re-sample health after the quiesce: the drain + purge just
            // consumed hundreds of cycles, plenty for the outage that
            // triggered this response to clear (a sub-window blip the
            // debounce confirmed right at its edge) or for further links
            // to fall over. Installing tables for the stale set would
            // leave ports masked for links already back up — the service
            // would then run degraded until the *next* transition woke it.
            self.observe_inner(sys)?;
            let dead = self.current_dead();
            if dead == self.masked {
                self.journal.append(&JournalRecord::StaleDetected {
                    at: sys.engine.now(),
                });
                self.counters.stale_detects += 1;
                self.events
                    .push(sys.engine.now(), ResponseEvent::StaleDetect);
                ep.stage = Stage::Staled;
                self.chaos_point()?;
            } else {
                let epoch = self.last_epoch + 1;
                self.journal.append(&JournalRecord::Prepared {
                    epoch,
                    masked: dead.clone(),
                });
                self.last_epoch = epoch;
                ep.epoch = epoch;
                ep.masked = dead;
                ep.stage = Stage::Prepared;
                self.chaos_point()?;
            }
        }
        if ep.stage == Stage::Staled {
            return self.finish(sys, &ep, EpisodeOutcome::Stale);
        }

        // Rebuild the candidate deterministically (recovery reconstructs
        // the exact tables the crashed run staged) and (re-)prepare it on
        // every switch. Prepare is idempotent against both a staged and
        // an armed copy of the same epoch.
        let candidate = match &self.builder {
            Some(b) => b(&sys.topology, &ep.masked),
            None => RouteTables::build_masked(&sys.topology, &ep.masked),
        };
        let tables = Rc::new(candidate);
        for ctl in &sys.switch_ctls {
            ctl.prepare(ep.epoch, tables.clone());
            self.chaos_point()?; // "crash after prepare on switch k"
        }

        let verdict = match &ep.stage {
            Stage::Committing => Ok(()),
            Stage::Aborting => Err((String::new(), String::new())), // effects already durable
            Stage::Vetted(v) => v.clone(),
            _ => {
                let v =
                    self.vet_candidate(&sys.topology, &sys.config, &tables, ep.epoch, &ep.masked);
                self.journal.append(&JournalRecord::Vetted {
                    epoch: ep.epoch,
                    verdict: v.clone(),
                });
                ep.stage = Stage::Vetted(v.clone());
                self.chaos_point()?;
                v
            }
        };

        match verdict {
            Ok(()) => {
                if ep.stage.rank() < Stage::Committing.rank() {
                    // Point of no return: once this record is durable the
                    // install *will* reach every switch — recovery
                    // re-drives the loop below however often it takes.
                    self.journal
                        .append(&JournalRecord::Committed { epoch: ep.epoch });
                    ep.stage = Stage::Committing;
                    self.chaos_point()?;
                }
                for ctl in &sys.switch_ctls {
                    let committed = ctl.commit(ep.epoch);
                    debug_assert!(committed, "a prepared epoch must commit");
                    self.chaos_point()?; // the torn-install window
                }
                // Wake sleeping switches so each sees the armed swap
                // (idle switches are empty and swap on their next tick).
                sys.engine.wake_all();
                sys.tables = tables;
                let outcome = if ep.masked.is_empty() {
                    EpisodeOutcome::Healed
                } else {
                    EpisodeOutcome::Installed {
                        masked_ports: ep.masked.len(),
                    }
                };
                self.finish(sys, &ep, outcome)
            }
            Err((code, message)) => {
                if ep.stage != Stage::Aborting {
                    // Stay on the proven-deadlock-free old tables; the
                    // degraded planner below still peels what they cannot
                    // cover.
                    self.journal.append(&JournalRecord::Aborted {
                        at: sys.engine.now(),
                        epoch: ep.epoch,
                        code: code.clone(),
                        message: message.clone(),
                    });
                    self.counters.reroutes_rejected += 1;
                    self.events.push(
                        sys.engine.now(),
                        ResponseEvent::RerouteRejected { code, message },
                    );
                    ep.stage = Stage::Aborting;
                    self.chaos_point()?;
                }
                for ctl in &sys.switch_ctls {
                    ctl.abort(ep.epoch);
                }
                self.finish(sys, &ep, EpisodeOutcome::Rejected)
            }
        }
    }

    /// The episode tail: lower the purge, set the post-episode fabric
    /// mode, ungate the hosts, and write the `finalized` record (whose
    /// apply updates counters, the event log, the masked set and the
    /// latency series in one atomic step).
    fn finish(
        &mut self,
        sys: &mut System,
        ep: &Episode,
        outcome: EpisodeOutcome,
    ) -> Result<(), Crashed> {
        for ctl in &sys.switch_ctls {
            ctl.end_purge();
        }
        // Degrade whenever masked tables are (or should be) active: the
        // planner sends full-coverage sets as one worm anyway, so on cuts
        // that leave coverage intact this only costs the plan check. A
        // stale episode keeps whatever mode was already in force.
        if outcome != EpisodeOutcome::Stale {
            if ep.masked.is_empty() {
                sys.fabric_mode.heal();
            } else {
                sys.fabric_mode.degrade(DegradePlanner {
                    tables: sys.tables.clone(),
                    topo: sys.topology.clone(),
                    policy: sys.config.switch.policy,
                    max_hops: self.cfg.max_hops,
                });
            }
        }
        sys.fabric_mode.ungate();
        let at = sys.engine.now();
        self.journal.append(&JournalRecord::Finalized {
            at,
            epoch: ep.epoch,
            outcome,
        });
        self.apply_finalized(at, ep.detect, &ep.masked, outcome);
        self.chaos_point()?;
        Ok(())
    }

    /// In-memory effects of a `finalized` record — shared verbatim
    /// between the live path and journal replay.
    fn apply_finalized(
        &mut self,
        at: Cycle,
        detect: Cycle,
        masked: &[(SwitchId, usize)],
        outcome: EpisodeOutcome,
    ) {
        match outcome {
            EpisodeOutcome::Installed { masked_ports } => {
                self.counters.reroutes += 1;
                self.events
                    .push(at, ResponseEvent::Rerouted { masked_ports });
                self.masked = masked.to_vec();
            }
            EpisodeOutcome::Healed => {
                self.counters.heals += 1;
                self.events.push(at, ResponseEvent::Healed);
                self.masked = masked.to_vec();
            }
            EpisodeOutcome::Rejected => {
                self.masked = masked.to_vec();
            }
            EpisodeOutcome::Stale => {}
        }
        self.latency.record(at - detect);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_ring_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::new(3);
        for i in 0..5u64 {
            log.push(i, ResponseEvent::Healed);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let cycles: Vec<Cycle> = log.iter().map(|&(c, _)| c).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert!(!log.is_empty());
    }

    #[test]
    fn event_log_restore_roundtrips() {
        let mut log = EventLog::new(2);
        for i in 0..5u64 {
            log.push(i, ResponseEvent::StaleDetect);
        }
        let restored = EventLog::restore(2, log.iter().cloned().collect(), log.dropped());
        assert_eq!(restored.len(), log.len());
        assert_eq!(restored.dropped(), log.dropped());
        assert!(restored.iter().eq(log.iter()));
    }

    /// A responder with no fabric attached — enough to exercise the
    /// memoized vets, which never touch a live engine.
    fn bare_responder() -> FaultResponder {
        let cfg = ResponseConfig::default();
        let memo_cap = cfg.memo_cap;
        let events = EventLog::new(cfg.event_log_cap);
        let health = FabricHealth::new(cfg.debounce);
        let latency = Samples::with_cap(cfg.latency_cap);
        let journal = Journal::new(JournalConfig {
            snapshot_every: cfg.snapshot_every,
        });
        FaultResponder {
            cfg,
            health,
            masked: Vec::new(),
            fabric_ports: HashMap::new(),
            builder: None,
            events,
            counters: ResponseCounters::default(),
            suppressed: Vec::new(),
            fresh_confirmed: Vec::new(),
            retry_requested: false,
            vet_stats: VetStats::new(),
            latency,
            journal,
            last_epoch: 0,
            vetted: BoundedMemo::new(memo_cap),
            deep_vetted: BoundedMemo::new(memo_cap),
            certificate: None,
            chaos: None,
            recoveries: 0,
            recovery_ns: Samples::new(),
        }
    }

    #[test]
    fn deep_vet_cache_is_keyed_by_bounds_and_options() {
        let mut r = bare_responder();
        let config = SystemConfig::default();

        // First vet at a 2-switch fabric bound: one exploration, cached.
        r.deep_vet(&config, 2).expect("defaults verify");
        assert_eq!(r.deep_vetted.len(), 1);
        assert_eq!(r.vet_stats.model_ns.count(), 1);

        // Same fabric again: the cache answers, no new exploration.
        r.deep_vet(&config, 2).expect("cached verdict");
        assert_eq!(r.vet_stats.model_ns.count(), 1);

        // A larger fabric is a *stricter* vet: the loose-bounds verdict
        // must not be reused — a fresh exploration runs under its own key.
        r.deep_vet(&config, 4).expect("quad fabric verifies");
        assert_eq!(r.deep_vetted.len(), 2);
        assert_eq!(r.vet_stats.model_ns.count(), 2);

        // A different decomposition mode is likewise its own key.
        let compositional = SystemConfig {
            model_mode: mdw_analysis::ModelMode::Compositional,
            ..SystemConfig::default()
        };
        r.deep_vet(&compositional, 4)
            .expect("compositional verifies");
        assert_eq!(r.deep_vetted.len(), 3);
        assert_eq!(r.vet_stats.model_ns.count(), 3);

        // The switch count saturates at the checker's scenario range, so
        // production-size fabrics share one entry.
        r.deep_vet(&config, 48).expect("clamped to 16 switches");
        r.deep_vet(&config, 64).expect("same clamped key");
        assert_eq!(r.deep_vetted.len(), 4);
        assert_eq!(r.vet_stats.model_ns.count(), 4);
    }

    #[test]
    fn structural_vet_memo_is_keyed_by_epoch() {
        use mintopo::topology::TopologyBuilder;
        use netsim::ids::NodeId;

        let mut b = TopologyBuilder::new(2);
        let s0 = b.add_switch(3, 1);
        let s1 = b.add_switch(1, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.connect(s0, 2, s1, 0);
        let topo = b.build();
        let tables = RouteTables::build(&topo);
        let config = SystemConfig::default();
        let masked: Vec<(SwitchId, usize)> = Vec::new();

        let mut r = bare_responder();
        r.vet_candidate(&topo, &config, &tables, 1, &masked)
            .expect("healthy tables vet");
        let after_first = r.vet_stats.structural_ns.count();
        assert_eq!(after_first, 1);

        // Same epoch + same masked set (an episode re-drive): memo hit,
        // no fresh analyzer run.
        r.vet_candidate(&topo, &config, &tables, 1, &masked)
            .expect("memoized verdict");
        assert_eq!(r.vet_stats.structural_ns.count(), 1);

        // The *same* dead set under a *new* epoch (a storm-controller
        // retry) must re-vet — a stale verdict may not be served.
        r.vet_candidate(&topo, &config, &tables, 2, &masked)
            .expect("fresh vet under the new epoch");
        assert_eq!(r.vet_stats.structural_ns.count(), 2);
        assert_eq!(r.vetted.len(), 2, "one entry per (epoch, masked) key");
    }

    #[test]
    fn bounded_memo_evicts_lru_and_counts() {
        let mut m: BoundedMemo<u32, u32> = BoundedMemo::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10), "touch 1: 2 becomes the LRU");
        m.insert(3, 30);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&2), None, "2 was evicted, not 1");
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.get(&3), Some(&30));

        let st = m.stats();
        assert_eq!(st.hits, 3);
        assert_eq!(st.misses, 1);
        assert_eq!(st.evictions, 1);
        assert_eq!(st.entries, 2);

        // Re-inserting an existing key refreshes, never evicts.
        m.insert(1, 11);
        assert_eq!(m.len(), 2);
        assert_eq!(m.stats().evictions, 1);
        assert_eq!(m.get(&1), Some(&11));

        // Capacity floor is 1, like the event log.
        let mut tiny: BoundedMemo<u32, u32> = BoundedMemo::new(0);
        tiny.insert(1, 1);
        tiny.insert(2, 2);
        assert_eq!(tiny.len(), 1);
        assert_eq!(tiny.stats().evictions, 1);
    }

    #[test]
    fn vet_memos_are_bounded_at_memo_cap() {
        let mut r = bare_responder();
        r.cfg.memo_cap = 2;
        r.vetted = BoundedMemo::new(r.cfg.memo_cap);

        use mintopo::topology::TopologyBuilder;
        use netsim::ids::NodeId;
        let mut b = TopologyBuilder::new(2);
        let s0 = b.add_switch(3, 1);
        let s1 = b.add_switch(1, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.connect(s0, 2, s1, 0);
        let topo = b.build();
        let tables = RouteTables::build(&topo);
        let config = SystemConfig::default();
        let masked: Vec<(SwitchId, usize)> = Vec::new();

        // Three distinct epochs through a 2-entry memo: the first entry
        // is evicted, the memo never grows past its cap.
        for epoch in 1..=3 {
            r.vet_candidate(&topo, &config, &tables, epoch, &masked)
                .expect("healthy tables vet");
        }
        assert_eq!(r.vetted.len(), 2);
        let st = r.vet_memo_stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.misses, 3);
        assert_eq!(st.entries, 2);

        // Epoch 1 was the LRU: re-vetting it misses and re-runs the
        // analyzer; epoch 3 still hits.
        let before = r.vet_stats.structural_ns.count();
        r.vet_candidate(&topo, &config, &tables, 3, &masked)
            .expect("memo hit");
        assert_eq!(r.vet_stats.structural_ns.count(), before);
        r.vet_candidate(&topo, &config, &tables, 1, &masked)
            .expect("fresh vet after eviction");
        assert_eq!(r.vet_stats.structural_ns.count(), before + 1);
        assert_eq!(r.vet_memo_stats().hits, 1);
    }

    #[test]
    fn certified_responder_vet_agrees_with_explicit() {
        use mintopo::topology::TopologyBuilder;
        use netsim::ids::NodeId;
        let mut b = TopologyBuilder::new(2);
        let s0 = b.add_switch(3, 1);
        let s1 = b.add_switch(1, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.connect(s0, 2, s1, 0);
        let topo = b.build();
        let tables = RouteTables::build(&topo);
        let config = SystemConfig::default();
        let masked: Vec<(SwitchId, usize)> = Vec::new();

        let mut certified = bare_responder();
        certified.certificate = Some(Certificate::for_topology(&topo));
        let mut explicit = bare_responder();
        let a = certified.vet_candidate(&topo, &config, &tables, 1, &masked);
        let b = explicit.vet_candidate(&topo, &config, &tables, 1, &masked);
        assert_eq!(a, b, "certified and explicit gates must agree");
        assert!(a.is_ok());
        assert_eq!(certified.vet_stats.structural_ns.count(), 1);
    }

    #[test]
    fn event_log_capacity_floor_is_one() {
        let mut log = EventLog::new(0);
        log.push(1, ResponseEvent::Healed);
        log.push(2, ResponseEvent::StaleDetect);
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 1);
        assert!(matches!(
            log.iter().next(),
            Some((2, ResponseEvent::StaleDetect))
        ));
    }

    #[test]
    fn snapshot_digest_tracks_durable_state_only() {
        let mut a = bare_responder();
        let b = bare_responder();
        assert_eq!(a.state_digest(), b.state_digest());

        // Wall-clock-only state (vet stats, recovery timings) must not
        // perturb the digest...
        a.vet_stats.structural_ns.record(123);
        a.recovery_ns.record(456);
        assert_eq!(a.state_digest(), b.state_digest());

        // ...while any durable bit does.
        a.counters.heals += 1;
        assert_ne!(a.state_digest(), b.state_digest());
    }
}

/// Helpers for scripting representative fabric outages in experiments and
/// tests: finding the directed root→leaf links whose loss exercises the
/// reroute (single cut) and degradation (crossed cut) paths.
pub mod outage {
    use super::System;
    use mintopo::reach::PortClass;
    use netsim::ids::{LinkId, NodeId, SwitchId};

    /// Switches with no up ports — the tree roots.
    pub fn roots(sys: &System) -> Vec<SwitchId> {
        (0..sys.topology.n_switches())
            .map(SwitchId::from)
            .filter(|&s| sys.tables.table(s).up_ports().is_empty())
            .collect()
    }

    /// The down output port of `sw` whose reach covers `host` and drives a
    /// fabric (switch→switch) link, with that link. `None` if `sw` only
    /// reaches `host` through an ejection port or not at all.
    pub fn down_port_to(sys: &System, sw: SwitchId, host: NodeId) -> Option<(usize, LinkId)> {
        let table = sys.tables.table(sw);
        (0..sys.topology.ports(sw)).find_map(|p| {
            let info = table.port(p);
            let link = sys.sw_out[sw.index()][p];
            (info.class == PortClass::Down
                && info.reach.contains(host)
                && sys.links.fabric.contains(&link))
            .then_some((p, link))
        })
    }

    /// One representative cut: the first root's down-link toward `host`'s
    /// leaf. Masked reroutes keep full worm coverage (every other root
    /// still reaches the leaf), so this exercises the pure reroute path.
    ///
    /// # Panics
    ///
    /// Panics if no root has a fabric down-link toward `host` (single-stage
    /// trees attach hosts directly to the roots).
    pub fn single_cut(sys: &System, host: NodeId) -> (LinkId, (SwitchId, usize)) {
        roots(sys)
            .into_iter()
            .find_map(|r| down_port_to(sys, r, host).map(|(p, l)| (l, (r, p))))
            .expect("some root must reach the host over a fabric link")
    }

    /// A crossed cut that leaves `d1` and `d2` (on different leaves)
    /// unicast-reachable but impossible to cover with one worm: half the
    /// roots lose their down-link toward `d1`'s leaf, the other half
    /// toward `d2`'s. Every root then misses one of the two subtrees, so
    /// no single ascent covers both — the degradation planner must peel.
    ///
    /// # Panics
    ///
    /// Panics if `d1` and `d2` share a leaf or fewer than two roots exist.
    pub fn crossed_cut(sys: &System, d1: NodeId, d2: NodeId) -> Vec<(LinkId, (SwitchId, usize))> {
        assert_ne!(
            sys.topology.host_inject(d1).0,
            sys.topology.host_inject(d2).0,
            "crossed cut needs destinations on different leaves"
        );
        let roots = roots(sys);
        assert!(roots.len() >= 2, "crossed cut needs at least two roots");
        let half = roots.len() / 2;
        roots
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| {
                let target = if i < half { d1 } else { d2 };
                down_port_to(sys, r, target).map(|(p, l)| (l, (r, p)))
            })
            .collect()
    }
}
