//! Online fault response: detection → quiesce → reroute → degrade → heal
//! (DESIGN.md §10).
//!
//! The [`FaultResponder`] models an SP2-style service processor sitting
//! beside the fabric. It watches the engine's link up/down event stream
//! through a debounced [`netsim::health::FabricHealth`] view and, whenever
//! the set of confirmed-dead *fabric* ports changes, runs the response
//! protocol:
//!
//! 1. **gate** — hosts stop injecting ([`collectives::FabricMode`]);
//!    ejection keeps draining, so worms already past the cut complete;
//! 2. **drain + purge** — after a grace window the per-switch
//!    [`switches::SwitchCtl`] purge command kills whatever is still
//!    resident (wedged against the dead link), returning credits so
//!    link-level conservation holds; the killed payloads come back through
//!    the end-to-end retransmission ledger;
//! 3. **reroute** — new LCA tables are derived with the dead ports masked
//!    ([`mintopo::route::RouteTables::build_masked`]) and vetted in two
//!    halves: structurally by the static deadlock analyzer
//!    ([`mdw_analysis::vet_reroute`] — channel-dependency cycles, stranded
//!    live switches, header round-trips) and behaviorally by the bounded
//!    model checker ([`mdw_analysis::check_model_opts`], memoized per
//!    ([`ModelBounds`], [`mdw_analysis::ModelOptions`]) pair — the verdict
//!    depends on architecture, replication mode, *and* on how deep the
//!    check looked, so a verdict cached under loose bounds never answers
//!    a stricter vet; the fabric-size bound is derived from the live
//!    topology and the exact/compositional mode from the system
//!    configuration). A candidate failing either half is *rejected*: the
//!    fabric stays on the old tables and runs degraded rather than trade
//!    a dead link for a deadlock;
//! 4. **degrade** — while masked tables are active, each hardware
//!    multicast is split into the worm-coverable part and a peeled
//!    remainder served by binomial-tree unicast
//!    ([`collectives::DegradePlanner`]);
//! 5. **heal** — when every cut is confirmed back up the original tables
//!    are re-derived, vetted and swapped in, and hosts return to pure
//!    hardware multicast.
//!
//! Table swaps ride the switches' install-only-when-empty rule, so no worm
//! ever decodes against a mix of old and new tables.
//!
//! Only switch→switch links are masked. A dead injection/ejection link
//! makes a *host* unreachable — no reroute can fix that, exactly as no
//! spare path exists to a dead adapter in a real machine — so those
//! outages are left to the end-to-end recovery layer alone.

use crate::build::System;
use crate::config::{SwitchArch, SystemConfig};
use collectives::DegradePlanner;
use mdw_analysis::{
    check_model_opts_timed, vet_reroute_timed, ArchClass, CheckOutcome, ModelBounds, ModelOptions,
    Samples, VetStats,
};
use mintopo::route::RouteTables;
use mintopo::topology::Topology;
use netsim::health::FabricHealth;
use netsim::ids::{LinkId, SwitchId};
use netsim::Cycle;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use switches::ReplicationMode;

/// Tuning knobs of the online fault-response protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseConfig {
    /// Cycles a link must hold a new state before the transition is
    /// confirmed (absorbs fault-injector blips).
    pub debounce: Cycle,
    /// Gated grace window before the purge: in-flight worms get this many
    /// cycles to complete on their own.
    pub drain_wait: Cycle,
    /// Maximum cycles the purge may take to empty the fabric before the
    /// responder gives up waiting (and records the incident).
    pub purge_max: Cycle,
    /// Hop budget for coverage traces on the degraded planner.
    pub max_hops: usize,
    /// Capacity of the bounded event log; the oldest entries are evicted
    /// (and counted) once the ring fills, so a responder embedded in a
    /// long-running service holds steady-state memory.
    pub event_log_cap: usize,
}

impl Default for ResponseConfig {
    fn default() -> Self {
        ResponseConfig {
            debounce: 64,
            drain_wait: 256,
            purge_max: 256,
            max_hops: 64,
            event_log_cap: 1024,
        }
    }
}

/// One entry in the responder's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseEvent {
    /// A link transition survived the debounce window.
    LinkConfirmed {
        /// The link that changed state.
        link: LinkId,
        /// `true` = confirmed down, `false` = confirmed back up.
        down: bool,
    },
    /// New masked tables passed the deadlock vet and were staged.
    Rerouted {
        /// Directed dead fabric ports masked out of the new tables.
        masked_ports: usize,
    },
    /// The candidate tables failed the deadlock vet; the fabric stays on
    /// the previous tables and runs degraded.
    RerouteRejected {
        /// Diagnostic code of the first analyzer error (e.g. "cdg-cycle").
        code: String,
        /// Human-readable analyzer message.
        message: String,
    },
    /// All cuts confirmed back up; original tables restored.
    Healed,
    /// The purge did not empty the fabric within `purge_max` cycles.
    PurgeIncomplete {
        /// Flits still sitting in links when the responder gave up.
        flits_left: usize,
    },
    /// The dead-port set re-sampled after the quiesce matched the masking
    /// already installed: the transition that triggered this response
    /// reverted during the drain/purge window, so no tables were built.
    StaleDetect,
}

/// A bounded ring of the most recent responder events. Once `cap`
/// entries are held, each push evicts the oldest and bumps the drop
/// counter — the log never grows past its capacity, however long the
/// responder lives.
#[derive(Debug)]
pub struct EventLog {
    cap: usize,
    buf: VecDeque<(Cycle, ResponseEvent)>,
    dropped: u64,
}

impl EventLog {
    fn new(cap: usize) -> Self {
        EventLog {
            cap: cap.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, at: Cycle, ev: ResponseEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((at, ev));
    }

    /// Iterates the retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Cycle, ResponseEvent)> {
        self.buf.iter()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been logged (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Entries evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a (Cycle, ResponseEvent);
    type IntoIter = std::collections::vec_deque::Iter<'a, (Cycle, ResponseEvent)>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

/// A debounce-confirmed link transition, as handed to callers of
/// [`FaultResponder::drain_confirmed`] (the flap damper feeds on these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfirmedTransition {
    /// Cycle the confirmation fired.
    pub at: Cycle,
    /// The link that changed state.
    pub link: LinkId,
    /// `true` = confirmed down, `false` = confirmed back up.
    pub down: bool,
}

/// Running totals of responder activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResponseCounters {
    /// Debounce-confirmed link-down transitions.
    pub links_down: u64,
    /// Debounce-confirmed link-up transitions.
    pub links_up: u64,
    /// Masked reroutes vetted and staged.
    pub reroutes: u64,
    /// Reroute candidates rejected by the deadlock vet.
    pub reroutes_rejected: u64,
    /// Full heals (all cuts back up, original tables restored).
    pub heals: u64,
    /// Quiesce windows that purged the fabric.
    pub purges: u64,
    /// Purges that hit the `purge_max` budget with flits still in flight.
    pub purges_incomplete: u64,
    /// Responses abandoned because the triggering transition reverted
    /// during the quiesce (the post-purge recheck found nothing to do).
    pub stale_detects: u64,
}

/// Builds candidate routing tables for a set of dead directed fabric
/// ports. The default is the honest masked rebuild; tests substitute
/// deliberately broken builders to exercise the rejection path (modelling
/// a buggy out-of-band route-planner — exactly what the vet gate exists
/// to catch).
pub type CandidateBuilder = Box<dyn Fn(&Topology, &[(SwitchId, usize)]) -> RouteTables>;

/// The fault-response orchestrator. Owns the debounced health view and
/// drives the gate/purge/reroute/degrade protocol against a [`System`].
pub struct FaultResponder {
    cfg: ResponseConfig,
    health: FabricHealth,
    /// Directed fabric ports currently masked out of the active tables,
    /// sorted; empty on a healthy fabric.
    masked: Vec<(SwitchId, usize)>,
    /// Fabric link → the directed (switch, out-port) that drives it.
    fabric_ports: HashMap<LinkId, (SwitchId, usize)>,
    builder: Option<CandidateBuilder>,
    events: EventLog,
    counters: ResponseCounters,
    /// Links administratively suppressed by a flap damper: treated as
    /// dead regardless of their confirmed health state.
    suppressed: Vec<LinkId>,
    /// Confirmed transitions accumulated since the last
    /// [`drain_confirmed`](Self::drain_confirmed) call.
    fresh_confirmed: Vec<ConfirmedTransition>,
    /// One-shot override of the `dead == masked` early-exit, set by
    /// [`request_retry`](Self::request_retry) so a storm controller can
    /// re-run the response after a backoff even though nothing changed.
    retry_requested: bool,
    /// Wall-clock accounting of the two vet halves.
    vet_stats: VetStats,
    /// Detect→install (or detect→reject) latency of each completed
    /// response episode, in cycles.
    latency: Samples,
    /// Cached verdicts of the bounded model check (the deep half of the
    /// reroute gate), keyed by the exploration bounds and reduction
    /// options the check actually ran under. The verdict never depends on
    /// the candidate tables, so one exploration per key covers every
    /// reroute of the run — but a verdict obtained under loose bounds
    /// (small fabric, shallow state cap) says nothing about a stricter
    /// vet, so differently-bounded requests get their own entry instead
    /// of silently reusing a weaker answer.
    deep_vetted: HashMap<(ModelBounds, ModelOptions), Result<(), String>>,
}

impl std::fmt::Debug for FaultResponder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultResponder")
            .field("cfg", &self.cfg)
            .field("masked", &self.masked)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl FaultResponder {
    /// Attaches a responder to `sys` and enables link-event publication on
    /// its engine.
    pub fn new(cfg: ResponseConfig, sys: &mut System) -> Self {
        sys.engine.publish_link_events();
        let mut fabric_ports = HashMap::new();
        for (s, outs) in sys.sw_out.iter().enumerate() {
            for (p, &l) in outs.iter().enumerate() {
                if sys.links.fabric.contains(&l) {
                    fabric_ports.insert(l, (SwitchId::from(s), p));
                }
            }
        }
        let health = FabricHealth::new(cfg.debounce);
        let events = EventLog::new(cfg.event_log_cap);
        FaultResponder {
            cfg,
            health,
            masked: Vec::new(),
            fabric_ports,
            builder: None,
            events,
            counters: ResponseCounters::default(),
            suppressed: Vec::new(),
            fresh_confirmed: Vec::new(),
            retry_requested: false,
            vet_stats: VetStats::new(),
            latency: Samples::new(),
            deep_vetted: HashMap::new(),
        }
    }

    /// Runs (once per distinct bounds/options pair) the `mdw-model`
    /// bounded model check of the configured architecture and replication
    /// mode, caching the verdict under the exact
    /// ([`ModelBounds`], [`ModelOptions`]) key it ran with. The
    /// fabric-size bound scales with the live topology (`n_switches`,
    /// clamped to the checker's scenario range) and the
    /// exact/compositional mode comes from the configuration, so growing
    /// the fabric or switching modes re-vets instead of replaying a
    /// verdict from a weaker exploration. A reroute may only activate
    /// when both the candidate's channel-dependency graph (structural)
    /// and the switch state machines (behavioral) are deadlock-free.
    fn deep_vet(&mut self, config: &SystemConfig, n_switches: usize) -> Result<(), String> {
        let bounds = ModelBounds {
            max_switches: n_switches.clamp(2, 16),
            ..ModelBounds::default()
        };
        let opts = ModelOptions {
            mode: config.model_mode,
            ..ModelOptions::default()
        };
        let key = (bounds, opts);
        if !self.deep_vetted.contains_key(&key) {
            let arch = match config.arch {
                SwitchArch::CentralBuffer => ArchClass::CentralBuffer,
                SwitchArch::InputBuffered => ArchClass::InputBuffered,
            };
            let sync = config.switch.replication == ReplicationMode::Synchronous;
            let outcome = check_model_opts_timed(
                arch,
                sync,
                config.switch.policy,
                &key.0,
                &key.1,
                &mut self.vet_stats,
            );
            let verdict = match outcome {
                CheckOutcome::Verified(_) => Ok(()),
                CheckOutcome::Violated(v) => Err(format!(
                    "bounded model check found a {} in scenario '{}': {}",
                    v.kind, v.scenario, v.detail
                )),
            };
            self.deep_vetted.insert(key.clone(), verdict);
        }
        self.deep_vetted[&key].clone()
    }

    /// Substitutes the candidate-table builder (rejection-path tests).
    pub fn set_candidate_builder(&mut self, builder: CandidateBuilder) {
        self.builder = Some(builder);
    }

    /// The bounded event log (most recent `event_log_cap` entries, in
    /// occurrence order, tagged with the cycle).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Snapshot of the activity counters.
    pub fn counters(&self) -> ResponseCounters {
        self.counters
    }

    /// Directed fabric ports currently masked out of the active tables.
    pub fn masked_ports(&self) -> &[(SwitchId, usize)] {
        &self.masked
    }

    /// Wall-clock accounting of the structural and behavioral vet halves.
    pub fn vet_stats(&self) -> &VetStats {
        &self.vet_stats
    }

    /// Detect→install (or detect→reject) latency of every completed
    /// response episode, in cycles. p50/p99 of this series are the
    /// service's headline recovery metrics.
    pub fn latency(&self) -> &Samples {
        &self.latency
    }

    /// Overrides the set of administratively suppressed links: a flap
    /// damper parks misbehaving links here and the responder masks them
    /// exactly as if they were confirmed dead. The next
    /// [`poll`](Self::poll) acts on any resulting dead-set change.
    pub fn set_suppressed(&mut self, mut links: Vec<LinkId>) {
        links.sort_unstable();
        links.dedup();
        self.suppressed = links;
    }

    /// Links currently under administrative suppression.
    pub fn suppressed(&self) -> &[LinkId] {
        &self.suppressed
    }

    /// Hands out (and clears) the debounce-confirmed transitions
    /// accumulated since the previous call — the flap damper's diet.
    pub fn drain_confirmed(&mut self) -> Vec<ConfirmedTransition> {
        std::mem::take(&mut self.fresh_confirmed)
    }

    /// Arms a one-shot override of the `dead == masked` early-exit so the
    /// next [`poll`](Self::poll) re-runs the full response even though
    /// the dead-port set is unchanged. A storm controller uses this to
    /// retry after a vet rejection or an incomplete purge once its
    /// backoff expires; clearing the memoized model-check verdicts is
    /// deliberately *not* part of this — each cached verdict depends only
    /// on the configuration and the bounds/options it was explored under,
    /// never on fabric state.
    pub fn request_retry(&mut self) {
        self.retry_requested = true;
    }

    /// Drains the engine's link events and advances the debounce view,
    /// logging (and accumulating for [`drain_confirmed`](Self::drain_confirmed))
    /// every confirmed transition. Does **not** respond.
    pub fn observe_health(&mut self, sys: &mut System) {
        for ev in sys.engine.drain_link_events() {
            self.health.observe(ev);
        }
        let now = sys.engine.now();
        for ev in self.health.poll(now) {
            if ev.down {
                self.counters.links_down += 1;
            } else {
                self.counters.links_up += 1;
            }
            self.events.push(
                now,
                ResponseEvent::LinkConfirmed {
                    link: ev.link,
                    down: ev.down,
                },
            );
            self.fresh_confirmed.push(ConfirmedTransition {
                at: now,
                link: ev.link,
                down: ev.down,
            });
        }
    }

    /// The directed fabric ports that should be masked right now: the
    /// union of debounce-confirmed dead links and administratively
    /// suppressed links, restricted to switch→switch ports (host adapter
    /// outages never change the route tables), sorted.
    pub fn current_dead(&self) -> Vec<(SwitchId, usize)> {
        let mut dead: Vec<(SwitchId, usize)> = self
            .health
            .confirmed_down()
            .into_iter()
            .chain(self.suppressed.iter().copied())
            .filter_map(|l| self.fabric_ports.get(&l).copied())
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Drains the engine's link events, advances the debounce view, and —
    /// when the confirmed-dead fabric-port set changed (or a retry was
    /// requested) — runs the full response protocol (which steps the
    /// engine through the quiesce window). Returns `true` if a response
    /// ran.
    pub fn poll(&mut self, sys: &mut System) -> bool {
        self.observe_health(sys);
        self.maybe_respond(sys)
    }

    /// The respond-decision half of [`poll`](Self::poll), without the
    /// event drain — for callers (the storm controller) that interleave
    /// damping between observation and response.
    pub fn maybe_respond(&mut self, sys: &mut System) -> bool {
        let dead = self.current_dead();
        if dead == self.masked && !self.retry_requested {
            return false;
        }
        self.retry_requested = false;
        self.respond(sys);
        true
    }

    /// Runs gate → drain → purge → vet → swap → degrade/heal → ungate for
    /// the new dead-port set (recomputed after the quiesce — see below).
    fn respond(&mut self, sys: &mut System) {
        let detect = sys.engine.now();
        sys.fabric_mode.gate();
        sys.engine.run_for(self.cfg.drain_wait);

        for ctl in &sys.switch_ctls {
            ctl.begin_purge();
        }
        // Control-plane flips are invisible to the compiled engine's wake
        // protocol: sleeping switches must be woken to see the purge flag
        // (no-op on the sequential path).
        sys.engine.wake_all();
        self.counters.purges += 1;
        let purge_end = sys.engine.now() + self.cfg.purge_max;
        loop {
            let empty =
                sys.engine.flits_in_links() == 0 && sys.switch_ctls.iter().all(|c| c.is_empty());
            if empty {
                break;
            }
            if sys.engine.now() >= purge_end {
                let flits_left = sys.engine.flits_in_links();
                self.counters.purges_incomplete += 1;
                self.events.push(
                    sys.engine.now(),
                    ResponseEvent::PurgeIncomplete { flits_left },
                );
                break;
            }
            sys.engine.run_for(1);
        }

        // Re-sample health after the quiesce: the drain + purge just
        // consumed hundreds of cycles, plenty for the outage that
        // triggered this response to clear (a sub-window blip the
        // debounce confirmed right at its edge) or for further links to
        // fall over. Installing tables for the stale set would leave
        // ports masked for links already back up — the service would
        // then run degraded until the *next* transition woke it.
        self.observe_health(sys);
        let dead = self.current_dead();
        if dead == self.masked {
            self.counters.stale_detects += 1;
            self.events
                .push(sys.engine.now(), ResponseEvent::StaleDetect);
            for ctl in &sys.switch_ctls {
                ctl.end_purge();
            }
            sys.fabric_mode.ungate();
            self.latency.record(sys.engine.now() - detect);
            return;
        }

        let candidate = match &self.builder {
            Some(b) => b(&sys.topology, &dead),
            None => RouteTables::build_masked(&sys.topology, &dead),
        };
        let policy = sys.config.switch.policy;
        let verdict = vet_reroute_timed(&sys.topology, &candidate, policy, &mut self.vet_stats)
            .map_err(|report| {
                let d = report.first_error().expect("vet failed with no error");
                (d.code.to_string(), d.message.clone())
            })
            .and_then(|_| {
                self.deep_vet(&sys.config, sys.topology.n_switches())
                    .map_err(|detail| ("model-check".to_string(), detail))
            });
        match verdict {
            Ok(()) => {
                let tables = Rc::new(candidate);
                for ctl in &sys.switch_ctls {
                    ctl.install_tables(tables.clone());
                }
                // Wake sleeping switches so each sees the staged swap
                // (idle switches are empty and swap on their next tick).
                sys.engine.wake_all();
                sys.tables = tables;
                if dead.is_empty() {
                    self.counters.heals += 1;
                    self.events.push(sys.engine.now(), ResponseEvent::Healed);
                } else {
                    self.counters.reroutes += 1;
                    self.events.push(
                        sys.engine.now(),
                        ResponseEvent::Rerouted {
                            masked_ports: dead.len(),
                        },
                    );
                }
                self.masked = dead;
            }
            Err((code, message)) => {
                // Stay on the proven-deadlock-free old tables; the
                // degraded planner below still peels what they cannot
                // cover. Remember the set so the same broken candidate is
                // not re-vetted every poll.
                self.counters.reroutes_rejected += 1;
                self.events.push(
                    sys.engine.now(),
                    ResponseEvent::RerouteRejected { code, message },
                );
                self.masked = dead;
            }
        }
        self.latency.record(sys.engine.now() - detect);

        for ctl in &sys.switch_ctls {
            ctl.end_purge();
        }
        // Degrade whenever masked tables are (or should be) active: the
        // planner sends full-coverage sets as one worm anyway, so on cuts
        // that leave coverage intact this only costs the plan check.
        if self.masked.is_empty() {
            sys.fabric_mode.heal();
        } else {
            sys.fabric_mode.degrade(DegradePlanner {
                tables: sys.tables.clone(),
                topo: sys.topology.clone(),
                policy,
                max_hops: self.cfg.max_hops,
            });
        }
        sys.fabric_mode.ungate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_ring_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::new(3);
        for i in 0..5u64 {
            log.push(i, ResponseEvent::Healed);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let cycles: Vec<Cycle> = log.iter().map(|&(c, _)| c).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert!(!log.is_empty());
    }

    /// A responder with no fabric attached — enough to exercise the
    /// memoized deep vet, which never touches the topology beyond the
    /// switch count its caller passes in.
    fn bare_responder() -> FaultResponder {
        let cfg = ResponseConfig::default();
        let events = EventLog::new(cfg.event_log_cap);
        let health = FabricHealth::new(cfg.debounce);
        FaultResponder {
            cfg,
            health,
            masked: Vec::new(),
            fabric_ports: HashMap::new(),
            builder: None,
            events,
            counters: ResponseCounters::default(),
            suppressed: Vec::new(),
            fresh_confirmed: Vec::new(),
            retry_requested: false,
            vet_stats: VetStats::new(),
            latency: Samples::new(),
            deep_vetted: HashMap::new(),
        }
    }

    #[test]
    fn deep_vet_cache_is_keyed_by_bounds_and_options() {
        let mut r = bare_responder();
        let config = SystemConfig::default();

        // First vet at a 2-switch fabric bound: one exploration, cached.
        r.deep_vet(&config, 2).expect("defaults verify");
        assert_eq!(r.deep_vetted.len(), 1);
        assert_eq!(r.vet_stats.model_ns.count(), 1);

        // Same fabric again: the cache answers, no new exploration.
        r.deep_vet(&config, 2).expect("cached verdict");
        assert_eq!(r.vet_stats.model_ns.count(), 1);

        // A larger fabric is a *stricter* vet: the loose-bounds verdict
        // must not be reused — a fresh exploration runs under its own key.
        r.deep_vet(&config, 4).expect("quad fabric verifies");
        assert_eq!(r.deep_vetted.len(), 2);
        assert_eq!(r.vet_stats.model_ns.count(), 2);

        // A different decomposition mode is likewise its own key.
        let compositional = SystemConfig {
            model_mode: mdw_analysis::ModelMode::Compositional,
            ..SystemConfig::default()
        };
        r.deep_vet(&compositional, 4)
            .expect("compositional verifies");
        assert_eq!(r.deep_vetted.len(), 3);
        assert_eq!(r.vet_stats.model_ns.count(), 3);

        // The switch count saturates at the checker's scenario range, so
        // production-size fabrics share one entry.
        r.deep_vet(&config, 48).expect("clamped to 16 switches");
        r.deep_vet(&config, 64).expect("same clamped key");
        assert_eq!(r.deep_vetted.len(), 4);
        assert_eq!(r.vet_stats.model_ns.count(), 4);
    }

    #[test]
    fn event_log_capacity_floor_is_one() {
        let mut log = EventLog::new(0);
        log.push(1, ResponseEvent::Healed);
        log.push(2, ResponseEvent::StaleDetect);
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 1);
        assert!(matches!(
            log.iter().next(),
            Some((2, ResponseEvent::StaleDetect))
        ));
    }
}

/// Helpers for scripting representative fabric outages in experiments and
/// tests: finding the directed root→leaf links whose loss exercises the
/// reroute (single cut) and degradation (crossed cut) paths.
pub mod outage {
    use super::System;
    use mintopo::reach::PortClass;
    use netsim::ids::{LinkId, NodeId, SwitchId};

    /// Switches with no up ports — the tree roots.
    pub fn roots(sys: &System) -> Vec<SwitchId> {
        (0..sys.topology.n_switches())
            .map(SwitchId::from)
            .filter(|&s| sys.tables.table(s).up_ports().is_empty())
            .collect()
    }

    /// The down output port of `sw` whose reach covers `host` and drives a
    /// fabric (switch→switch) link, with that link. `None` if `sw` only
    /// reaches `host` through an ejection port or not at all.
    pub fn down_port_to(sys: &System, sw: SwitchId, host: NodeId) -> Option<(usize, LinkId)> {
        let table = sys.tables.table(sw);
        (0..sys.topology.ports(sw)).find_map(|p| {
            let info = table.port(p);
            let link = sys.sw_out[sw.index()][p];
            (info.class == PortClass::Down
                && info.reach.contains(host)
                && sys.links.fabric.contains(&link))
            .then_some((p, link))
        })
    }

    /// One representative cut: the first root's down-link toward `host`'s
    /// leaf. Masked reroutes keep full worm coverage (every other root
    /// still reaches the leaf), so this exercises the pure reroute path.
    ///
    /// # Panics
    ///
    /// Panics if no root has a fabric down-link toward `host` (single-stage
    /// trees attach hosts directly to the roots).
    pub fn single_cut(sys: &System, host: NodeId) -> (LinkId, (SwitchId, usize)) {
        roots(sys)
            .into_iter()
            .find_map(|r| down_port_to(sys, r, host).map(|(p, l)| (l, (r, p))))
            .expect("some root must reach the host over a fabric link")
    }

    /// A crossed cut that leaves `d1` and `d2` (on different leaves)
    /// unicast-reachable but impossible to cover with one worm: half the
    /// roots lose their down-link toward `d1`'s leaf, the other half
    /// toward `d2`'s. Every root then misses one of the two subtrees, so
    /// no single ascent covers both — the degradation planner must peel.
    ///
    /// # Panics
    ///
    /// Panics if `d1` and `d2` share a leaf or fewer than two roots exist.
    pub fn crossed_cut(sys: &System, d1: NodeId, d2: NodeId) -> Vec<(LinkId, (SwitchId, usize))> {
        assert_ne!(
            sys.topology.host_inject(d1).0,
            sys.topology.host_inject(d2).0,
            "crossed cut needs destinations on different leaves"
        );
        let roots = roots(sys);
        assert!(roots.len() >= 2, "crossed cut needs at least two roots");
        let half = roots.len() / 2;
        roots
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| {
                let target = if i < half { d1 } else { d2 };
                down_port_to(sys, r, target).map(|(p, l)| (l, (r, p)))
            })
            .collect()
    }
}
