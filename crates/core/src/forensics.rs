//! Deadlock forensics: what exactly was stuck, and why.
//!
//! When the watchdog in [`crate::sim::run_experiment`] sees in-flight
//! traffic make no progress, a bare "deadlocked: true" is useless for
//! debugging a routing or replication protocol. This module captures a
//! structured [`DeadlockReport`] instead:
//!
//! * every switch's buffer occupancy and the worms that could not advance
//!   (with their remaining destination sets and FSM state);
//! * a **channel wait-for graph**: for each blocked worm, an edge from
//!   every link/transmitter resource it *holds* to every one it *waits*
//!   for;
//! * one explicit cycle in that graph, found by depth-first search — the
//!   circular wait that proves (and locates) the deadlock.
//!
//! Capture is cooperative: the harness raises the `forensics_requested`
//! flag on every [`switches::SwitchStats`] and runs one more cycle; each
//! switch deposits a [`switches::SwitchSnapshot`] at the end of its tick.
//! In a deadlock nothing can move, so the extra cycle perturbs no state.

use crate::build::System;
use netsim::ids::LinkId;
use netsim::Cycle;
use std::collections::HashMap;
use switches::SwitchSnapshot;

/// One switch's snapshot, tagged with its index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchDump {
    /// Switch index.
    pub switch: usize,
    /// The captured state.
    pub snapshot: SwitchSnapshot,
}

/// A wait-for edge between two links: a worm holding `from_link` (its
/// input buffer or an acquired transmitter) needs `to_link` to advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WaitEdge {
    /// Link whose buffer/transmitter the blocked worm occupies.
    pub from_link: usize,
    /// Link the worm is waiting to acquire or get credits on.
    pub to_link: usize,
    /// Switch at which the dependency was observed.
    pub switch: usize,
}

/// Structured description of a detected deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle at which the snapshot was taken.
    pub at_cycle: Cycle,
    /// Cycle of the last observed global flit progress before the
    /// watchdog fired. `at_cycle - last_progress_cycle` is how long the
    /// fabric sat frozen before the harness gave up on it.
    pub last_progress_cycle: Cycle,
    /// Messages still undelivered.
    pub outstanding_messages: usize,
    /// Per-switch state, omitting completely idle switches.
    pub switches: Vec<SwitchDump>,
    /// The full channel wait-for graph (deduplicated, sorted).
    pub wait_edges: Vec<WaitEdge>,
    /// Link indices forming one circular wait (`cycle[0]` is reachable
    /// again from `cycle.last()`); empty if the graph is acyclic, e.g.
    /// when the stall is livelock or an undrained fault outage instead of
    /// a true circular wait.
    pub cycle: Vec<usize>,
}

/// Captures a [`DeadlockReport`] from a stuck system. `last_progress` is
/// the cycle the caller's watchdog last saw a flit move.
///
/// Runs the engine for one extra cycle so every switch can deposit its
/// snapshot (harmless: nothing can move in a deadlock).
pub fn capture_deadlock_report(sys: &mut System, last_progress: Cycle) -> DeadlockReport {
    for st in &sys.switch_stats {
        st.borrow_mut().forensics_requested = true;
    }
    // The request flag is out-of-band state the compiled engine's wake
    // protocol cannot see — wake sleeping switches so every one deposits
    // a snapshot during the extra cycle (no-op on the sequential path).
    sys.engine.wake_all();
    sys.engine.run_for(1);

    let mut switches = Vec::new();
    let mut edges = Vec::new();
    for (s, st) in sys.switch_stats.iter().enumerate() {
        let Some(snap) = st.borrow_mut().forensics.take() else {
            continue;
        };
        for w in &snap.blocked {
            let mut holds: Vec<LinkId> =
                w.holds_outputs.iter().map(|&p| sys.sw_out[s][p]).collect();
            if let Some(i) = w.input {
                holds.push(sys.sw_in[s][i]);
            }
            for &h in &holds {
                for &p in &w.waits_outputs {
                    let t = sys.sw_out[s][p];
                    if h != t {
                        edges.push(WaitEdge {
                            from_link: h.index(),
                            to_link: t.index(),
                            switch: s,
                        });
                    }
                }
            }
        }
        let interesting = !snap.blocked.is_empty()
            || snap.cq_used_chunks > 0
            || snap.input_occupancy.iter().any(|&o| o > 0);
        if interesting {
            switches.push(SwitchDump {
                switch: s,
                snapshot: snap,
            });
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let cycle = find_cycle(&edges);
    DeadlockReport {
        at_cycle: sys.engine.now(),
        last_progress_cycle: last_progress,
        outstanding_messages: sys.tracker().borrow().outstanding(),
        switches,
        wait_edges: edges,
        cycle,
    }
}

/// Finds one cycle in the wait-for graph by DFS (white/gray/black), or
/// returns an empty vec. Deterministic: roots and successors are visited
/// in sorted order.
pub fn find_cycle(edges: &[WaitEdge]) -> Vec<usize> {
    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    for e in edges {
        adj.entry(e.from_link).or_default().push(e.to_link);
    }
    for succ in adj.values_mut() {
        succ.sort_unstable();
        succ.dedup();
    }

    fn dfs(
        v: usize,
        adj: &HashMap<usize, Vec<usize>>,
        color: &mut HashMap<usize, u8>,
        path: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color.insert(v, 1); // gray: on the current path
        path.push(v);
        for &w in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            match color.get(&w).copied().unwrap_or(0) {
                0 => {
                    if let Some(c) = dfs(w, adj, color, path) {
                        return Some(c);
                    }
                }
                1 => {
                    let start = path.iter().position(|&x| x == w).expect("gray is on path");
                    return Some(path[start..].to_vec());
                }
                _ => {} // black: fully explored, no cycle through it
            }
        }
        path.pop();
        color.insert(v, 2);
        None
    }

    let mut roots: Vec<usize> = adj.keys().copied().collect();
    roots.sort_unstable();
    let mut color = HashMap::new();
    let mut path = Vec::new();
    for r in roots {
        if color.get(&r).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(r, &adj, &mut color, &mut path) {
                return c;
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod system_tests {
    use super::*;
    use crate::build::build_system;
    use crate::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
    use collectives::{MessageSpec, ScheduledSource, SilentSource, TrafficSource};
    use netsim::destset::DestSet;
    use netsim::ids::NodeId;
    use netsim::message::MessageKind;
    use switches::ReplicationMode;

    #[test]
    fn crossed_sync_grants_deadlock_with_explicit_cycle() {
        // System-level version of the crossed-grant deadlock the paper's §3
        // uses to reject synchronous replication: a warm-up unicast from
        // host 1 to host 3 rotates output 3's grant pointer past input 0,
        // so when the multicasts from hosts 0 and 2 (both to {2, 3}) decode
        // together, input 0 wins output 2 while input 2 wins output 3.
        // Under lock-step replication each holds what the other needs.
        let mut cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 1 },
            arch: SwitchArch::InputBuffered,
            mcast: McastImpl::HwBitString,
            ..SystemConfig::default()
        };
        cfg.switch.replication = ReplicationMode::Synchronous;
        let n = cfg.n_hosts();
        let mcast = MessageSpec {
            kind: MessageKind::Multicast(DestSet::from_nodes(n, [2, 3].map(NodeId))),
            payload_flits: 48,
        };
        let mut sources: Vec<Box<dyn TrafficSource>> = (0..n)
            .map(|_| Box::new(SilentSource) as Box<dyn TrafficSource>)
            .collect();
        sources[1] = Box::new(ScheduledSource::new(vec![(
            1,
            MessageSpec {
                kind: MessageKind::Unicast(NodeId(3)),
                payload_flits: 8,
            },
        )]));
        sources[0] = Box::new(ScheduledSource::new(vec![(200, mcast.clone())]));
        sources[2] = Box::new(ScheduledSource::new(vec![(200, mcast)]));
        let mut sys = build_system(cfg, sources, None);

        // Run until nothing has moved for a long grace period.
        let mut last_moves = sys.engine.total_flit_moves();
        let mut last_progress = sys.engine.now();
        while sys.engine.now() < 30_000 {
            sys.engine.run_for(200);
            let moves = sys.engine.total_flit_moves();
            if moves != last_moves {
                last_moves = moves;
                last_progress = sys.engine.now();
            } else if sys.engine.now() - last_progress >= 3_000 {
                break;
            }
        }
        assert!(
            sys.tracker().borrow().outstanding() > 0,
            "the crossed multicasts must wedge"
        );

        let report = capture_deadlock_report(&mut sys, last_progress);
        assert!(report.outstanding_messages > 0);
        assert_eq!(report.last_progress_cycle, last_progress);
        assert!(report.at_cycle > report.last_progress_cycle);
        assert!(!report.switches.is_empty());
        let worms: Vec<_> = report
            .switches
            .iter()
            .flat_map(|d| &d.snapshot.blocked)
            .collect();
        assert!(
            worms
                .iter()
                .any(|w| w.state == "head-blocked" && w.remaining_dests == vec![2, 3]),
            "blocked multicasts keep their remaining destination set: {worms:?}"
        );
        assert!(
            !report.cycle.is_empty(),
            "crossed grants are a circular wait: {report:?}"
        );
        for (i, &from) in report.cycle.iter().enumerate() {
            let to = report.cycle[(i + 1) % report.cycle.len()];
            assert!(
                report
                    .wait_edges
                    .iter()
                    .any(|e| e.from_link == from && e.to_link == to),
                "cycle edge {from}->{to} missing from the graph"
            );
        }
        // JSON round-trips the essentials.
        let json = crate::report::deadlock_json(&report);
        assert!(json.contains("\"cycle\": ["));
        assert!(json.contains("head-blocked"));
        assert!(json.contains(&format!("\"last_progress_cycle\": {last_progress}")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(from: usize, to: usize) -> WaitEdge {
        WaitEdge {
            from_link: from,
            to_link: to,
            switch: 0,
        }
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        assert!(find_cycle(&[e(0, 1), e(1, 2), e(0, 2)]).is_empty());
    }

    #[test]
    fn simple_two_cycle_is_found() {
        assert_eq!(find_cycle(&[e(3, 7), e(7, 3)]), vec![3, 7]);
    }

    #[test]
    fn cycle_behind_a_tail_is_found() {
        // 0 -> 1 -> 2 -> 3 -> 1: the cycle excludes the entry tail.
        let cycle = find_cycle(&[e(0, 1), e(1, 2), e(2, 3), e(3, 1)]);
        assert_eq!(cycle, vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_across_edge_orderings() {
        let mut edges = vec![e(5, 9), e(9, 5), e(2, 3), e(3, 2)];
        let a = find_cycle(&edges);
        edges.reverse();
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        assert_eq!(a, find_cycle(&sorted));
        assert_eq!(a, vec![2, 3], "lowest-numbered root wins");
    }
}
