//! The line-delimited request protocol `mdw-routed` clients speak.
//!
//! One request per line, ASCII, whitespace-separated; one reply line per
//! request, starting `ok ` or `err `. The full grammar:
//!
//! ```text
//! link down <link-id>          # administratively fail a link
//! link up <link-id>            # restore it
//! join <group> <host>          # add a host to a multicast group
//! leave <group> <host>         # remove it
//! route <src> <host>...        # coverage plan for an explicit dest set
//! route <src> group <group>    # coverage plan for a group
//! reach <src>                  # worm-coverable hosts from src
//! health                       # rung, masked/suppressed counts, totals
//! metrics                      # p50/p99 latency + service counters
//! step <cycles>                # advance the fabric deterministically
//! quit                         # shut the service down cleanly
//! ```
//!
//! Parsing is total and allocation-light: every error names the offending
//! token so a misbehaving client can be debugged from its own transcript.

/// How a client names a link: by raw engine id, or as the `k`-th fabric
/// (switch-to-switch) link — `f3` in protocol text. Fabric addressing is
/// stable for a fixed config, so storm scripts can target links that
/// actually carry reroutable traffic without dumping the id space first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkRef {
    /// Raw engine link id.
    Raw(usize),
    /// Index into the fabric-link list.
    Fabric(usize),
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Administratively fail a link.
    LinkDown(LinkRef),
    /// Restore an administratively failed link.
    LinkUp(LinkRef),
    /// Add a host to a multicast group (created on first join).
    Join {
        /// Group identifier.
        group: u64,
        /// Host to add.
        host: usize,
    },
    /// Remove a host from a multicast group.
    Leave {
        /// Group identifier.
        group: u64,
        /// Host to remove.
        host: usize,
    },
    /// Coverage plan for an explicit destination set.
    Route {
        /// Source host.
        src: usize,
        /// Destination hosts.
        dests: Vec<usize>,
    },
    /// Coverage plan for a multicast group.
    RouteGroup {
        /// Source host.
        src: usize,
        /// Group identifier.
        group: u64,
    },
    /// Worm-coverable hosts from a source.
    Reach(usize),
    /// Health snapshot.
    Health,
    /// Service metrics.
    Metrics,
    /// Advance the fabric by this many cycles.
    Step(u64),
    /// Clean shutdown.
    Quit,
}

impl Request {
    /// `true` for read-only requests that may be shed under overload;
    /// `false` for fabric events that must apply backpressure instead.
    pub fn is_query(&self) -> bool {
        matches!(
            self,
            Request::Route { .. }
                | Request::RouteGroup { .. }
                | Request::Reach(_)
                | Request::Health
                | Request::Metrics
        )
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the bad token or arity.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut words = line.split_whitespace();
        let cmd = words.next().ok_or("empty request")?;
        let rest: Vec<&str> = words.collect();
        let num = |w: &str, what: &str| -> Result<usize, String> {
            w.parse::<usize>().map_err(|_| format!("bad {what} `{w}`"))
        };
        let num64 = |w: &str, what: &str| -> Result<u64, String> {
            w.parse::<u64>().map_err(|_| format!("bad {what} `{w}`"))
        };
        let link_ref = |w: &str| -> Result<LinkRef, String> {
            match w.strip_prefix('f') {
                Some(k) => Ok(LinkRef::Fabric(num(k, "fabric link index")?)),
                None => Ok(LinkRef::Raw(num(w, "link id")?)),
            }
        };
        match cmd {
            "link" => match rest.as_slice() {
                ["down", id] => Ok(Request::LinkDown(link_ref(id)?)),
                ["up", id] => Ok(Request::LinkUp(link_ref(id)?)),
                _ => Err("usage: link down|up <link-id | f<fabric-index>>".to_string()),
            },
            "join" | "leave" => match rest.as_slice() {
                [g, h] => {
                    let group = num64(g, "group")?;
                    let host = num(h, "host")?;
                    Ok(if cmd == "join" {
                        Request::Join { group, host }
                    } else {
                        Request::Leave { group, host }
                    })
                }
                _ => Err(format!("usage: {cmd} <group> <host>")),
            },
            "route" => match rest.as_slice() {
                [src, "group", g] => Ok(Request::RouteGroup {
                    src: num(src, "source host")?,
                    group: num64(g, "group")?,
                }),
                [src, dests @ ..] if !dests.is_empty() => Ok(Request::Route {
                    src: num(src, "source host")?,
                    dests: dests
                        .iter()
                        .map(|d| num(d, "destination host"))
                        .collect::<Result<_, _>>()?,
                }),
                _ => Err("usage: route <src> <host>... | route <src> group <g>".to_string()),
            },
            "reach" => match rest.as_slice() {
                [src] => Ok(Request::Reach(num(src, "source host")?)),
                _ => Err("usage: reach <src>".to_string()),
            },
            "health" if rest.is_empty() => Ok(Request::Health),
            "metrics" if rest.is_empty() => Ok(Request::Metrics),
            "step" => match rest.as_slice() {
                [n] => Ok(Request::Step(num64(n, "cycle count")?)),
                _ => Err("usage: step <cycles>".to_string()),
            },
            "quit" | "exit" if rest.is_empty() => Ok(Request::Quit),
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        assert_eq!(
            Request::parse("link down 12"),
            Ok(Request::LinkDown(LinkRef::Raw(12)))
        );
        assert_eq!(
            Request::parse("link up 12"),
            Ok(Request::LinkUp(LinkRef::Raw(12)))
        );
        assert_eq!(
            Request::parse("link down f3"),
            Ok(Request::LinkDown(LinkRef::Fabric(3)))
        );
        assert_eq!(
            Request::parse("link up f0"),
            Ok(Request::LinkUp(LinkRef::Fabric(0)))
        );
        assert_eq!(
            Request::parse("join 3 7"),
            Ok(Request::Join { group: 3, host: 7 })
        );
        assert_eq!(
            Request::parse("leave 3 7"),
            Ok(Request::Leave { group: 3, host: 7 })
        );
        assert_eq!(
            Request::parse("route 0 1 2 3"),
            Ok(Request::Route {
                src: 0,
                dests: vec![1, 2, 3]
            })
        );
        assert_eq!(
            Request::parse("route 0 group 9"),
            Ok(Request::RouteGroup { src: 0, group: 9 })
        );
        assert_eq!(Request::parse("reach 5"), Ok(Request::Reach(5)));
        assert_eq!(Request::parse("health"), Ok(Request::Health));
        assert_eq!(Request::parse("metrics"), Ok(Request::Metrics));
        assert_eq!(Request::parse("step 4096"), Ok(Request::Step(4096)));
        assert_eq!(Request::parse("quit"), Ok(Request::Quit));
        assert_eq!(Request::parse("  step   7  "), Ok(Request::Step(7)));
    }

    #[test]
    fn errors_name_the_offense() {
        assert!(Request::parse("").unwrap_err().contains("empty"));
        assert!(Request::parse("warp 9").unwrap_err().contains("warp"));
        assert!(Request::parse("link sideways 3")
            .unwrap_err()
            .contains("usage: link"));
        assert!(Request::parse("step fast").unwrap_err().contains("fast"));
        assert!(Request::parse("route 0").unwrap_err().contains("usage"));
        assert!(Request::parse("join 1").unwrap_err().contains("usage"));
    }

    #[test]
    fn query_classification_drives_shedding() {
        assert!(Request::Health.is_query());
        assert!(Request::Metrics.is_query());
        assert!(Request::Reach(0).is_query());
        assert!(Request::Route {
            src: 0,
            dests: vec![1]
        }
        .is_query());
        assert!(!Request::LinkDown(LinkRef::Raw(0)).is_query());
        assert!(!Request::Step(1).is_query());
        assert!(!Request::Quit.is_query());
        assert!(!Request::Join { group: 0, host: 0 }.is_query());
    }
}
