//! `mdw-routed` — a resident fault-tolerant fabric-control service
//! (DESIGN.md §12).
//!
//! The offline pipeline (PR 4's [`FaultResponder`](crate::respond) +
//! PR 5's memoized model-check vet) handles one outage at a time under a
//! test harness's control. This module packages it as a *service* that
//! owns a live [`System`](crate::build::System) and survives fault
//! storms:
//!
//! * [`proto`] — the line-delimited request protocol clients speak
//!   (link up/down, multicast join/leave, route/reach/health/metrics
//!   queries, deterministic `step`);
//! * [`queue`] — bounded request queues with the explicit
//!   backpressure/shed split: fabric *events* block the producer (they
//!   must never be lost), *queries* are shed with a counted error when
//!   the service falls behind;
//! * [`damp`] — per-link flap damping layered over the responder's
//!   debounce: each confirmed transition charges a penalty that decays
//!   exponentially; links over the suppress threshold are masked until
//!   they cool below the reuse threshold, so one flapping cable cannot
//!   force a reroute per flap;
//! * [`backoff`] — capped exponential retry backoff with deterministic
//!   jitter for responses the vet rejected or the purge timed out on;
//! * [`ladder`] — the degradation ladder (full mcast → masked mcast →
//!   U-Min unicast → read-only) with hysteresis on heal: descent is
//!   immediate, each climb waits out a calm window;
//! * [`storm`] — the storm controller gluing damper, backoff, ladder,
//!   and the detect→vet→install watchdog around the responder;
//! * [`metrics`] — first-class service metrics: p50/p99 detect→install
//!   latency (cycles), p50/p99 vet wall time (ns), shed/served counts;
//! * [`service`] — the resident loop: owns the `System` (which is
//!   `!Send` — `Rc` everywhere — so the service thread is the only one
//!   that touches it) and consumes request envelopes from reader
//!   threads over an `mpsc::sync_channel`.

pub mod backoff;
pub mod damp;
pub mod ladder;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod service;
pub mod storm;

pub use backoff::Backoff;
pub use damp::FlapDamper;
pub use ladder::Ladder;
pub use metrics::ServiceMetrics;
pub use proto::{LinkRef, Request};
pub use queue::{Envelope, ShedCounter};
pub use service::RoutedService;
pub use storm::{StormCounters, StormResponder};

use netsim::Cycle;

/// Tuning knobs of the resident control service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedConfig {
    /// Capacity of the bounded request queue between reader threads and
    /// the service loop. Fabric events block when it fills (backpressure);
    /// queries are shed with an error.
    pub queue_cap: usize,
    /// Engine cycles advanced per service-loop slice (also the storm
    /// controller's tick cadence).
    pub slice: Cycle,
    /// Flap penalty charged per debounce-confirmed link transition.
    pub flap_penalty: u64,
    /// Penalty at or above which a link is suppressed (treated as dead).
    pub flap_suppress: u64,
    /// Penalty at or below which a suppressed link is reinstated.
    pub flap_reuse: u64,
    /// Half-life of the flap penalty decay, in cycles.
    pub flap_half_life: Cycle,
    /// Base delay of the reroute retry backoff, in cycles.
    pub retry_base: Cycle,
    /// Cap on a single backoff delay, in cycles.
    pub retry_cap: Cycle,
    /// Retry attempts before the ladder drops the fabric to read-only.
    pub retry_max: u32,
    /// Calm cycles required before the ladder climbs one rung on heal.
    pub heal_hysteresis: Cycle,
    /// Watchdog deadline on a detect→vet→install episode, in cycles; an
    /// episode running past it force-degrades the fabric to U-Min.
    pub deadline: Cycle,
}

impl Default for RoutedConfig {
    fn default() -> Self {
        RoutedConfig {
            queue_cap: 64,
            slice: 32,
            flap_penalty: 1_000,
            flap_suppress: 2_500,
            flap_reuse: 800,
            flap_half_life: 2_048,
            retry_base: 64,
            retry_cap: 4_096,
            retry_max: 5,
            heal_hysteresis: 2_048,
            deadline: 4_096,
        }
    }
}
