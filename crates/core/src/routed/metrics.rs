//! First-class service metrics: detect→vet→install latency percentiles
//! plus the storm/queue counters, rendered in a stable `key=value` line
//! format that both the `metrics` protocol query and the E18 bench
//! tables consume.

use collectives::Rung;
use mdw_analysis::{Samples, VetStats};

/// One snapshot of the service's headline metrics.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Completed detect→install episodes.
    pub episodes: usize,
    /// p50 detect→install latency, cycles.
    pub detect_install_p50: u64,
    /// p99 detect→install latency, cycles.
    pub detect_install_p99: u64,
    /// Worst detect→install latency, cycles.
    pub detect_install_max: u64,
    /// Structural + behavioral vet invocations timed.
    pub vet_calls: usize,
    /// p50 wall time of a structural vet, nanoseconds.
    pub vet_p50_ns: u64,
    /// p99 wall time of a structural vet, nanoseconds.
    pub vet_p99_ns: u64,
    /// Queries answered.
    pub queries_served: u64,
    /// Queries shed at the queue boundary.
    pub queries_shed: u64,
    /// Fabric events consumed.
    pub events_in: u64,
    /// Retries scheduled after rejected/incomplete responses.
    pub retries: u64,
    /// Watchdog deadline breaches (each force-degrades).
    pub watchdog_trips: u64,
    /// Degradation-ladder rung changes, both directions.
    pub ladder_transitions: u64,
    /// The rung at snapshot time.
    pub rung: Rung,
    /// Responder event-log entries evicted by the ring.
    pub events_dropped: u64,
}

impl ServiceMetrics {
    /// Builds the latency-derived fields from the raw series; the caller
    /// fills the counter fields.
    pub fn from_series(detect_install: &Samples, vet: &VetStats) -> Self {
        ServiceMetrics {
            episodes: detect_install.count(),
            detect_install_p50: detect_install.percentile(50.0),
            detect_install_p99: detect_install.percentile(99.0),
            detect_install_max: detect_install.max(),
            vet_calls: vet.structural_ns.count() + vet.model_ns.count(),
            vet_p50_ns: vet.structural_ns.percentile(50.0),
            vet_p99_ns: vet.structural_ns.percentile(99.0),
            queries_served: 0,
            queries_shed: 0,
            events_in: 0,
            retries: 0,
            watchdog_trips: 0,
            ladder_transitions: 0,
            rung: Rung::FullMcast,
            events_dropped: 0,
        }
    }

    /// The stable one-line `key=value` rendering.
    pub fn render(&self) -> String {
        format!(
            "episodes={} p50={} p99={} max={} vet_calls={} vet_p50_ns={} \
             vet_p99_ns={} queries={} shed={} events={} retries={} \
             watchdog={} ladder={} rung={} events_dropped={}",
            self.episodes,
            self.detect_install_p50,
            self.detect_install_p99,
            self.detect_install_max,
            self.vet_calls,
            self.vet_p50_ns,
            self.vet_p99_ns,
            self.queries_served,
            self.queries_shed,
            self.events_in,
            self.retries,
            self.watchdog_trips,
            self.ladder_transitions,
            self.rung,
            self.events_dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rendering() {
        let mut s = Samples::new();
        for v in [100, 200, 300, 400] {
            s.record(v);
        }
        let m = ServiceMetrics::from_series(&s, &VetStats::new());
        assert_eq!(m.episodes, 4);
        assert_eq!(m.detect_install_p50, 200);
        assert_eq!(m.detect_install_p99, 400);
        assert_eq!(m.detect_install_max, 400);
        let line = m.render();
        assert!(line.contains("p50=200"), "{line}");
        assert!(line.contains("p99=400"), "{line}");
        assert!(line.contains("rung=full-mcast"), "{line}");
    }
}
