//! The resident service loop.
//!
//! [`RoutedService`] owns a [`System`] — which is `!Send` (`Rc`-linked
//! cores), so exactly one thread ever touches it — plus the storm
//! controller and the multicast group table. Reader threads (stdin, TCP
//! clients, the script driver) parse lines into
//! [`Envelope`](super::queue::Envelope)s and submit them through the
//! bounded queue ([`super::queue::submit`]); the service loop drains
//! envelopes, answers queries from the live fabric state, applies fabric
//! events, and advances the engine one slice at a time while idle.

use super::metrics::ServiceMetrics;
use super::proto::{LinkRef, Request};
use super::queue::{Envelope, ShedCounter};
use super::storm::StormResponder;
use super::RoutedConfig;
use crate::build::{build_system, System};
use crate::config::SystemConfig;
use crate::workload::{make_sources, TrafficSpec};
use collectives::{DegradePlanner, Rung};
use mintopo::route::McastPlan;
use netsim::destset::DestSet;
use netsim::ids::{LinkId, NodeId};
use netsim::Cycle;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::Duration;

/// The resident control service.
pub struct RoutedService {
    sys: System,
    storm: StormResponder,
    routed: RoutedConfig,
    groups: BTreeMap<u64, DestSet>,
    shed: ShedCounter,
    queries_served: u64,
    events_in: u64,
}

impl std::fmt::Debug for RoutedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedService")
            .field("routed", &self.routed)
            .field("groups", &self.groups.len())
            .field("queries_served", &self.queries_served)
            .field("events_in", &self.events_in)
            .finish_non_exhaustive()
    }
}

impl RoutedService {
    /// Builds the service around a fresh idle fabric (hosts attached but
    /// generating no traffic — all payload movement is driven by fabric
    /// events and the U-Min/recovery machinery). `response` and `routed`
    /// blocks default when absent.
    ///
    /// # Errors
    ///
    /// The first static-analysis error of the configuration, verbatim —
    /// the service refuses to come up on a fabric the analyzer rejects.
    pub fn new(mut cfg: SystemConfig) -> Result<RoutedService, String> {
        let routed = cfg.routed.clone().unwrap_or_default();
        let response = cfg.response.clone().unwrap_or_default();
        cfg.response = Some(response.clone());
        cfg.routed = Some(routed.clone());
        if let Some(d) = cfg.report().first_error() {
            return Err(format!("config rejected: {}", d.message));
        }
        let n = cfg.n_hosts();
        let sources = make_sources(&TrafficSpec::unicast(0.0, 16), n, cfg.seed, Some(0));
        let mut sys = build_system(cfg, sources, None);
        let storm = StormResponder::new(routed.clone(), response, &mut sys);
        Ok(RoutedService {
            sys,
            storm,
            routed,
            groups: BTreeMap::new(),
            shed: ShedCounter::new(),
            queries_served: 0,
            events_in: 0,
        })
    }

    /// The configured request-queue bound (for sizing the sync channel).
    pub fn queue_cap(&self) -> usize {
        self.routed.queue_cap
    }

    /// The shed counter reader threads must bump (clone it into each).
    pub fn shed_counter(&self) -> ShedCounter {
        self.shed.clone()
    }

    /// The owned system (tests poke the engine directly).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// The storm controller (rung, counters, responder).
    pub fn storm(&self) -> &StormResponder {
        &self.storm
    }

    /// Advances the fabric by `cycles`, ticking storm control at the
    /// slice cadence. Cycles consumed by response protocols (quiesce,
    /// purge) count toward the budget, so a `step` during a storm
    /// returns close to, not far past, the requested cycle.
    pub fn advance(&mut self, cycles: Cycle) {
        let end = self.sys.engine.now() + cycles;
        while self.sys.engine.now() < end {
            let step = self.routed.slice.min(end - self.sys.engine.now());
            self.sys.engine.run_for(step);
            self.storm.tick(&mut self.sys);
        }
    }

    fn fmt_set(set: &DestSet) -> String {
        let ids: Vec<String> = set.iter().map(|n| n.index().to_string()).collect();
        if ids.is_empty() {
            "-".to_string()
        } else {
            ids.join(",")
        }
    }

    fn check_host(&self, h: usize, what: &str) -> Result<NodeId, String> {
        if h < self.sys.n_hosts() {
            Ok(NodeId::from(h))
        } else {
            Err(format!(
                "err {what} {h} out of range (fabric has {} hosts)",
                self.sys.n_hosts()
            ))
        }
    }

    /// Coverage plan for `dests` from `src` under the current rung and
    /// tables. Queries never touch the traffic counters.
    fn plan(&self, src: NodeId, dests: &DestSet) -> McastPlan {
        if self.storm.rung() >= Rung::UMinOnly {
            return McastPlan {
                worm: DestSet::empty(dests.universe()),
                peeled: dests.clone(),
            };
        }
        DegradePlanner {
            tables: self.sys.tables.clone(),
            topo: self.sys.topology.clone(),
            policy: self.sys.config.switch.policy,
            max_hops: self.sys.config.response.as_ref().map_or(64, |r| r.max_hops),
        }
        .split(src, dests)
    }

    /// Applies one request and returns its one-line reply. Never panics
    /// on client input; every failure is an `err ...` line.
    pub fn handle(&mut self, req: &Request) -> String {
        match req {
            Request::LinkDown(link) | Request::LinkUp(link) => {
                let down = matches!(req, Request::LinkDown(_));
                let (id, label) = match *link {
                    LinkRef::Raw(id) => {
                        if id >= self.sys.engine.n_links() {
                            return format!(
                                "err link {id} out of range (fabric has {} links)",
                                self.sys.engine.n_links()
                            );
                        }
                        (LinkId::from(id), format!("{id}"))
                    }
                    LinkRef::Fabric(k) => {
                        let fabric = &self.sys.links.fabric;
                        let Some(&id) = fabric.get(k) else {
                            return format!(
                                "err fabric link f{k} out of range ({} fabric links)",
                                fabric.len()
                            );
                        };
                        (id, format!("f{k}"))
                    }
                };
                self.events_in += 1;
                self.sys.engine.set_link_forced_down(id, down);
                format!("ok link {label} {}", if down { "down" } else { "up" })
            }
            Request::Join { group, host } | Request::Leave { group, host } => {
                let node = match self.check_host(*host, "host") {
                    Ok(n) => n,
                    Err(e) => return e,
                };
                self.events_in += 1;
                let n = self.sys.n_hosts();
                let set = self
                    .groups
                    .entry(*group)
                    .or_insert_with(|| DestSet::empty(n));
                if matches!(req, Request::Join { .. }) {
                    set.insert(node);
                } else {
                    set.remove(node);
                }
                let size = set.count();
                if size == 0 {
                    self.groups.remove(group);
                }
                format!("ok group {group} size {size}")
            }
            Request::Route { src, dests } => {
                let src = match self.check_host(*src, "source") {
                    Ok(n) => n,
                    Err(e) => return e,
                };
                let mut set = DestSet::empty(self.sys.n_hosts());
                for d in dests {
                    match self.check_host(*d, "destination") {
                        Ok(n) => {
                            set.insert(n);
                        }
                        Err(e) => return e,
                    }
                }
                self.queries_served += 1;
                let plan = self.plan(src, &set);
                format!(
                    "ok worm={} peeled={} rung={}",
                    Self::fmt_set(&plan.worm),
                    Self::fmt_set(&plan.peeled),
                    self.storm.rung()
                )
            }
            Request::RouteGroup { src, group } => {
                let src = match self.check_host(*src, "source") {
                    Ok(n) => n,
                    Err(e) => return e,
                };
                let Some(set) = self.groups.get(group).cloned() else {
                    return format!("err unknown group {group}");
                };
                self.queries_served += 1;
                let plan = self.plan(src, &set);
                format!(
                    "ok worm={} peeled={} rung={}",
                    Self::fmt_set(&plan.worm),
                    Self::fmt_set(&plan.peeled),
                    self.storm.rung()
                )
            }
            Request::Reach(src) => {
                let node = match self.check_host(*src, "source") {
                    Ok(n) => n,
                    Err(e) => return e,
                };
                self.queries_served += 1;
                let n = self.sys.n_hosts();
                let mut all = DestSet::full(n);
                all.remove(node);
                let plan = self.plan(node, &all);
                format!(
                    "ok coverable={}/{} rung={}",
                    plan.worm.count(),
                    n - 1,
                    self.storm.rung()
                )
            }
            Request::Health => {
                self.queries_served += 1;
                let resp = self.storm.responder();
                let c = resp.counters();
                format!(
                    "ok rung={} masked={} suppressed={} gated={} now={} \
                     links_down={} links_up={} reroutes={} rejected={} heals={} \
                     stale={} purges={} purges_incomplete={} events_dropped={}",
                    self.storm.rung(),
                    resp.masked_ports().len(),
                    resp.suppressed().len(),
                    u8::from(self.sys.fabric_mode.gated()),
                    self.sys.engine.now(),
                    c.links_down,
                    c.links_up,
                    c.reroutes,
                    c.reroutes_rejected,
                    c.heals,
                    c.stale_detects,
                    c.purges,
                    c.purges_incomplete,
                    resp.events().dropped(),
                )
            }
            Request::Metrics => {
                self.queries_served += 1;
                format!("ok {}", self.metrics().render())
            }
            Request::Step(n) => {
                self.events_in += 1;
                self.advance(*n);
                format!("ok now={}", self.sys.engine.now())
            }
            Request::Quit => "ok bye".to_string(),
        }
    }

    /// The current metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        let resp = self.storm.responder();
        let sc = self.storm.counters();
        let mut m = ServiceMetrics::from_series(resp.latency(), resp.vet_stats());
        m.queries_served = self.queries_served;
        m.queries_shed = self.shed.get();
        m.events_in = self.events_in;
        m.retries = sc.retries;
        m.watchdog_trips = sc.watchdog_trips;
        m.ladder_transitions = self.storm.ladder_transitions();
        m.rung = self.storm.rung();
        m.events_dropped = resp.events().dropped();
        m
    }

    /// The service loop: drains envelopes until `Quit` arrives or every
    /// sender hangs up. With `idle_advance` set, the fabric advances one
    /// slice per ~millisecond of queue silence (the resident mode);
    /// without it, time only moves on explicit `step` requests (the
    /// deterministic script mode).
    pub fn run(&mut self, rx: &Receiver<Envelope>, idle_advance: bool) {
        loop {
            let env = if idle_advance {
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(env) => Some(env),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match rx.recv() {
                    Ok(env) => Some(env),
                    Err(_) => break,
                }
            };
            match env {
                Some(env) => {
                    let quit = matches!(env.req, Request::Quit);
                    let reply = self.handle(&env.req);
                    let _ = env.reply.send(reply);
                    if quit {
                        break;
                    }
                }
                None => self.advance(self.routed.slice),
            }
        }
    }
}
