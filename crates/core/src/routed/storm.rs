//! The storm controller: flap damping, retry backoff, the degradation
//! ladder, and the detect→install watchdog wrapped around the
//! [`FaultResponder`].
//!
//! Per tick (every `routed.slice` cycles):
//!
//! 1. **observe** — drain link events into the debounced health view;
//! 2. **damp** — charge each newly confirmed transition to the flap
//!    damper, decay penalties, and push the resulting suppressed set
//!    into the responder (suppressed links mask exactly like dead ones);
//! 3. **retry** — if a rejected/incomplete response's backoff expired,
//!    arm the responder's one-shot retry;
//! 4. **respond** — let the responder run the gate→purge→vet→install
//!    protocol if the dead set changed (or a retry is armed). A success
//!    resets the backoff; a rejection or incomplete purge schedules the
//!    next retry, and an exhausted retry budget forces the fabric to
//!    read-only;
//! 5. **watchdog** — an episode whose detect→install latency ran past
//!    `routed.deadline` force-degrades to U-Min-only: slow recovery is
//!    treated as no recovery, and unicast keeps flowing while humans (or
//!    more retries) catch up;
//! 6. **ladder** — compute the rung current conditions demand, let the
//!    hysteresis ladder integrate it, and project the rung onto the
//!    shared [`FabricMode`] cell.
//!
//! All timing is cycle-domain and all jitter comes from a forked
//! [`SimRng`](netsim::rng::SimRng) stream, so an identical storm replays
//! to an identical recovery timeline — the E18 determinism test holds
//! the whole controller to that.

use super::backoff::Backoff;
use super::damp::FlapDamper;
use super::ladder::Ladder;
use super::RoutedConfig;
use crate::build::System;
use crate::respond::{FaultResponder, ResponseConfig, ResponseCounters};
use collectives::Rung;
use netsim::rng::SimRng;
use netsim::Cycle;

/// Storm-control activity counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StormCounters {
    /// Retries armed after a rejection or incomplete purge.
    pub retries: u64,
    /// Watchdog deadline breaches.
    pub watchdog_trips: u64,
    /// Retry budgets exhausted (each parks the fabric read-only).
    pub exhausted: u64,
    /// Links suppressed by the flap damper.
    pub suppressions: u64,
    /// Suppressed links reinstated after cooling.
    pub reinstatements: u64,
}

/// The controller. Owns the responder; the service (or the E18 driver)
/// owns the `System` and calls [`tick`](StormResponder::tick) at the
/// slice cadence.
#[derive(Debug)]
pub struct StormResponder {
    cfg: RoutedConfig,
    resp: FaultResponder,
    damp: FlapDamper,
    ladder: Ladder,
    backoff: Backoff,
    retry_at: Option<Cycle>,
    exhausted: bool,
    seen: ResponseCounters,
    counters: StormCounters,
    /// Cycles spent on each rung, indexed FullMcast..ReadOnly.
    rung_cycles: [u64; 4],
    last_tick: Cycle,
}

fn rung_index(r: Rung) -> usize {
    match r {
        Rung::FullMcast => 0,
        Rung::MaskedMcast => 1,
        Rung::UMinOnly => 2,
        Rung::ReadOnly => 3,
    }
}

impl StormResponder {
    /// Attaches responder + storm control to `sys`. The jitter stream is
    /// forked off the system seed so retry timelines replay.
    pub fn new(cfg: RoutedConfig, response: ResponseConfig, sys: &mut System) -> Self {
        let rng = SimRng::new(sys.config.seed ^ 0x5702_11ED).fork(7);
        let resp = FaultResponder::new(response, sys);
        let damp = FlapDamper::new(
            cfg.flap_penalty,
            cfg.flap_suppress,
            cfg.flap_reuse,
            cfg.flap_half_life,
        );
        let backoff = Backoff::new(cfg.retry_base, cfg.retry_cap, cfg.retry_max, rng);
        let last_tick = sys.engine.now();
        StormResponder {
            cfg,
            resp,
            damp,
            ladder: Ladder::new(),
            backoff,
            retry_at: None,
            exhausted: false,
            seen: ResponseCounters::default(),
            counters: StormCounters::default(),
            rung_cycles: [0; 4],
            last_tick,
        }
    }

    /// One storm-control tick. Returns `true` if a response protocol ran.
    pub fn tick(&mut self, sys: &mut System) -> bool {
        // Rung occupancy is charged to the rung held *since* the last
        // tick, before any transition this tick makes.
        let now = sys.engine.now();
        self.rung_cycles[rung_index(self.ladder.rung())] += now.saturating_sub(self.last_tick);
        self.last_tick = now;

        // 1+2: observe, then damp on confirmed transitions.
        self.resp.observe_health(sys);
        for t in self.resp.drain_confirmed() {
            self.damp.record(t.link, t.at);
        }
        self.damp.advance(now);
        self.counters.suppressions = self.damp.suppressions();
        self.counters.reinstatements = self.damp.reinstatements();
        self.resp.set_suppressed(self.damp.suppressed());

        // 3: armed retry whose backoff expired.
        if let Some(at) = self.retry_at {
            if now >= at {
                self.retry_at = None;
                self.resp.request_retry();
            }
        }

        // 4: the response protocol proper.
        let ran = self.resp.maybe_respond(sys);
        if ran {
            let c = self.resp.counters();
            let failed = c.reroutes_rejected > self.seen.reroutes_rejected
                || c.purges_incomplete > self.seen.purges_incomplete;
            let succeeded = c.reroutes > self.seen.reroutes || c.heals > self.seen.heals;
            self.seen = c;
            if failed {
                match self.backoff.next_delay() {
                    Some(d) => {
                        self.counters.retries += 1;
                        self.retry_at = Some(sys.engine.now() + d);
                    }
                    None if !self.exhausted => {
                        self.counters.exhausted += 1;
                        self.exhausted = true;
                        self.ladder.force_down(Rung::ReadOnly);
                    }
                    None => {}
                }
            } else if succeeded {
                self.backoff.reset();
                self.retry_at = None;
                self.exhausted = false;
            }

            // 5: watchdog on the episode that just completed.
            if let Some(&latency) = self.resp.latency().values().last() {
                if latency > self.cfg.deadline {
                    self.counters.watchdog_trips += 1;
                    self.ladder.force_down(Rung::UMinOnly);
                }
            }
        }

        // 6: ladder integration. Conditions demand: read-only while the
        // retry budget is exhausted, U-Min while a retry is pending
        // (coverage is stale — the vet refused the masked tables), the
        // responder's masked rung while cuts are masked, full otherwise.
        let demanded = if self.exhausted {
            Rung::ReadOnly
        } else if self.retry_at.is_some() {
            Rung::UMinOnly
        } else if !self.resp.masked_ports().is_empty() {
            Rung::MaskedMcast
        } else {
            Rung::FullMcast
        };
        self.ladder
            .observe(sys.engine.now(), demanded, self.cfg.heal_hysteresis);
        self.ladder.apply(&sys.fabric_mode);
        ran
    }

    /// The wrapped responder (health, events, latency series, vet stats).
    pub fn responder(&self) -> &FaultResponder {
        &self.resp
    }

    /// The degradation ladder's current rung.
    pub fn rung(&self) -> Rung {
        self.ladder.rung()
    }

    /// Ladder rung changes so far.
    pub fn ladder_transitions(&self) -> u64 {
        self.ladder.transitions()
    }

    /// Storm-control counters.
    pub fn counters(&self) -> StormCounters {
        self.counters
    }

    /// Cycles spent on each rung `[FullMcast, MaskedMcast, UMinOnly,
    /// ReadOnly]`, as charged at tick boundaries.
    pub fn rung_cycles(&self) -> [u64; 4] {
        self.rung_cycles
    }

    /// Links currently suppressed by the damper.
    pub fn suppressed(&self) -> Vec<netsim::ids::LinkId> {
        self.damp.suppressed()
    }
}
