//! Capped exponential retry backoff with deterministic jitter.
//!
//! When the vet rejects a candidate or the purge times out, hammering
//! the response pipeline every poll would gate the fabric continuously —
//! the retry schedule spaces attempts out exponentially. Jitter comes
//! from a forked [`SimRng`] stream, not wall clock, so a replayed storm
//! produces the identical retry timeline.

use netsim::rng::SimRng;
use netsim::Cycle;

/// Exponential backoff state for one retry context.
#[derive(Debug)]
pub struct Backoff {
    base: Cycle,
    cap: Cycle,
    max_attempts: u32,
    attempt: u32,
    rng: SimRng,
}

impl Backoff {
    /// Creates a backoff ladder: delays `base·2^n + jitter`, each capped
    /// at `cap`, for at most `max_attempts` attempts.
    pub fn new(base: Cycle, cap: Cycle, max_attempts: u32, rng: SimRng) -> Self {
        Backoff {
            base: base.max(1),
            cap: cap.max(1),
            max_attempts,
            attempt: 0,
            rng,
        }
    }

    /// The next delay, or `None` once the attempt budget is exhausted
    /// (the caller escalates — in `mdw-routed`, down the degradation
    /// ladder). Jitter is uniform in `[0, delay/4]`, keeping retries
    /// from different contexts de-phased while bounded.
    pub fn next_delay(&mut self) -> Option<Cycle> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        let exp = self
            .base
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(self.cap);
        self.attempt += 1;
        let jitter = self.rng.below(exp as usize / 4 + 1) as Cycle;
        Some((exp + jitter).min(self.cap))
    }

    /// Attempts consumed since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the ladder after a successful response.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_cap_and_exhaust() {
        let mut b = Backoff::new(64, 1_024, 5, SimRng::new(1));
        let mut prev = 0;
        let mut delays = Vec::new();
        for _ in 0..5 {
            let d = b.next_delay().expect("within budget");
            assert!(d <= 1_024, "delay {d} over cap");
            delays.push(d);
            prev = prev.max(d);
        }
        assert!(b.next_delay().is_none(), "6th attempt must exhaust");
        // The nominal (pre-jitter) schedule doubles: 64,128,256,512,1024.
        assert!(delays[0] >= 64 && delays[0] <= 80);
        assert!(delays[4] == 1_024, "cap binds the 5th delay");
        b.reset();
        assert!(b.next_delay().is_some(), "reset reopens the budget");
        assert_eq!(b.attempts(), 1);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(100, 10_000, 8, SimRng::new(42));
        let mut b = Backoff::new(100, 10_000, 8, SimRng::new(42));
        for _ in 0..8 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }
}
