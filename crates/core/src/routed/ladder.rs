//! The degradation ladder with hysteresis on heal.
//!
//! Rungs come from [`collectives::Rung`]: `FullMcast < MaskedMcast <
//! UMinOnly < ReadOnly`. Descent is immediate — the moment conditions
//! demand a more degraded rung the fabric steps down (availability over
//! performance). Ascent is damped: the ladder climbs **one rung per
//! calm window** (`heal_hysteresis` cycles during which conditions never
//! demanded the current rung or worse), so a storm that relapses
//! mid-heal does not see the fabric thrash between service levels.

use collectives::{FabricMode, Rung};
use netsim::Cycle;

/// Ladder state: current rung plus the calm timer driving ascent.
#[derive(Debug)]
pub struct Ladder {
    rung: Rung,
    calm_since: Option<Cycle>,
    transitions: u64,
}

impl Default for Ladder {
    fn default() -> Self {
        Ladder::new()
    }
}

fn one_rung_up(r: Rung) -> Rung {
    match r {
        Rung::ReadOnly => Rung::UMinOnly,
        Rung::UMinOnly => Rung::MaskedMcast,
        Rung::MaskedMcast | Rung::FullMcast => Rung::FullMcast,
    }
}

impl Ladder {
    /// Starts at [`Rung::FullMcast`].
    pub fn new() -> Self {
        Ladder {
            rung: Rung::FullMcast,
            calm_since: None,
            transitions: 0,
        }
    }

    /// The rung the fabric currently sits on.
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// Total rung changes, both directions.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Forces the ladder down to at least `r` (watchdog trips, retry
    /// exhaustion). Never climbs; resets the calm timer either way.
    pub fn force_down(&mut self, r: Rung) {
        if r > self.rung {
            self.rung = r;
            self.transitions += 1;
        }
        self.calm_since = None;
    }

    /// One controller tick at `now`: `demanded` is the rung current
    /// conditions call for. Demands at or above the current rung apply
    /// immediately; demands below start (or continue) the calm timer,
    /// and each full `hysteresis` window climbs exactly one rung.
    /// Returns the rung after the observation.
    pub fn observe(&mut self, now: Cycle, demanded: Rung, hysteresis: Cycle) -> Rung {
        if demanded >= self.rung {
            if demanded > self.rung {
                self.rung = demanded;
                self.transitions += 1;
            }
            self.calm_since = None;
        } else {
            let since = *self.calm_since.get_or_insert(now);
            if now.saturating_sub(since) >= hysteresis {
                self.rung = one_rung_up(self.rung).max(demanded);
                self.transitions += 1;
                self.calm_since = Some(now);
            }
        }
        self.rung
    }

    /// Projects the rung onto a [`FabricMode`] cell: `UMinOnly` and
    /// above force whole-set peeling, `ReadOnly` holds the injection
    /// gate. (`MaskedMcast` is expressed by the responder's degrade
    /// planner, which the ladder never touches.)
    pub fn apply(&self, mode: &FabricMode) {
        mode.set_umin_only(self.rung >= Rung::UMinOnly);
        mode.set_lockdown(self.rung == Rung::ReadOnly);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descent_is_immediate_ascent_is_damped() {
        let mut l = Ladder::new();
        assert_eq!(l.observe(0, Rung::UMinOnly, 100), Rung::UMinOnly);

        // Calm at cycle 10; hysteresis 100 → no climb until 110.
        assert_eq!(l.observe(10, Rung::FullMcast, 100), Rung::UMinOnly);
        assert_eq!(l.observe(109, Rung::FullMcast, 100), Rung::UMinOnly);
        assert_eq!(l.observe(110, Rung::FullMcast, 100), Rung::MaskedMcast);
        // One rung per window: FullMcast needs another 100 calm cycles.
        assert_eq!(l.observe(111, Rung::FullMcast, 100), Rung::MaskedMcast);
        assert_eq!(l.observe(210, Rung::FullMcast, 100), Rung::FullMcast);
        assert_eq!(l.transitions(), 3);
    }

    #[test]
    fn relapse_resets_the_calm_timer() {
        let mut l = Ladder::new();
        l.observe(0, Rung::UMinOnly, 100);
        l.observe(90, Rung::FullMcast, 100);
        // Storm relapses at 95 — the 90 cycles of calm are forfeit.
        l.observe(95, Rung::UMinOnly, 100);
        assert_eq!(l.observe(180, Rung::FullMcast, 100), Rung::UMinOnly);
        assert_eq!(l.observe(280, Rung::FullMcast, 100), Rung::MaskedMcast);
    }

    #[test]
    fn force_down_never_climbs() {
        let mut l = Ladder::new();
        l.force_down(Rung::ReadOnly);
        assert_eq!(l.rung(), Rung::ReadOnly);
        l.force_down(Rung::MaskedMcast);
        assert_eq!(l.rung(), Rung::ReadOnly, "force_down must not ascend");
        // Climb out only through calm observation.
        l.observe(0, Rung::FullMcast, 50);
        assert_eq!(l.observe(50, Rung::FullMcast, 50), Rung::UMinOnly);
    }

    #[test]
    fn ascent_stops_at_the_demanded_rung() {
        let mut l = Ladder::new();
        l.observe(0, Rung::ReadOnly, 10);
        // Conditions still demand UMinOnly: the climb must not pass it.
        l.observe(5, Rung::UMinOnly, 10);
        assert_eq!(l.observe(20, Rung::UMinOnly, 10), Rung::UMinOnly);
        assert_eq!(l.observe(100, Rung::UMinOnly, 10), Rung::UMinOnly);
    }

    #[test]
    fn equal_demand_resets_the_calm_timer_without_a_transition() {
        let mut l = Ladder::new();
        l.observe(0, Rung::UMinOnly, 100);
        l.observe(10, Rung::FullMcast, 100);
        // Conditions demand exactly the current rung: no rung change, but
        // the fabric is *not* calm — the accrued window is forfeit.
        l.observe(50, Rung::UMinOnly, 100);
        assert_eq!(l.transitions(), 1, "equal demand must not transition");
        assert_eq!(l.observe(149, Rung::FullMcast, 100), Rung::UMinOnly);
        assert_eq!(l.observe(249, Rung::FullMcast, 100), Rung::MaskedMcast);
    }

    #[test]
    fn zero_hysteresis_still_climbs_one_rung_per_observation() {
        // The degenerate config heals as fast as the controller ticks,
        // but never jumps rungs: each observation is one step.
        let mut l = Ladder::new();
        l.observe(0, Rung::ReadOnly, 0);
        assert_eq!(l.observe(0, Rung::FullMcast, 0), Rung::UMinOnly);
        assert_eq!(l.observe(0, Rung::FullMcast, 0), Rung::MaskedMcast);
        assert_eq!(l.observe(0, Rung::FullMcast, 0), Rung::FullMcast);
    }

    #[test]
    fn force_down_at_or_below_the_current_rung_still_forfeits_calm() {
        let mut l = Ladder::new();
        l.observe(0, Rung::UMinOnly, 100);
        l.observe(50, Rung::FullMcast, 100);
        // A watchdog trip demanding a rung we already sit on (or better)
        // changes nothing — except that the calm window restarts.
        l.force_down(Rung::FullMcast);
        assert_eq!(l.rung(), Rung::UMinOnly);
        assert_eq!(l.observe(149, Rung::FullMcast, 100), Rung::UMinOnly);
        assert_eq!(l.observe(249, Rung::FullMcast, 100), Rung::MaskedMcast);
        assert_eq!(l.transitions(), 2);
    }

    #[test]
    fn apply_projects_onto_the_mode_cell() {
        let mode = FabricMode::new();
        let mut l = Ladder::new();
        l.force_down(Rung::UMinOnly);
        l.apply(&mode);
        assert_eq!(mode.rung(), Rung::UMinOnly);
        assert!(!mode.gated());
        l.force_down(Rung::ReadOnly);
        l.apply(&mode);
        assert!(mode.gated());
        assert_eq!(mode.rung(), Rung::ReadOnly);
    }
}
