//! BGP-style flap damping layered over the responder's debounce.
//!
//! The debounce window absorbs *sub-window* blips; a link that flaps
//! slower than the window — down for a few hundred cycles, up for a few
//! hundred, forever — passes the debounce every time and would drive a
//! full gate/purge/vet/install response per flap. The damper charges a
//! penalty for every *confirmed* transition and decays it exponentially;
//! once a link's penalty crosses the suppress threshold it is parked in
//! the suppressed set (masked exactly like a confirmed-dead link) until
//! the penalty cools below the reuse threshold. Routing then converges
//! to one stable masked table set per storm instead of oscillating.
//!
//! Decay is integer halving per elapsed half-life — deterministic,
//! monotone, and exact for the replay guarantee: the same confirmed
//! transition schedule always yields the same suppression timeline.

use netsim::ids::LinkId;
use netsim::Cycle;
use std::collections::BTreeMap;

/// Per-link penalty state.
#[derive(Debug, Clone, Copy)]
struct Penalty {
    /// Decayed value as of `last`.
    value: u64,
    /// Cycle the value was last decayed to.
    last: Cycle,
    /// Currently suppressed?
    suppressed: bool,
}

/// The damper: penalties, thresholds, and the suppressed set.
#[derive(Debug)]
pub struct FlapDamper {
    penalty: u64,
    suppress: u64,
    reuse: u64,
    half_life: Cycle,
    links: BTreeMap<LinkId, Penalty>,
    suppressions: u64,
    reinstatements: u64,
}

impl FlapDamper {
    /// Creates a damper. `reuse` must be below `suppress` (config
    /// validation enforces this; the constructor clamps defensively) and
    /// `half_life` at least 1.
    pub fn new(penalty: u64, suppress: u64, reuse: u64, half_life: Cycle) -> Self {
        FlapDamper {
            penalty,
            suppress,
            reuse: reuse.min(suppress.saturating_sub(1)),
            half_life: half_life.max(1),
            links: BTreeMap::new(),
            suppressions: 0,
            reinstatements: 0,
        }
    }

    fn decay(p: &mut Penalty, now: Cycle, half_life: Cycle) {
        let elapsed = now.saturating_sub(p.last);
        let windows = elapsed / half_life;
        if windows > 0 {
            p.value >>= windows.min(63);
            p.last += windows * half_life;
        }
    }

    /// Charges one confirmed transition of `link` at cycle `at`.
    pub fn record(&mut self, link: LinkId, at: Cycle) {
        let p = self.links.entry(link).or_insert(Penalty {
            value: 0,
            last: at,
            suppressed: false,
        });
        Self::decay(p, at, self.half_life);
        p.value = p.value.saturating_add(self.penalty);
        if !p.suppressed && p.value >= self.suppress {
            p.suppressed = true;
            self.suppressions += 1;
        }
    }

    /// Decays every link to `now` and reinstates those that cooled below
    /// the reuse threshold. Cooled-to-zero, unsuppressed entries are
    /// dropped, so the table stays proportional to recently flapping
    /// links, not to every link that ever blipped.
    pub fn advance(&mut self, now: Cycle) {
        let half_life = self.half_life;
        let reuse = self.reuse;
        let mut reinstated = 0;
        self.links.retain(|_, p| {
            Self::decay(p, now, half_life);
            if p.suppressed && p.value <= reuse {
                p.suppressed = false;
                reinstated += 1;
            }
            p.value > 0 || p.suppressed
        });
        self.reinstatements += reinstated;
    }

    /// The currently suppressed links, sorted.
    pub fn suppressed(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|(_, p)| p.suppressed)
            .map(|(&l, _)| l)
            .collect()
    }

    /// The decayed penalty of `link` as of its last update.
    pub fn current_penalty(&self, link: LinkId) -> u64 {
        self.links.get(&link).map_or(0, |p| p.value)
    }

    /// Links ever suppressed.
    pub fn suppressions(&self) -> u64 {
        self.suppressions
    }

    /// Suppressed links later reinstated.
    pub fn reinstatements(&self) -> u64 {
        self.reinstatements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn damper() -> FlapDamper {
        FlapDamper::new(1_000, 2_500, 800, 1_000)
    }

    #[test]
    fn single_transition_never_suppresses() {
        let mut d = damper();
        d.record(LinkId(7), 100);
        assert!(d.suppressed().is_empty());
        assert_eq!(d.current_penalty(LinkId(7)), 1_000);
    }

    #[test]
    fn rapid_flaps_suppress_and_cooling_reinstates() {
        let mut d = damper();
        // Three confirmed transitions in quick succession: 3000 ≥ 2500.
        for at in [100, 200, 300] {
            d.record(LinkId(3), at);
        }
        assert_eq!(d.suppressed(), vec![LinkId(3)]);
        assert_eq!(d.suppressions(), 1);

        // 3000 → 1500 after one half-life (still ≥ reuse=800), → 750
        // after two: reinstated.
        d.advance(1_300);
        assert_eq!(d.suppressed(), vec![LinkId(3)]);
        d.advance(2_300);
        assert!(d.suppressed().is_empty());
        assert_eq!(d.reinstatements(), 1);
    }

    #[test]
    fn decay_is_deterministic_across_split_advances() {
        let mut a = damper();
        let mut b = damper();
        for at in [0, 50, 120] {
            a.record(LinkId(1), at);
            b.record(LinkId(1), at);
        }
        // One big advance vs. many small ones land on the same value.
        a.advance(5_120);
        for t in (200..=5_120).step_by(64) {
            b.advance(t);
        }
        b.advance(5_120);
        assert_eq!(a.current_penalty(LinkId(1)), b.current_penalty(LinkId(1)));
    }

    #[test]
    fn suppression_triggers_exactly_at_the_threshold() {
        // value == suppress must suppress (the comparison is >=, matching
        // the config docs); one unit below must not.
        let mut exact = FlapDamper::new(1_000, 2_000, 500, 1_000);
        exact.record(LinkId(1), 0);
        exact.record(LinkId(1), 0);
        assert_eq!(exact.suppressed(), vec![LinkId(1)], "2000 >= 2000");

        let mut shy = FlapDamper::new(1_000, 2_001, 500, 1_000);
        shy.record(LinkId(1), 0);
        shy.record(LinkId(1), 0);
        assert!(shy.suppressed().is_empty(), "2000 < 2001");
    }

    #[test]
    fn reuse_at_or_above_suppress_is_clamped() {
        // A config with reuse >= suppress would re-park a link the moment
        // it reinstated; the constructor clamps to suppress-1 so cooling
        // below the suppress threshold is exactly the reinstate point.
        let mut d = FlapDamper::new(1_000, 1_000, 5_000, 1_000);
        d.record(LinkId(2), 0);
        assert_eq!(d.suppressed(), vec![LinkId(2)]);
        // Not yet a full half-life: 1000 > clamped reuse (999).
        d.advance(999);
        assert_eq!(d.suppressed(), vec![LinkId(2)]);
        // One half-life: 500 <= 999 — reinstated.
        d.advance(1_000);
        assert!(d.suppressed().is_empty());
        assert_eq!(d.reinstatements(), 1);
    }

    #[test]
    fn each_storm_counts_a_fresh_suppression() {
        let mut d = damper();
        for at in [0, 100, 200] {
            d.record(LinkId(5), at);
        }
        assert_eq!(d.suppressions(), 1);
        d.advance(3_000); // 3000 -> 750 <= 800: reinstated
        assert_eq!(d.reinstatements(), 1);
        // The link relapses: the penalty history decayed, but a fresh
        // burst must suppress (and count) again.
        for at in [3_000, 3_100, 3_200] {
            d.record(LinkId(5), at);
        }
        assert_eq!(d.suppressions(), 2, "re-suppression after cooling");
        assert_eq!(d.suppressed(), vec![LinkId(5)]);
    }

    #[test]
    fn decay_boundary_is_exact() {
        let mut d = damper();
        d.record(LinkId(9), 0);
        // One cycle short of a half-life: untouched.
        d.advance(999);
        assert_eq!(d.current_penalty(LinkId(9)), 1_000);
        // Exactly one half-life: halved.
        d.advance(1_000);
        assert_eq!(d.current_penalty(LinkId(9)), 500);
    }

    #[test]
    fn deep_decay_saturates_without_overflow() {
        let mut d = damper();
        d.record(LinkId(4), 0);
        // An elapsed span of ~2^63 half-lives: the shift clamps at 63 and
        // the last-decay cursor advances by windows * half_life without
        // wrapping into a panic.
        d.advance(u64::MAX / 2);
        assert_eq!(d.current_penalty(LinkId(4)), 0);
        assert!(d.suppressed().is_empty());
    }

    #[test]
    fn cooled_entries_are_dropped() {
        let mut d = damper();
        d.record(LinkId(1), 0);
        d.advance(100_000);
        assert_eq!(d.current_penalty(LinkId(1)), 0);
        assert!(d.links.is_empty(), "cooled entry must be evicted");
    }
}
