//! Bounded request queues with an explicit backpressure/shed split.
//!
//! Reader threads parse client lines into [`Envelope`]s and hand them to
//! the service loop over an `std::sync::mpsc::sync_channel` whose bound
//! is `routed.queue_cap`. The enqueue policy differs by request class:
//!
//! * **fabric events** (link up/down, join/leave, `step`, `quit`) use a
//!   *blocking* send — the producer stalls until the service catches up.
//!   Losing one would desynchronize the client's view of fabric state,
//!   so backpressure is the only safe overload response;
//! * **queries** (route, reach, health, metrics) use `try_send` — under
//!   overload the reader replies `err shed` immediately and bumps the
//!   shared [`ShedCounter`]. A stale answer a client never gets is
//!   strictly better than a queue that grows without bound.

use super::proto::Request;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;

/// One queued request plus the channel its one-line reply goes back on.
#[derive(Debug)]
pub struct Envelope {
    /// The parsed request.
    pub req: Request,
    /// Reply channel back to the submitting reader thread.
    pub reply: std::sync::mpsc::Sender<String>,
}

/// Shared count of queries shed at the queue boundary.
#[derive(Debug, Default, Clone)]
pub struct ShedCounter(Arc<AtomicU64>);

impl ShedCounter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        ShedCounter::default()
    }

    /// Records one shed query.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries shed so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Submits `env` under the class-appropriate policy. Returns `Ok(true)`
/// if enqueued, `Ok(false)` if the query was shed (an `err shed` reply
/// was already sent), and `Err` if the service loop hung up.
pub fn submit(
    tx: &SyncSender<Envelope>,
    env: Envelope,
    shed: &ShedCounter,
) -> Result<bool, &'static str> {
    if env.req.is_query() {
        match tx.try_send(env) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(env)) => {
                shed.bump();
                let _ = env
                    .reply
                    .send("err shed: service overloaded, retry later".to_string());
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => Err("service loop closed"),
        }
    } else {
        tx.send(env)
            .map(|()| true)
            .map_err(|_| "service loop closed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn env(req: Request) -> (Envelope, mpsc::Receiver<String>) {
        let (reply, rx) = mpsc::channel();
        (Envelope { req, reply }, rx)
    }

    #[test]
    fn queries_shed_when_full_events_would_block() {
        let (tx, _service_rx) = mpsc::sync_channel(1);
        let shed = ShedCounter::new();

        let (e1, _r1) = env(Request::Health);
        assert_eq!(submit(&tx, e1, &shed), Ok(true));

        // Queue full: the second query is shed with an immediate reply.
        let (e2, r2) = env(Request::Metrics);
        assert_eq!(submit(&tx, e2, &shed), Ok(false));
        assert_eq!(shed.get(), 1);
        assert!(r2.recv().unwrap().starts_with("err shed"));
    }

    #[test]
    fn disconnected_service_is_an_error() {
        let (tx, service_rx) = mpsc::sync_channel::<Envelope>(1);
        drop(service_rx);
        let shed = ShedCounter::new();
        let (e, _r) = env(Request::Health);
        assert!(submit(&tx, e, &shed).is_err());
    }
}
