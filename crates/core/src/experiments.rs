//! The experiment suite (E1..E19 in DESIGN.md), reproducing every
//! evaluation axis the paper's abstract enumerates: multiple multicast,
//! bimodal traffic, degree of multicast, message length, and system size —
//! plus parameter ablations, single-multicast latency, and the barrier /
//! hot-spot / all-reduce / fault-resilience extensions.
//!
//! Every experiment compares the three schemes of the paper:
//!
//! * **CB-HW** — central-buffer switch, bit-string hardware worms,
//! * **IB-HW** — input-buffer switch, bit-string hardware worms,
//! * **SW-CB** — U-Min binomial software multicast on the central-buffer
//!   switch.
//!
//! Every sweep is a cross-product of *independent* deterministic runs, so
//! each experiment builds its full job list up front and fans it out over
//! the [`crate::sweep`] worker pool (`figures --jobs N` / `MDWORM_JOBS`;
//! defaults to available parallelism). Results return in submission order,
//! so tables are bit-identical to a serial run.

use crate::build::build_system;
use crate::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use crate::report::{f, TableRow};
use crate::respond::{FaultResponder, ResponseConfig};
use crate::sim::{RunConfig, RunOutcome};
use crate::sweep::{self, SweepJob};
use crate::workload::TrafficSpec;
use collectives::traffic::DeliveryHook;
use collectives::{
    BarrierEngine, MessageSpec, RecoveryConfig, ScheduledSource, SilentSource, TrafficSource,
};
use mintopo::route::ReplicatePolicy;
use netsim::ids::NodeId;
use netsim::message::MessageKind;
use netsim::rng::SimRng;
use netsim::FaultPlan;
use std::cell::RefCell;
use std::rc::Rc;
use switches::UpSelect;

/// The three schemes of the paper, derived from a base configuration.
pub fn scheme_configs(base: &SystemConfig) -> Vec<(&'static str, SystemConfig)> {
    vec![
        (
            "CB-HW",
            SystemConfig {
                arch: SwitchArch::CentralBuffer,
                mcast: McastImpl::HwBitString,
                ..base.clone()
            },
        ),
        (
            "IB-HW",
            SystemConfig {
                arch: SwitchArch::InputBuffered,
                mcast: McastImpl::HwBitString,
                ..base.clone()
            },
        ),
        (
            "SW-CB",
            SystemConfig {
                arch: SwitchArch::CentralBuffer,
                mcast: McastImpl::SwBinomial,
                ..base.clone()
            },
        ),
    ]
}

/// Fans a labeled [`run_experiment`] job list out over the sweep worker
/// pool and zips each outcome back to its metadata, in submission order.
fn sweep_outcomes<M>(labeled: Vec<(M, SweepJob)>) -> Vec<(M, RunOutcome)> {
    let (meta, jobs_list): (Vec<M>, Vec<SweepJob>) = labeled.into_iter().unzip();
    meta.into_iter()
        .zip(sweep::run_sweep_auto(jobs_list))
        .collect()
}

// ---------------------------------------------------------------------
// E1: parameter table
// ---------------------------------------------------------------------

/// One configuration parameter (E1).
#[derive(Debug, Clone)]
pub struct ParamRow {
    /// Parameter name.
    pub name: String,
    /// Its value.
    pub value: String,
}

impl TableRow for ParamRow {
    fn headers() -> Vec<&'static str> {
        vec!["parameter", "value"]
    }
    fn cells(&self) -> Vec<String> {
        vec![self.name.clone(), self.value.clone()]
    }
}

/// E1: the default simulation parameters (the paper's parameter table).
pub fn e1_parameters(cfg: &SystemConfig, run: &RunConfig) -> Vec<ParamRow> {
    let sw = cfg.effective_switch();
    let row = |name: &str, value: String| ParamRow {
        name: name.to_string(),
        value,
    };
    vec![
        row("processors", cfg.n_hosts().to_string()),
        row("topology", format!("{:?}", cfg.topology)),
        row("switch ports", sw.ports.to_string()),
        row("flit width (bits)", cfg.bits_per_flit.to_string()),
        row("link delay (cycles)", cfg.link_delay.to_string()),
        row("route decision delay (cycles)", sw.route_delay.to_string()),
        row(
            "central queue (chunks x flits)",
            format!("{} x {}", sw.cq_chunks, sw.chunk_flits),
        ),
        row(
            "input buffer per port (flits)",
            sw.input_buf_flits.to_string(),
        ),
        row("max packet (flits)", sw.max_packet_flits.to_string()),
        row("send overhead (cycles)", cfg.send_overhead.to_string()),
        row("receive overhead (cycles)", cfg.recv_overhead.to_string()),
        row("up-path selection", format!("{:?}", sw.up_select)),
        row("replication policy", format!("{:?}", sw.policy)),
        row(
            "warmup / measure (cycles)",
            format!("{} / {}", run.warmup, run.measure),
        ),
        row("seed", format!("{:#x}", cfg.seed)),
    ]
}

// ---------------------------------------------------------------------
// Sweep rows shared by E2/E3, E6, E7, E8
// ---------------------------------------------------------------------

/// One point of a latency/throughput sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Scheme label (CB-HW / IB-HW / SW-CB).
    pub scheme: String,
    /// Sweep variable name.
    pub x_name: String,
    /// Sweep variable value.
    pub x: f64,
    /// Multicast latency to last destination, mean (cycles).
    pub mcast_mean: f64,
    /// Multicast latency, 95th percentile.
    pub mcast_p95: u64,
    /// Unicast latency mean (0 if no unicasts).
    pub unicast_mean: f64,
    /// Delivered payload flits / node / cycle.
    pub throughput: f64,
    /// Completed multicasts in the window.
    pub mcasts: u64,
    /// Saturated (could not drain)?
    pub saturated: bool,
    /// Deadlocked (watchdog fired)?
    pub deadlocked: bool,
}

impl SweepRow {
    fn from_outcome(scheme: &str, x_name: &str, x: f64, o: &RunOutcome) -> Self {
        SweepRow {
            scheme: scheme.to_string(),
            x_name: x_name.to_string(),
            x,
            mcast_mean: o.mcast_last.mean,
            mcast_p95: o.mcast_last.p95,
            unicast_mean: o.unicast.mean,
            throughput: o.throughput,
            mcasts: o.completed_mcasts,
            saturated: o.saturated,
            deadlocked: o.deadlocked,
        }
    }
}

impl TableRow for SweepRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "scheme",
            "x_name",
            "x",
            "mcast_mean",
            "mcast_p95",
            "unicast_mean",
            "throughput",
            "mcasts",
            "saturated",
            "deadlocked",
        ]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            self.x_name.clone(),
            f(self.x),
            f(self.mcast_mean),
            self.mcast_p95.to_string(),
            f(self.unicast_mean),
            f(self.throughput),
            self.mcasts.to_string(),
            self.saturated.to_string(),
            self.deadlocked.to_string(),
        ]
    }
}

/// E2 + E3: multiple-multicast traffic — multicast latency and delivered
/// throughput versus offered load, for all three schemes.
pub fn e2_e3_multiple_multicast(
    base: &SystemConfig,
    run: &RunConfig,
    loads: &[f64],
    degree: usize,
    len: u16,
) -> Vec<SweepRow> {
    let mut jobs = Vec::new();
    for (label, cfg) in scheme_configs(base) {
        for &load in loads {
            let spec = TrafficSpec::multiple_multicast(load, degree, len);
            jobs.push(((label, load), SweepJob::new(cfg.clone(), spec, run.clone())));
        }
    }
    sweep_outcomes(jobs)
        .iter()
        .map(|((label, load), o)| SweepRow::from_outcome(label, "load", *load, o))
        .collect()
}

/// E6: multicast latency versus degree at a fixed load.
pub fn e6_degree_sweep(
    base: &SystemConfig,
    run: &RunConfig,
    load: f64,
    degrees: &[usize],
    len: u16,
) -> Vec<SweepRow> {
    let mut jobs = Vec::new();
    for (label, cfg) in scheme_configs(base) {
        for &d in degrees {
            let spec = TrafficSpec::multiple_multicast(load, d, len);
            jobs.push(((label, d), SweepJob::new(cfg.clone(), spec, run.clone())));
        }
    }
    sweep_outcomes(jobs)
        .iter()
        .map(|((label, d), o)| SweepRow::from_outcome(label, "degree", *d as f64, o))
        .collect()
}

/// E7: multicast latency versus message length at a fixed load.
pub fn e7_length_sweep(
    base: &SystemConfig,
    run: &RunConfig,
    load: f64,
    lens: &[u16],
    degree: usize,
) -> Vec<SweepRow> {
    let mut jobs = Vec::new();
    for (label, cfg) in scheme_configs(base) {
        for &len in lens {
            let spec = TrafficSpec::multiple_multicast(load, degree, len);
            jobs.push(((label, len), SweepJob::new(cfg.clone(), spec, run.clone())));
        }
    }
    sweep_outcomes(jobs)
        .iter()
        .map(|((label, len), o)| SweepRow::from_outcome(label, "len", f64::from(*len), o))
        .collect()
}

/// E8: multicast latency versus system size (4-ary trees of `n` stages;
/// degree scales as N/4).
pub fn e8_size_sweep(
    base: &SystemConfig,
    run: &RunConfig,
    load: f64,
    stages: &[usize],
    len: u16,
) -> Vec<SweepRow> {
    let mut jobs = Vec::new();
    for &n in stages {
        let size_base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n },
            ..base.clone()
        };
        let n_hosts = size_base.n_hosts();
        let degree = (n_hosts / 4).max(1);
        for (label, cfg) in scheme_configs(&size_base) {
            let spec = TrafficSpec::multiple_multicast(load, degree, len);
            jobs.push(((label, n_hosts), SweepJob::new(cfg, spec, run.clone())));
        }
    }
    sweep_outcomes(jobs)
        .iter()
        .map(|((label, n_hosts), o)| SweepRow::from_outcome(label, "N", *n_hosts as f64, o))
        .collect()
}

/// E12 (extension; the paper's §9 names hot-spot impact as follow-on
/// work): unicast background with a fraction of messages converging on
/// node 0 — how gracefully does each buffer organization degrade?
pub fn e12_hotspot(
    base: &SystemConfig,
    run: &RunConfig,
    load: f64,
    fractions: &[f64],
    len: u16,
) -> Vec<SweepRow> {
    let mut jobs = Vec::new();
    for (label, arch) in [
        ("CB", SwitchArch::CentralBuffer),
        ("IB", SwitchArch::InputBuffered),
    ] {
        let cfg = SystemConfig {
            arch,
            mcast: McastImpl::HwBitString,
            ..base.clone()
        };
        for &frac in fractions {
            let spec = TrafficSpec::unicast(load, len).with_hotspot(frac, 0);
            jobs.push(((label, frac), SweepJob::new(cfg.clone(), spec, run.clone())));
        }
    }
    sweep_outcomes(jobs)
        .iter()
        .map(|((label, frac), o)| SweepRow::from_outcome(label, "hotspot_frac", *frac, o))
        .collect()
}

// ---------------------------------------------------------------------
// E4/E5: bimodal traffic
// ---------------------------------------------------------------------

/// One point of the bimodal-traffic comparison.
#[derive(Debug, Clone)]
pub struct BimodalRow {
    /// Scheme label; "CB-none" is the multicast-free reference.
    pub scheme: String,
    /// Offered load.
    pub load: f64,
    /// Background unicast latency, mean.
    pub unicast_mean: f64,
    /// Background unicast latency, 95th percentile.
    pub unicast_p95: u64,
    /// Multicast latency (last destination), mean.
    pub mcast_mean: f64,
    /// Delivered payload flits / node / cycle.
    pub throughput: f64,
    /// Saturated?
    pub saturated: bool,
    /// Deadlocked?
    pub deadlocked: bool,
}

impl TableRow for BimodalRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "scheme",
            "load",
            "unicast_mean",
            "unicast_p95",
            "mcast_mean",
            "throughput",
            "saturated",
            "deadlocked",
        ]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            f(self.load),
            f(self.unicast_mean),
            self.unicast_p95.to_string(),
            f(self.mcast_mean),
            f(self.throughput),
            self.saturated.to_string(),
            self.deadlocked.to_string(),
        ]
    }
}

/// E4 + E5: bimodal traffic — how does each multicast implementation
/// affect the *background unicast* latency (the abstract's headline
/// bimodal claim), and what multicast latency does it achieve meanwhile?
///
/// A fourth series, `CB-none`, replaces the multicast fraction with
/// nothing (same unicast background only) as the no-multicast reference.
pub fn e4_e5_bimodal(
    base: &SystemConfig,
    run: &RunConfig,
    loads: &[f64],
    mcast_fraction: f64,
    degree: usize,
    len: u16,
) -> Vec<BimodalRow> {
    let mut jobs = Vec::new();
    for (label, cfg) in scheme_configs(base) {
        for &load in loads {
            let spec = TrafficSpec::bimodal(load, mcast_fraction, degree, len);
            jobs.push(((label, load), SweepJob::new(cfg.clone(), spec, run.clone())));
        }
    }
    // Reference: the same unicast background with the multicast share
    // removed entirely.
    let cfg = SystemConfig {
        arch: SwitchArch::CentralBuffer,
        mcast: McastImpl::HwBitString,
        ..base.clone()
    };
    for &load in loads {
        let spec = TrafficSpec::unicast(load * (1.0 - mcast_fraction), len);
        jobs.push((
            ("CB-none", load),
            SweepJob::new(cfg.clone(), spec, run.clone()),
        ));
    }
    sweep_outcomes(jobs)
        .iter()
        .map(|((label, load), o)| BimodalRow {
            scheme: label.to_string(),
            load: *load,
            unicast_mean: o.unicast.mean,
            unicast_p95: o.unicast.p95,
            mcast_mean: o.mcast_last.mean,
            throughput: o.throughput,
            saturated: o.saturated,
            deadlocked: o.deadlocked,
        })
        .collect()
}

// ---------------------------------------------------------------------
// E9: ablations
// ---------------------------------------------------------------------

/// One ablation variant's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant description.
    pub variant: String,
    /// Multicast latency (last destination), mean.
    pub mcast_mean: f64,
    /// Unicast latency, mean.
    pub unicast_mean: f64,
    /// Delivered payload flits / node / cycle.
    pub throughput: f64,
    /// Saturated?
    pub saturated: bool,
    /// Deadlocked?
    pub deadlocked: bool,
}

impl TableRow for AblationRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "variant",
            "mcast_mean",
            "unicast_mean",
            "throughput",
            "saturated",
            "deadlocked",
        ]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.variant.clone(),
            f(self.mcast_mean),
            f(self.unicast_mean),
            f(self.throughput),
            self.saturated.to_string(),
            self.deadlocked.to_string(),
        ]
    }
}

/// E9: design-choice ablations of the central-buffer switch under a fixed
/// bimodal workload: bypass crossbar, up-path selection, replication
/// policy, central-queue sizing, chunk size, and the multiport encoding.
pub fn e9_ablations(base: &SystemConfig, run: &RunConfig, load: f64) -> Vec<AblationRow> {
    let degree = 16.min(base.n_hosts() / 2).max(1);
    let spec = TrafficSpec::bimodal(load, 0.1, degree, 64);
    let mut variants: Vec<(String, SystemConfig)> = Vec::new();
    let cb = SystemConfig {
        arch: SwitchArch::CentralBuffer,
        mcast: McastImpl::HwBitString,
        ..base.clone()
    };
    variants.push(("CB baseline".into(), cb.clone()));
    {
        let mut c = cb.clone();
        c.switch.bypass_crossbar = false;
        variants.push(("CB no bypass crossbar".into(), c));
    }
    {
        let mut c = cb.clone();
        c.switch.up_select = UpSelect::Deterministic;
        variants.push(("CB deterministic up-path".into(), c));
    }
    {
        let mut c = cb.clone();
        c.switch.policy = ReplicatePolicy::ForwardAndReturn;
        variants.push(("CB forward-and-return replication".into(), c));
    }
    for chunks in [32usize, 64, 256] {
        let mut c = cb.clone();
        c.switch.cq_chunks = chunks;
        if c.switch.cq_flits() < u32::from(c.switch.max_packet_flits) {
            c.switch.max_packet_flits = c.switch.cq_flits() as u16;
        }
        variants.push((format!("CB central queue {chunks} chunks"), c));
    }
    for chunk_flits in [4u16, 16] {
        let mut c = cb.clone();
        c.switch.chunk_flits = chunk_flits;
        c.switch.cq_chunks = 1024 / usize::from(chunk_flits); // keep 1 KB total
        variants.push((format!("CB chunk size {chunk_flits} flits"), c));
    }
    if matches!(base.topology, TopologyKind::KaryTree { .. }) {
        let mut c = cb.clone();
        c.mcast = McastImpl::HwMultiport;
        variants.push(("CB multiport encoding".into(), c));
    }
    {
        // Wider flits halve the bit-string header's serialization cost
        // (and double every payload's, in flit terms — lengths here are in
        // flits, so this isolates the header-size effect).
        let mut c = cb.clone();
        c.bits_per_flit = 16;
        variants.push(("CB 16-bit flits (half-size headers)".into(), c));
    }
    {
        let mut c = cb.clone();
        c.arch = SwitchArch::InputBuffered;
        variants.push(("IB same-storage reference".into(), c));
    }
    {
        // The rejected alternative of §3: lock-step branch progress. This
        // variant is *expected* to report deadlocked=true under multicast
        // load — crossed partial grants between overlapping worms — which
        // is the paper's argument for asynchronous replication.
        let mut c = cb.clone();
        c.arch = SwitchArch::InputBuffered;
        c.switch.replication = switches::ReplicationMode::Synchronous;
        variants.push((
            "IB synchronous replication (rejected; may deadlock)".into(),
            c,
        ));
    }

    let jobs = variants
        .into_iter()
        .map(|(variant, cfg)| (variant, SweepJob::new(cfg, spec.clone(), run.clone())))
        .collect();
    sweep_outcomes(jobs)
        .into_iter()
        .map(|(variant, out)| AblationRow {
            variant,
            mcast_mean: out.mcast_last.mean,
            unicast_mean: out.unicast.mean,
            throughput: out.throughput,
            saturated: out.saturated,
            deadlocked: out.deadlocked,
        })
        .collect()
}

// ---------------------------------------------------------------------
// E10: single multicast, unloaded network
// ---------------------------------------------------------------------

/// Latency of one multicast on an otherwise idle network.
#[derive(Debug, Clone)]
pub struct SingleRow {
    /// Scheme label.
    pub scheme: String,
    /// Destinations.
    pub degree: usize,
    /// Latency to the last destination (cycles).
    pub latency: u64,
    /// Ratio of this scheme's latency to CB-HW's at the same degree.
    pub ratio_vs_cbhw: f64,
}

impl TableRow for SingleRow {
    fn headers() -> Vec<&'static str> {
        vec!["scheme", "degree", "latency", "ratio_vs_cbhw"]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            self.degree.to_string(),
            self.latency.to_string(),
            f(self.ratio_vs_cbhw),
        ]
    }
}

/// Measures one multicast from host 0 to a uniformly random destination
/// set of the given degree, on an idle network.
///
/// # Panics
///
/// Panics if the multicast fails to complete within a generous bound.
pub fn single_multicast_latency(cfg: &SystemConfig, degree: usize, len: u16) -> u64 {
    let mut rng = SimRng::new(cfg.seed ^ 0xE10);
    let dests = rng.dest_set(cfg.n_hosts(), degree, NodeId(0));
    single_multicast_latency_to(cfg, dests, len)
}

/// Measures one multicast from host 0 to an explicit destination set, on an
/// idle network.
///
/// # Panics
///
/// Panics if the multicast fails to complete within a generous bound.
pub fn single_multicast_latency_to(cfg: &SystemConfig, dests: netsim::DestSet, len: u16) -> u64 {
    let n = cfg.n_hosts();
    let mut sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|_| Box::new(SilentSource) as Box<dyn TrafficSource>)
        .collect();
    sources[0] = Box::new(ScheduledSource::new(vec![(
        1,
        MessageSpec {
            kind: MessageKind::Multicast(dests),
            payload_flits: len,
        },
    )]));
    let mut sys = build_system(cfg.clone(), sources, None);
    let cap = 2_000_000;
    loop {
        sys.engine.run_for(200);
        let t = sys.tracker();
        let done = t.borrow().completed_total() > 0 && t.borrow().outstanding() == 0;
        if done || sys.engine.now() >= cap {
            break;
        }
    }
    assert_eq!(
        sys.tracker().borrow().outstanding(),
        0,
        "single multicast failed to complete"
    );
    sys.tracker().borrow().mcast_last.summary().max
}

/// E10: single-multicast latency for each scheme across degrees, with the
/// SW/HW ratio the companion work quotes ("up to a factor of 4").
pub fn e10_single_multicast(base: &SystemConfig, degrees: &[usize], len: u16) -> Vec<SingleRow> {
    let mut jobs = Vec::new();
    for &d in degrees {
        for (label, cfg) in scheme_configs(base) {
            jobs.push((label, d, cfg));
        }
    }
    let latencies = sweep::parallel_map(jobs, sweep::jobs(), |(label, d, cfg)| {
        (label, d, single_multicast_latency(&cfg, d, len))
    });
    // Submission order puts CB-HW first within each degree, so the
    // reference latency for the ratio is always the most recent CB-HW row.
    let mut rows = Vec::new();
    let mut cbhw = 0u64;
    for (label, degree, latency) in latencies {
        if label == "CB-HW" {
            cbhw = latency;
        }
        rows.push(SingleRow {
            scheme: label.to_string(),
            degree,
            latency,
            ratio_vs_cbhw: latency as f64 / cbhw as f64,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// E11: barrier extension
// ---------------------------------------------------------------------

/// Barrier-round latency for one configuration.
#[derive(Debug, Clone)]
pub struct BarrierRow {
    /// Scheme label for the release multicast.
    pub scheme: String,
    /// System size.
    pub n: usize,
    /// Rounds completed.
    pub rounds: u64,
    /// Mean round latency (cycles).
    pub mean_latency: f64,
}

impl TableRow for BarrierRow {
    fn headers() -> Vec<&'static str> {
        vec!["scheme", "n", "rounds", "mean_latency"]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            self.n.to_string(),
            self.rounds.to_string(),
            f(self.mean_latency),
        ]
    }
}

/// Runs `rounds` barrier rounds; returns (completed rounds, mean latency).
///
/// # Panics
///
/// Panics if no round completes within a generous cycle bound.
pub fn run_barrier(cfg: &SystemConfig, rounds: u64) -> (u64, f64) {
    let n = cfg.n_hosts();
    let engine = BarrierEngine::new(n, NodeId(0), rounds);
    let sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|h| {
            Box::new(BarrierEngine::source_for(&engine, NodeId::from(h))) as Box<dyn TrafficSource>
        })
        .collect();
    let hook: Rc<RefCell<dyn DeliveryHook>> = engine.clone();
    let mut sys = build_system(cfg.clone(), sources, Some(hook));
    let cap = 4_000_000;
    while !engine.borrow().done() && sys.engine.now() < cap {
        sys.engine.run_for(500);
    }
    let e = engine.borrow();
    assert!(e.completed_rounds() > 0, "no barrier round completed");
    (
        e.completed_rounds(),
        e.latencies.mean().expect("rounds completed"),
    )
}

/// E11: barrier latency, hardware-worm release versus software-multicast
/// release, across system sizes (4-ary trees of the given stages).
pub fn e11_barrier(base: &SystemConfig, stages: &[usize], rounds: u64) -> Vec<BarrierRow> {
    let mut jobs = Vec::new();
    for &n in stages {
        let size_base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n },
            ..base.clone()
        };
        for (label, mcast) in [
            ("HW release", McastImpl::HwBitString),
            ("SW release", McastImpl::SwBinomial),
        ] {
            let cfg = SystemConfig {
                arch: SwitchArch::CentralBuffer,
                mcast,
                ..size_base.clone()
            };
            jobs.push((label, cfg));
        }
    }
    sweep::parallel_map(jobs, sweep::jobs(), |(label, cfg)| {
        let (done, mean) = run_barrier(&cfg, rounds);
        BarrierRow {
            scheme: label.to_string(),
            n: cfg.n_hosts(),
            rounds: done,
            mean_latency: mean,
        }
    })
}

/// E15 (extension; "other traffic patterns" in the paper's §9 outlook):
/// permutation unicast traffic — how each buffer organization handles the
/// classic MIN stress patterns at a fixed load.
pub fn e15_patterns(base: &SystemConfig, run: &RunConfig, load: f64, len: u16) -> Vec<SweepRow> {
    use crate::workload::Pattern;
    let mut jobs = Vec::new();
    for (pi, (pname, pattern)) in [
        ("uniform", Pattern::Uniform),
        ("bit-reversal", Pattern::BitReversal),
        ("transpose", Pattern::Transpose),
        ("near-neighbor", Pattern::NearNeighbor),
    ]
    .into_iter()
    .enumerate()
    {
        for (label, arch) in [
            ("CB", SwitchArch::CentralBuffer),
            ("IB", SwitchArch::InputBuffered),
        ] {
            let cfg = SystemConfig {
                arch,
                mcast: McastImpl::HwBitString,
                ..base.clone()
            };
            let spec = TrafficSpec::unicast(load, len).with_pattern(pattern);
            jobs.push((
                (format!("{label}/{pname}"), pi),
                SweepJob::new(cfg, spec, run.clone()),
            ));
        }
    }
    sweep_outcomes(jobs)
        .iter()
        .map(|((scheme, pi), o)| SweepRow::from_outcome(scheme, "pattern", *pi as f64, o))
        .collect()
}

// ---------------------------------------------------------------------
// E13: reduction / all-reduce extension
// ---------------------------------------------------------------------

/// All-reduce round latency for one configuration.
#[derive(Debug, Clone)]
pub struct ReduceRow {
    /// Scheme label for the broadcast phase.
    pub scheme: String,
    /// System size.
    pub n: usize,
    /// Rounds completed.
    pub rounds: u64,
    /// Mean round latency (cycles).
    pub mean_latency: f64,
    /// The combined result matched the expected sum.
    pub result_ok: bool,
}

impl TableRow for ReduceRow {
    fn headers() -> Vec<&'static str> {
        vec!["scheme", "n", "rounds", "mean_latency", "result_ok"]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            self.n.to_string(),
            self.rounds.to_string(),
            f(self.mean_latency),
            self.result_ok.to_string(),
        ]
    }
}

/// Runs `rounds` all-reduce rounds; returns (completed, mean latency,
/// result correct).
///
/// # Panics
///
/// Panics if no round completes within a generous cycle bound.
pub fn run_allreduce(cfg: &SystemConfig, rounds: u64, payload: u16) -> (u64, f64, bool) {
    use collectives::ReduceEngine;
    let n = cfg.n_hosts();
    let engine = ReduceEngine::new(n, NodeId(0), rounds, payload, true);
    let sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|h| {
            Box::new(ReduceEngine::source_for(&engine, NodeId::from(h))) as Box<dyn TrafficSource>
        })
        .collect();
    let hook: Rc<RefCell<dyn DeliveryHook>> = engine.clone();
    let mut sys = build_system(cfg.clone(), sources, Some(hook));
    let cap = 4_000_000;
    while !engine.borrow().done() && sys.engine.now() < cap {
        sys.engine.run_for(500);
    }
    let e = engine.borrow();
    assert!(e.completed_rounds() > 0, "no all-reduce round completed");
    let ok = e.last_result == Some(e.expected_sum());
    (
        e.completed_rounds(),
        e.latencies.mean().expect("rounds completed"),
        ok,
    )
}

/// E13 (extension): all-reduce latency — combine up the binomial tree,
/// broadcast the result with hardware worms vs software multicast.
pub fn e13_allreduce(base: &SystemConfig, stages: &[usize], rounds: u64) -> Vec<ReduceRow> {
    let mut jobs = Vec::new();
    for &n in stages {
        let size_base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n },
            ..base.clone()
        };
        for (label, mcast) in [
            ("HW broadcast", McastImpl::HwBitString),
            ("SW broadcast", McastImpl::SwBinomial),
        ] {
            let cfg = SystemConfig {
                arch: SwitchArch::CentralBuffer,
                mcast,
                ..size_base.clone()
            };
            jobs.push((label, cfg));
        }
    }
    sweep::parallel_map(jobs, sweep::jobs(), |(label, cfg)| {
        let (done, mean, ok) = run_allreduce(&cfg, rounds, 8);
        ReduceRow {
            scheme: label.to_string(),
            n: cfg.n_hosts(),
            rounds: done,
            mean_latency: mean,
            result_ok: ok,
        }
    })
}

// ---------------------------------------------------------------------
// E14: switch-combining hardware barrier
// ---------------------------------------------------------------------

/// Runs `rounds` switch-combining barrier rounds; returns (completed,
/// mean latency).
///
/// # Panics
///
/// Panics if the configuration does not enable `barrier_combining`, or if
/// no round completes within a generous cycle bound.
pub fn run_combining_barrier(cfg: &SystemConfig, rounds: u64) -> (u64, f64) {
    use collectives::CombiningBarrierEngine;
    assert!(
        cfg.barrier_combining,
        "config must enable barrier combining"
    );
    let n = cfg.n_hosts();
    let engine = CombiningBarrierEngine::new(n, rounds);
    let sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|h| {
            Box::new(CombiningBarrierEngine::source_for(&engine, NodeId::from(h)))
                as Box<dyn TrafficSource>
        })
        .collect();
    let hook: Rc<RefCell<dyn DeliveryHook>> = engine.clone();
    let mut sys = build_system(cfg.clone(), sources, Some(hook));
    let cap = 4_000_000;
    while !engine.borrow().done() && sys.engine.now() < cap {
        sys.engine.run_for(200);
    }
    let e = engine.borrow();
    assert!(
        e.completed_rounds() > 0,
        "no combining-barrier round completed"
    );
    (
        e.completed_rounds(),
        e.latencies.mean().expect("rounds completed"),
    )
}

/// E14 (extension; the full vision of the paper's §9 / companion work
/// \[34\]): barrier latency with **switch-combining** gathers versus the
/// host-level gather + multicast-release protocol of E11.
pub fn e14_combining_barrier(
    base: &SystemConfig,
    stages: &[usize],
    rounds: u64,
) -> Vec<BarrierRow> {
    let mut jobs = Vec::new();
    for &n in stages {
        let size_base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n },
            arch: SwitchArch::CentralBuffer,
            ..base.clone()
        };
        // Switch-combining hardware barrier.
        let comb_cfg = SystemConfig {
            barrier_combining: true,
            ..size_base.clone()
        };
        jobs.push(("switch-combining", comb_cfg, true));
        // Host-level references (same as E11).
        for (label, mcast) in [
            ("host gather + HW release", McastImpl::HwBitString),
            ("host gather + SW release", McastImpl::SwBinomial),
        ] {
            let cfg = SystemConfig {
                mcast,
                ..size_base.clone()
            };
            jobs.push((label, cfg, false));
        }
    }
    sweep::parallel_map(jobs, sweep::jobs(), |(label, cfg, combining)| {
        let (done, mean) = if combining {
            run_combining_barrier(&cfg, rounds)
        } else {
            run_barrier(&cfg, rounds)
        };
        BarrierRow {
            scheme: label.to_string(),
            n: cfg.n_hosts(),
            rounds: done,
            mean_latency: mean,
        }
    })
}

// ---------------------------------------------------------------------
// E16: graceful degradation under link faults
// ---------------------------------------------------------------------

/// One point of the fault-rate degradation sweep.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Scheme label (CB-HW / IB-HW).
    pub scheme: String,
    /// Per-flit drop probability injected on every link.
    pub drop_rate: f64,
    /// Multicast latency to last destination, mean (cycles).
    pub mcast_mean: f64,
    /// Delivered payload flits / node / cycle.
    pub throughput: f64,
    /// Worms condemned by the injector.
    pub worms_dropped: u64,
    /// Sender-side retransmissions triggered by ACK timeouts.
    pub retransmits: u64,
    /// Messages abandoned after exhausting retries.
    pub gave_up: u64,
    /// Messages still undelivered after the drain (must stay 0 while
    /// recovery keeps up).
    pub leftover: usize,
    /// Saturated (could not drain)?
    pub saturated: bool,
}

impl TableRow for FaultRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "scheme",
            "drop_rate",
            "mcast_mean",
            "throughput",
            "worms_dropped",
            "retransmits",
            "gave_up",
            "leftover",
            "saturated",
        ]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            format!("{:e}", self.drop_rate),
            f(self.mcast_mean),
            f(self.throughput),
            self.worms_dropped.to_string(),
            self.retransmits.to_string(),
            self.gave_up.to_string(),
            self.leftover.to_string(),
            self.saturated.to_string(),
        ]
    }
}

/// E16 (robustness extension): latency and delivered throughput versus the
/// per-flit drop rate, with end-to-end recovery enabled, for both buffer
/// organizations. Shows how gracefully each architecture degrades as links
/// get lossy — and that the retransmission protocol keeps delivery
/// lossless until it can no longer keep up.
pub fn e16_fault_sweep(
    base: &SystemConfig,
    run: &RunConfig,
    load: f64,
    drop_rates: &[f64],
    degree: usize,
    len: u16,
) -> Vec<FaultRow> {
    let mut jobs = Vec::new();
    for (label, arch) in [
        ("CB-HW", SwitchArch::CentralBuffer),
        ("IB-HW", SwitchArch::InputBuffered),
    ] {
        let cfg = SystemConfig {
            arch,
            mcast: McastImpl::HwBitString,
            recovery: Some(RecoveryConfig::default()),
            ..base.clone()
        };
        for &rate in drop_rates {
            let spec = TrafficSpec::multiple_multicast(load, degree, len);
            let frun = RunConfig {
                faults: (rate > 0.0).then(|| FaultPlan::drops(base.seed ^ 0xE16, rate)),
                ..run.clone()
            };
            jobs.push(((label, rate), SweepJob::new(cfg.clone(), spec, frun)));
        }
    }
    sweep_outcomes(jobs)
        .iter()
        .map(|((label, rate), out)| FaultRow {
            scheme: label.to_string(),
            drop_rate: *rate,
            mcast_mean: out.mcast_last.mean,
            throughput: out.throughput,
            worms_dropped: out.faults.worms_dropped,
            retransmits: out.recovery.retransmits,
            gave_up: out.recovery.gave_up,
            leftover: out.leftover,
            saturated: out.saturated,
        })
        .collect()
}

// ---------------------------------------------------------------------
// E17: online fault response (detect → reroute → degrade → heal)
// ---------------------------------------------------------------------

/// One phase of the fault-response sweep for one scheme (E17).
#[derive(Debug, Clone)]
pub struct FaultResponseRow {
    /// Scheme label (CB-HW / IB-HW).
    pub scheme: String,
    /// Fabric phase: healthy / rerouted / degraded / healed.
    pub phase: &'static str,
    /// Multicasts completed during the phase.
    pub mcasts: u64,
    /// Mean multicast latency to last destination over the phase (cycles).
    pub mcast_mean: f64,
    /// Delivered payload flits / node / cycle over the phase.
    pub throughput: f64,
    /// Destinations served by the U-Min unicast fallback in the phase.
    pub peeled: u64,
    /// Retransmissions fired in the phase.
    pub retransmits: u64,
    /// Switch packet replications in the phase (hardware multicast alive).
    pub replications: u64,
    /// Masked reroutes staged in the phase.
    pub reroutes: u64,
    /// Reroute candidates the deadlock vet rejected in the phase.
    pub rejected: u64,
    /// Messages still undelivered at the end of the phase (only the final
    /// phase may legitimately be non-zero, and only under saturation).
    pub leftover: usize,
}

impl TableRow for FaultResponseRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "scheme",
            "phase",
            "mcasts",
            "mcast_mean",
            "throughput",
            "peeled",
            "retransmits",
            "replications",
            "reroutes",
            "rejected",
            "leftover",
        ]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            self.phase.to_string(),
            self.mcasts.to_string(),
            f(self.mcast_mean),
            f(self.throughput),
            self.peeled.to_string(),
            self.retransmits.to_string(),
            self.replications.to_string(),
            self.reroutes.to_string(),
            self.rejected.to_string(),
            self.leftover.to_string(),
        ]
    }
}

/// Cumulative counters captured at a phase boundary; rows are deltas
/// between consecutive snapshots.
#[derive(Debug, Clone, Copy)]
struct PhaseSnap {
    at: netsim::Cycle,
    mcasts: u64,
    latency_sum: f64,
    payload: u64,
    peeled: u64,
    retransmits: u64,
    replications: u64,
    reroutes: u64,
    rejected: u64,
}

fn phase_snap(sys: &crate::build::System, resp: &FaultResponder) -> PhaseSnap {
    let tracker = sys.tracker();
    let tracker = tracker.borrow();
    let lat = tracker.mcast_last.summary();
    PhaseSnap {
        at: sys.engine.now(),
        mcasts: lat.count,
        latency_sum: lat.mean * lat.count as f64,
        payload: tracker.payload_delivered(),
        peeled: sys.fabric_mode.counters().peeled_dests,
        retransmits: sys.shared.recovery.borrow().counters.retransmits,
        replications: sys
            .switch_stats
            .iter()
            .map(|s| s.borrow().packets_replicated)
            .sum(),
        reroutes: resp.counters().reroutes,
        rejected: resp.counters().reroutes_rejected,
    }
}

/// Drives one scheme through the four-phase outage script:
/// `[0, P)` healthy, `[P, 2P)` one root→leaf cut (reroute keeps full worm
/// coverage), `[2P, 3P)` a crossed cut (worm-coverage holes force the
/// U-Min fallback), `[3P, 4P)` healed, then a drain for recovery to finish.
fn e17_drive(
    label: &str,
    cfg: SystemConfig,
    phase_len: netsim::Cycle,
    load: f64,
    degree: usize,
    len: u16,
) -> Vec<FaultResponseRow> {
    let k = match cfg.topology {
        TopologyKind::KaryTree { k, n: 2 } => k,
        other => panic!("E17 runs on 2-stage k-ary trees, got {other:?}"),
    };
    let n = cfg.n_hosts();
    let stop_at = 4 * phase_len;
    let spec = TrafficSpec::multiple_multicast(load, degree, len);
    let sources = crate::workload::make_sources(&spec, n, cfg.seed, Some(stop_at));
    let mut sys = build_system(cfg, sources, None);

    // Representative hosts on two distinct non-zero leaves.
    let d1 = NodeId::from(k);
    let d2 = NodeId::from(2 * k);
    let (single, _) = crate::respond::outage::single_cut(&sys, d1);
    sys.engine.script_outage(single, phase_len, 3 * phase_len);
    for (link, _) in crate::respond::outage::crossed_cut(&sys, d1, d2) {
        if link != single {
            sys.engine.script_outage(link, 2 * phase_len, 3 * phase_len);
        }
    }

    let mut responder = FaultResponder::new(ResponseConfig::default(), &mut sys);
    let mut snaps = vec![phase_snap(&sys, &responder)];
    for boundary in [phase_len, 2 * phase_len, 3 * phase_len, stop_at] {
        while sys.engine.now() < boundary {
            let step = 32.min(boundary - sys.engine.now());
            sys.engine.run_for(step);
            responder.poll(&mut sys);
        }
        if boundary < stop_at {
            snaps.push(phase_snap(&sys, &responder));
        }
    }
    // Drain: recovery re-delivers whatever the outages and purges cost.
    let drain_end = sys.engine.now() + 50 * phase_len;
    while sys.tracker().borrow().outstanding() > 0 && sys.engine.now() < drain_end {
        sys.engine.run_for(100);
        responder.poll(&mut sys);
    }
    snaps.push(phase_snap(&sys, &responder));
    let leftover = sys.tracker().borrow().outstanding();

    snaps
        .windows(2)
        .zip(["healthy", "rerouted", "degraded", "healed"])
        .map(|(w, phase)| {
            let (a, b) = (w[0], w[1]);
            let mcasts = b.mcasts - a.mcasts;
            FaultResponseRow {
                scheme: label.to_string(),
                phase,
                mcasts,
                mcast_mean: if mcasts > 0 {
                    (b.latency_sum - a.latency_sum) / mcasts as f64
                } else {
                    0.0
                },
                throughput: (b.payload - a.payload) as f64 / n as f64 / (b.at - a.at).max(1) as f64,
                peeled: b.peeled - a.peeled,
                retransmits: b.retransmits - a.retransmits,
                replications: b.replications - a.replications,
                reroutes: b.reroutes - a.reroutes,
                rejected: b.rejected - a.rejected,
                leftover: if phase == "healed" { leftover } else { 0 },
            }
        })
        .collect()
}

/// E17 (robustness extension): the full online fault-response pipeline
/// measured phase by phase — healthy baseline, vetted reroute around a
/// single cut, graceful degradation under a crossed cut that defeats every
/// single-worm covering, and restoration after heal — for both buffer
/// organizations.
pub fn e17_fault_response(
    base: &SystemConfig,
    phase_len: netsim::Cycle,
    load: f64,
    degree: usize,
    len: u16,
) -> Vec<FaultResponseRow> {
    let mut jobs = Vec::new();
    for (label, arch) in [
        ("CB-HW", SwitchArch::CentralBuffer),
        ("IB-HW", SwitchArch::InputBuffered),
    ] {
        let cfg = SystemConfig {
            arch,
            mcast: McastImpl::HwBitString,
            recovery: Some(RecoveryConfig::default()),
            response: Some(crate::respond::ResponseConfig::default()),
            ..base.clone()
        };
        jobs.push((label, cfg));
    }
    sweep::parallel_map(jobs, sweep::jobs(), |(label, cfg)| {
        e17_drive(label, cfg, phase_len, load, degree, len)
    })
    .into_iter()
    .flatten()
    .collect()
}

// ---------------------------------------------------------------------
// E18: fault storm under the resident control plane (mdw-routed)
// ---------------------------------------------------------------------

/// One scheme's storm outcome (E18).
#[derive(Debug, Clone)]
pub struct FaultStormRow {
    /// Scheme label (CB-HW / IB-HW).
    pub scheme: String,
    /// Multicasts completed across the whole run.
    pub mcasts: u64,
    /// Masked reroutes installed.
    pub reroutes: u64,
    /// Reroute candidates the vet rejected.
    pub rejected: u64,
    /// Heals back to the unmasked tables.
    pub heals: u64,
    /// Detections that went stale inside the quiesce (no install needed).
    pub stale: u64,
    /// Links the flap damper suppressed.
    pub suppressions: u64,
    /// Suppressed links reinstated after cooling.
    pub reinstatements: u64,
    /// Backoff retries after rejected/incomplete responses.
    pub retries: u64,
    /// Watchdog deadline breaches.
    pub watchdog: u64,
    /// Degradation-ladder rung changes, both directions.
    pub ladder: u64,
    /// p50 detect→install latency, cycles.
    pub p50: u64,
    /// p99 detect→install latency, cycles.
    pub p99: u64,
    /// Worst detect→install latency, cycles.
    pub lat_max: u64,
    /// Route queries answered during the storm.
    pub queries: u64,
    /// Queries answered with hardware-worm coverage (vs full U-Min peel).
    pub q_worm: u64,
    /// Fraction of cycles on the full-mcast rung.
    pub avail_full: f64,
    /// Fraction of cycles on the masked-mcast rung.
    pub avail_masked: f64,
    /// Fraction of cycles on the U-Min-only rung.
    pub avail_umin: f64,
    /// Fraction of cycles read-only.
    pub avail_ro: f64,
    /// Messages still undelivered after the drain.
    pub leftover: usize,
    /// Availability verdict: `available` (never read-only, nothing
    /// lost), `degraded` (read-only cycles but nothing lost), or
    /// `failed` (payload lost).
    pub verdict: &'static str,
}

impl TableRow for FaultStormRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "scheme",
            "mcasts",
            "reroutes",
            "rejected",
            "heals",
            "stale",
            "suppressions",
            "reinstatements",
            "retries",
            "watchdog",
            "ladder",
            "p50",
            "p99",
            "lat_max",
            "queries",
            "q_worm",
            "avail_full",
            "avail_masked",
            "avail_umin",
            "avail_ro",
            "leftover",
            "verdict",
        ]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            self.mcasts.to_string(),
            self.reroutes.to_string(),
            self.rejected.to_string(),
            self.heals.to_string(),
            self.stale.to_string(),
            self.suppressions.to_string(),
            self.reinstatements.to_string(),
            self.retries.to_string(),
            self.watchdog.to_string(),
            self.ladder.to_string(),
            self.p50.to_string(),
            self.p99.to_string(),
            self.lat_max.to_string(),
            self.queries.to_string(),
            self.q_worm.to_string(),
            f(self.avail_full),
            f(self.avail_masked),
            f(self.avail_umin),
            f(self.avail_ro),
            self.leftover.to_string(),
            self.verdict.to_string(),
        ]
    }
}

/// Drives one scheme through the storm: two overlapping scripted cuts, a
/// flapping link the damper must suppress, and a route query answered
/// from the live tables every slice — all under the full storm
/// controller (damping, backoff, ladder, watchdog).
fn e18_drive(
    label: &str,
    cfg: SystemConfig,
    phase_len: netsim::Cycle,
    load: f64,
    degree: usize,
    len: u16,
) -> FaultStormRow {
    let k = match cfg.topology {
        TopologyKind::KaryTree { k, n: 2 } => k,
        other => panic!("E18 runs on 2-stage k-ary trees, got {other:?}"),
    };
    let n = cfg.n_hosts();
    let stop_at = 6 * phase_len;
    let spec = TrafficSpec::multiple_multicast(load, degree, len);
    let sources = crate::workload::make_sources(&spec, n, cfg.seed, Some(stop_at));
    let routed = cfg.routed.clone().unwrap_or_default();
    let response = cfg.response.clone().unwrap_or_default();
    let mut sys = build_system(cfg, sources, None);

    // Storm script. Two real cuts overlap in [2P, 3P); the flapping link
    // blinks at twice the debounce period through [P, 3P) so both edges
    // of every blink confirm and the damper has something to suppress.
    let d1 = NodeId::from(k);
    let d2 = NodeId::from(2 * k);
    let (cut1, _) = crate::respond::outage::single_cut(&sys, d1);
    sys.engine.script_outage(cut1, phase_len, 4 * phase_len);
    let mut cut2 = None;
    for (link, _) in crate::respond::outage::crossed_cut(&sys, d1, d2) {
        if link != cut1 {
            sys.engine.script_outage(link, 2 * phase_len, 3 * phase_len);
            cut2 = Some(link);
        }
    }
    let flap = *sys
        .links
        .fabric
        .iter()
        .rev()
        .find(|l| Some(**l) != cut2 && **l != cut1)
        .expect("a fabric link that is not a scripted cut");
    let blink = 2 * response.debounce.max(1);
    let mut t = phase_len;
    while t + blink < 3 * phase_len {
        sys.engine.script_outage(flap, t, t + blink);
        t += 2 * blink;
    }

    let mut storm = crate::routed::StormResponder::new(routed, response, &mut sys);
    let mut queries = 0u64;
    let mut q_worm = 0u64;
    let max_hops = sys.config.response.as_ref().map_or(64, |r| r.max_hops);
    let mut probe = SimRng::new(sys.config.seed ^ 0xE18).fork(3);

    let run_to = |sys: &mut crate::build::System,
                  storm: &mut crate::routed::StormResponder,
                  boundary: netsim::Cycle,
                  probe: &mut SimRng,
                  queries: &mut u64,
                  q_worm: &mut u64| {
        while sys.engine.now() < boundary {
            let step = 32.min(boundary - sys.engine.now());
            sys.engine.run_for(step);
            storm.tick(sys);
            // The concurrent query load: one route lookup per slice from
            // a rotating source, answered exactly the way the resident
            // service answers it (ladder override, then planner).
            let src = NodeId::from(probe.below(n));
            let dests = probe.dest_set(n, degree.min(n - 1), src);
            *queries += 1;
            if storm.rung() < collectives::Rung::UMinOnly {
                let plan = collectives::DegradePlanner {
                    tables: sys.tables.clone(),
                    topo: sys.topology.clone(),
                    policy: sys.config.switch.policy,
                    max_hops,
                }
                .split(src, &dests);
                if plan.worm.count() > 0 {
                    *q_worm += 1;
                }
            }
        }
    };
    run_to(
        &mut sys,
        &mut storm,
        stop_at,
        &mut probe,
        &mut queries,
        &mut q_worm,
    );
    // Drain: recovery re-delivers whatever the storm cost; storm control
    // stays live so the heal path and damper cool-off are exercised.
    let drain_end = sys.engine.now() + 50 * phase_len;
    while sys.tracker().borrow().outstanding() > 0 && sys.engine.now() < drain_end {
        let next = (sys.engine.now() + 128).min(drain_end);
        run_to(
            &mut sys,
            &mut storm,
            next,
            &mut probe,
            &mut queries,
            &mut q_worm,
        );
    }
    // Cool-down: the damper's penalty must decay past the reuse
    // threshold and the ladder climb its hysteresis windows before the
    // fabric is back to full multicast; bounded so a storm that somehow
    // parked read-only still terminates and reports it.
    let cool_end = sys.engine.now() + 40 * phase_len;
    while storm.rung() != collectives::Rung::FullMcast && sys.engine.now() < cool_end {
        let next = (sys.engine.now() + 128).min(cool_end);
        run_to(
            &mut sys,
            &mut storm,
            next,
            &mut probe,
            &mut queries,
            &mut q_worm,
        );
    }
    let leftover = sys.tracker().borrow().outstanding();

    let resp = storm.responder();
    let c = resp.counters();
    let sc = storm.counters();
    let lat = resp.latency();
    let rung_cycles = storm.rung_cycles();
    let total: u64 = rung_cycles.iter().sum::<u64>().max(1);
    let frac = |i: usize| rung_cycles[i] as f64 / total as f64;
    let verdict = if leftover > 0 {
        "failed"
    } else if rung_cycles[3] > 0 {
        "degraded"
    } else {
        "available"
    };
    FaultStormRow {
        scheme: label.to_string(),
        mcasts: sys.tracker().borrow().mcast_last.summary().count,
        reroutes: c.reroutes,
        rejected: c.reroutes_rejected,
        heals: c.heals,
        stale: c.stale_detects,
        suppressions: sc.suppressions,
        reinstatements: sc.reinstatements,
        retries: sc.retries,
        watchdog: sc.watchdog_trips,
        ladder: storm.ladder_transitions(),
        p50: lat.percentile(50.0),
        p99: lat.percentile(99.0),
        lat_max: lat.max(),
        queries,
        q_worm,
        avail_full: frac(0),
        avail_masked: frac(1),
        avail_umin: frac(2),
        avail_ro: frac(3),
        leftover,
        verdict,
    }
}

/// E18 with an explicit worker count (the determinism suite compares
/// 1-vs-N worker runs byte for byte without racing the global pool
/// setting).
pub fn e18_fault_storm_with_jobs(
    base: &SystemConfig,
    phase_len: netsim::Cycle,
    load: f64,
    degree: usize,
    len: u16,
    jobs: usize,
) -> Vec<FaultStormRow> {
    let mut sweep_jobs = Vec::new();
    for (label, arch) in [
        ("CB-HW", SwitchArch::CentralBuffer),
        ("IB-HW", SwitchArch::InputBuffered),
    ] {
        let cfg = SystemConfig {
            arch,
            mcast: McastImpl::HwBitString,
            recovery: Some(RecoveryConfig::default()),
            response: Some(crate::respond::ResponseConfig::default()),
            routed: Some(crate::routed::RoutedConfig::default()),
            ..base.clone()
        };
        sweep_jobs.push((label, cfg));
    }
    sweep::parallel_map(sweep_jobs, jobs, |(label, cfg)| {
        e18_drive(label, cfg, phase_len, load, degree, len)
    })
}

/// E18 (robustness extension): a seeded fault storm — overlapping cuts
/// plus a flapping link — handled by the resident control plane's full
/// storm machinery (flap damping, retry backoff, degradation ladder,
/// watchdog) under concurrent route-query load, with an availability
/// verdict and first-class detect→install latency percentiles per
/// architecture.
pub fn e18_fault_storm(
    base: &SystemConfig,
    phase_len: netsim::Cycle,
    load: f64,
    degree: usize,
    len: u16,
) -> Vec<FaultStormRow> {
    e18_fault_storm_with_jobs(base, phase_len, load, degree, len, sweep::jobs())
}

// ---------------------------------------------------------------------
// E19: exhaustive crash sweep of the journaled control plane
// ---------------------------------------------------------------------

/// One scheme's crash-sweep verdict (E19): the oracle run's fault
/// response, and whether a responder crash at *every* protocol boundary
/// — with and without a torn journal tail — recovered to a byte-identical
/// [`RunOutcome`] with zero torn-install cycles.
#[derive(Debug, Clone)]
pub struct CrashStormRow {
    /// Scheme label (CB-HW / IB-HW).
    pub scheme: String,
    /// Protocol-step boundaries the oracle crossed (crash sites swept
    /// per tear variant).
    pub boundaries: u64,
    /// Injected runs executed (boundaries × tear variants).
    pub runs: u64,
    /// Injected runs whose recovered outcome diverged from the oracle.
    pub mismatches: u64,
    /// Torn-install cycles summed over every injected run.
    pub torn_cycles: u64,
    /// Responder recoveries completed across the sweep.
    pub recoveries: u64,
    /// p50 restart→caught-up recovery latency, ns (wall clock; kept out
    /// of the rendered table so serial/parallel suite renders stay
    /// byte-identical — the recorded numbers land in
    /// `results/BENCH_sweep.json` as `crash_recovery_p50_ns`).
    pub rec_p50_ns: u64,
    /// p99 restart→caught-up recovery latency, ns (wall clock; see
    /// `rec_p50_ns`).
    pub rec_p99_ns: u64,
    /// Masked reroutes the oracle installed (two-phase commits exercised).
    pub reroutes: u64,
    /// Heals back to the unmasked tables in the oracle run.
    pub heals: u64,
    /// Event-log entries + latency samples the oracle's bounded rings
    /// evicted.
    pub dropped: u64,
    /// FNV-64 digest of the oracle responder's durable state at run end.
    pub digest: String,
    /// `identical` (every crash recovered byte-identically, no torn
    /// installs) or `diverged`.
    pub verdict: &'static str,
}

impl TableRow for CrashStormRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "scheme",
            "boundaries",
            "runs",
            "mismatches",
            "torn_cycles",
            "recoveries",
            "reroutes",
            "heals",
            "dropped",
            "digest",
            "verdict",
        ]
    }
    fn cells(&self) -> Vec<String> {
        vec![
            self.scheme.clone(),
            self.boundaries.to_string(),
            self.runs.to_string(),
            self.mismatches.to_string(),
            self.torn_cycles.to_string(),
            self.recoveries.to_string(),
            self.reroutes.to_string(),
            self.heals.to_string(),
            self.dropped.to_string(),
            self.digest.clone(),
            self.verdict.to_string(),
        ]
    }
}

/// Drives one scheme through the exhaustive crash sweep: a seeded
/// [`FaultPlan`] outage schedule forces reroute and heal episodes, the
/// oracle pass counts the protocol boundaries, and one injected run per
/// (boundary, tear) pair crashes the responder there.
fn e19_drive(
    label: &str,
    cfg: SystemConfig,
    phase_len: netsim::Cycle,
    load: f64,
    degree: usize,
    len: u16,
) -> CrashStormRow {
    let spec = TrafficSpec::multiple_multicast(load, degree, len);
    let run = RunConfig {
        warmup: 0,
        measure: 4 * phase_len,
        drain_max: 20 * phase_len,
        watchdog_grace: 6 * phase_len,
        faults: None,
        // Three bounded cuts: two overlapping (a crossed reroute, or a
        // vet rejection if the pair partitions the fabric — either way
        // deterministic), then a clean fail-and-heal window. Every link
        // is healthy again before the drain, so each injected run stays
        // short and the boundary count stays proportional to the storm,
        // not the run length.
        outages: vec![
            (0, phase_len, 2 * phase_len),
            (1, phase_len + phase_len / 4, 2 * phase_len - phase_len / 4),
            (2, 5 * phase_len / 2, 7 * phase_len / 2),
        ],
    };
    let sweep = crate::chaos::run_crash_sweep(&cfg, &spec, &run, &[8]);
    let verdict = if sweep.mismatches.is_empty() && sweep.torn_cycles == 0 {
        "identical"
    } else {
        "diverged"
    };
    CrashStormRow {
        scheme: label.to_string(),
        boundaries: sweep.boundaries,
        runs: sweep.runs,
        mismatches: sweep.mismatches.len() as u64,
        torn_cycles: sweep.torn_cycles,
        recoveries: sweep.recoveries,
        rec_p50_ns: sweep.recovery_ns.percentile(50.0),
        rec_p99_ns: sweep.recovery_ns.percentile(99.0),
        reroutes: sweep.oracle.response.reroutes,
        heals: sweep.oracle.response.heals,
        dropped: sweep.oracle.response_dropped,
        digest: sweep.oracle.response_digest.clone().unwrap_or_default(),
        verdict,
    }
}

/// E19 (crash storm): deterministic crash injection at **every**
/// protocol-step boundary of the journaled fault responder, per
/// architecture, under a seeded outage schedule. Each crash site is swept
/// clean and with a torn journal tail; the recovered run must reproduce
/// the uncrashed oracle's [`RunOutcome`] byte for byte with the engine's
/// torn-install audit silent throughout. Reports the sweep size, the
/// recovery-latency percentiles, and the verdict.
pub fn e19_crash_storm(
    base: &SystemConfig,
    phase_len: netsim::Cycle,
    load: f64,
    degree: usize,
    len: u16,
) -> Vec<CrashStormRow> {
    let mut jobs = Vec::new();
    for (label, arch) in [
        ("CB-HW", SwitchArch::CentralBuffer),
        ("IB-HW", SwitchArch::InputBuffered),
    ] {
        let cfg = SystemConfig {
            arch,
            mcast: McastImpl::HwBitString,
            recovery: Some(RecoveryConfig::default()),
            response: Some(crate::respond::ResponseConfig::default()),
            epoch_audit: true,
            ..base.clone()
        };
        jobs.push((label, cfg));
    }
    // The chaos handle is installed thread-locally and consumed on the
    // worker thread that runs the sweep, so per-scheme fan-out is safe.
    sweep::parallel_map(jobs, sweep::jobs(), |(label, cfg)| {
        e19_drive(label, cfg, phase_len, load, degree, len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> SystemConfig {
        SystemConfig {
            topology: TopologyKind::KaryTree { k: 2, n: 3 }, // 8 hosts
            ..SystemConfig::default()
        }
    }

    #[test]
    fn e18_storm_suppresses_flaps_and_loses_nothing() {
        let base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 }, // 16 hosts
            ..SystemConfig::default()
        };
        let rows = e18_fault_storm(&base, 2_500, 0.04, 4, 16);
        assert_eq!(rows.len(), 2, "CB-HW and IB-HW");
        for r in &rows {
            assert_eq!(r.leftover, 0, "{} lost messages in the storm", r.scheme);
            assert_ne!(r.verdict, "failed", "{}", r.scheme);
            assert!(r.reroutes >= 1, "{} must reroute around the cuts", r.scheme);
            assert!(r.heals >= 1, "{} must heal after the storm", r.scheme);
            assert!(
                r.suppressions >= 1,
                "{} damper must suppress the flapping link",
                r.scheme
            );
            assert!(
                r.reinstatements >= 1,
                "{} suppressed link must cool off and reinstate",
                r.scheme
            );
            assert!(r.p99 >= r.p50, "{} percentile ordering", r.scheme);
            assert!(r.p99 > 0, "{} must record response latency", r.scheme);
            assert!(r.ladder >= 2, "{} ladder must move and recover", r.scheme);
            assert!(r.queries > 0 && r.q_worm > 0, "{} query load ran", r.scheme);
            let total = r.avail_full + r.avail_masked + r.avail_umin + r.avail_ro;
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{} fractions sum to 1",
                r.scheme
            );
            assert!(
                r.avail_full > 0.0 && r.avail_masked > 0.0,
                "{} storm must visit both healthy and masked rungs",
                r.scheme
            );
        }
    }

    #[test]
    fn e19_crash_sweep_recovers_byte_identically() {
        let base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 2, n: 2 }, // 4 hosts
            ..SystemConfig::default()
        };
        // Phase must clear debounce (64) + drain_wait (256) + purge so the
        // cut is still confirmed-down when the install window opens;
        // shorter phases make every episode go stale.
        let rows = e19_crash_storm(&base, 400, 0.02, 2, 8);
        assert_eq!(rows.len(), 2, "CB-HW and IB-HW");
        for r in &rows {
            assert!(r.boundaries > 0, "{} crossed no boundaries", r.scheme);
            assert_eq!(r.runs, 2 * r.boundaries, "clean + torn tear variants");
            assert_eq!(r.mismatches, 0, "{} diverged after a crash", r.scheme);
            assert_eq!(r.torn_cycles, 0, "{} tore an install", r.scheme);
            assert!(r.reroutes >= 1, "{} oracle must reroute", r.scheme);
            assert!(
                r.recoveries >= r.runs,
                "{}: every injected run recovers at least once",
                r.scheme
            );
            assert!(r.rec_p99_ns >= r.rec_p50_ns, "{}", r.scheme);
            assert!(!r.digest.is_empty(), "{} oracle digest missing", r.scheme);
            assert_eq!(r.verdict, "identical", "{}", r.scheme);
        }
    }

    #[test]
    fn e17_phases_reroute_degrade_and_heal_losslessly() {
        let base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 }, // 16 hosts
            ..SystemConfig::default()
        };
        let rows = e17_fault_response(&base, 2_500, 0.04, 4, 16);
        assert_eq!(rows.len(), 8, "2 schemes x 4 phases");
        for r in &rows {
            assert_eq!(r.leftover, 0, "{}/{} lost messages", r.scheme, r.phase);
            assert_eq!(
                r.rejected, 0,
                "honest masked rebuilds never fail the deadlock vet"
            );
            assert!(
                r.mcasts > 0,
                "{}/{} completed no multicasts",
                r.scheme,
                r.phase
            );
        }
        for scheme in ["CB-HW", "IB-HW"] {
            let get = |phase: &str| {
                rows.iter()
                    .find(|r| r.scheme == scheme && r.phase == phase)
                    .expect("phase row")
            };
            assert!(get("rerouted").reroutes >= 1, "{scheme} must reroute");
            assert_eq!(get("healthy").peeled, 0, "{scheme} healthy never peels");
            assert!(
                get("degraded").peeled > 0,
                "{scheme} crossed cut must force the U-Min fallback"
            );
            assert!(
                get("healed").replications > 0,
                "{scheme} hardware replication must resume after heal"
            );
        }
    }

    #[test]
    fn e1_lists_core_parameters() {
        let rows = e1_parameters(&SystemConfig::default(), &RunConfig::default());
        assert!(rows
            .iter()
            .any(|r| r.name == "processors" && r.value == "64"));
        assert!(rows.iter().any(|r| r.name.contains("central queue")));
    }

    #[test]
    fn e2_rows_cover_all_schemes_and_loads() {
        let rows =
            e2_e3_multiple_multicast(&tiny_base(), &RunConfig::quick(), &[0.02, 0.05], 4, 16);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| !r.deadlocked));
        assert!(rows.iter().all(|r| r.mcasts > 0));
    }

    #[test]
    fn e10_software_is_slower_than_hardware() {
        let rows = e10_single_multicast(&tiny_base(), &[4], 32);
        let get = |s: &str| rows.iter().find(|r| r.scheme == s).unwrap().latency;
        let (cb, ib, sw) = (get("CB-HW"), get("IB-HW"), get("SW-CB"));
        assert!(sw > cb, "SW {sw} must exceed CB-HW {cb}");
        assert!(sw > ib, "SW {sw} must exceed IB-HW {ib}");
        let ratio = rows
            .iter()
            .find(|r| r.scheme == "SW-CB")
            .unwrap()
            .ratio_vs_cbhw;
        assert!(ratio > 1.5, "SW/HW ratio {ratio} too small");
    }

    #[test]
    fn e11_barrier_completes_and_hw_wins() {
        let rows = e11_barrier(&tiny_base(), &[2], 3); // 16 hosts
        assert_eq!(rows.len(), 2);
        let hw = rows.iter().find(|r| r.scheme == "HW release").unwrap();
        let sw = rows.iter().find(|r| r.scheme == "SW release").unwrap();
        assert_eq!(hw.rounds, 3);
        assert_eq!(sw.rounds, 3);
        assert!(
            hw.mean_latency < sw.mean_latency,
            "hardware barrier ({}) must beat software ({})",
            hw.mean_latency,
            sw.mean_latency
        );
    }

    #[test]
    fn e15_patterns_run_clean_on_16_hosts() {
        let rows = e15_patterns(&tiny_base(), &RunConfig::quick(), 0.2, 32);
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| !r.deadlocked), "{rows:?}");
        assert!(rows.iter().all(|r| r.unicast_mean > 0.0));
    }

    #[test]
    fn e14_combining_barrier_beats_host_level() {
        let rows = e14_combining_barrier(&tiny_base(), &[2], 3); // 16 hosts
        assert_eq!(rows.len(), 3);
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.scheme == s)
                .unwrap_or_else(|| panic!("{s} row missing"))
        };
        let comb = get("switch-combining");
        let host_hw = get("host gather + HW release");
        let host_sw = get("host gather + SW release");
        assert_eq!(comb.rounds, 3);
        assert!(
            comb.mean_latency < host_hw.mean_latency,
            "combining ({}) must beat host-level HW ({})",
            comb.mean_latency,
            host_hw.mean_latency
        );
        assert!(host_hw.mean_latency < host_sw.mean_latency);
    }

    #[test]
    fn e13_allreduce_correct_and_hw_faster() {
        let rows = e13_allreduce(&tiny_base(), &[2], 3); // 16 hosts
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.result_ok && r.rounds == 3));
        let hw = rows.iter().find(|r| r.scheme == "HW broadcast").unwrap();
        let sw = rows.iter().find(|r| r.scheme == "SW broadcast").unwrap();
        assert!(
            hw.mean_latency < sw.mean_latency,
            "hardware all-reduce ({}) must beat software ({})",
            hw.mean_latency,
            sw.mean_latency
        );
    }

    #[test]
    fn e16_recovery_keeps_delivery_lossless_under_drops() {
        let run = RunConfig {
            warmup: 500,
            measure: 4_000,
            drain_max: 400_000,
            ..RunConfig::default()
        };
        let rows = e16_fault_sweep(&tiny_base(), &run, 0.05, &[0.0, 1e-4, 1e-3], 4, 32);
        assert_eq!(rows.len(), 6);
        // Lossless delivery at every probed rate, for both architectures.
        assert!(
            rows.iter().all(|r| r.leftover == 0 && r.gave_up == 0),
            "{rows:?}"
        );
        // The clean baseline needs no retransmissions...
        assert!(rows
            .iter()
            .filter(|r| r.drop_rate == 0.0)
            .all(|r| r.worms_dropped == 0 && r.retransmits == 0));
        // ...while the lossy points actually exercised the protocol.
        assert!(
            rows.iter()
                .filter(|r| r.drop_rate >= 1e-3)
                .all(|r| r.worms_dropped > 0 && r.retransmits > 0),
            "{rows:?}"
        );
    }

    #[test]
    fn e9_ablations_all_run_clean() {
        let rows = e9_ablations(&tiny_base(), &RunConfig::quick(), 0.05);
        assert!(rows.len() >= 8);
        // Every variant except the deliberately unsafe synchronous-
        // replication one must be deadlock-free.
        assert!(
            rows.iter()
                .filter(|r| !r.variant.contains("synchronous"))
                .all(|r| !r.deadlocked),
            "{rows:?}"
        );
    }
}
