//! Cross-validation of the static analyzer against the runtime.
//!
//! The contract `mdw-lint` sells: a config it **rejects** would have
//! deadlocked (so rejecting it before a single cycle runs saves the
//! watchdog's thousands of wasted cycles), a config it **warns** about
//! carries a real hazard the runtime can demonstrate, and every config
//! the experiment suite actually ships comes back clean.

use collectives::{MessageSpec, ScheduledSource, SilentSource, TrafficSource};
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::experiments::scheme_configs;
use mdworm::{build_system, capture_deadlock_report, System};
use netsim::destset::DestSet;
use netsim::ids::NodeId;
use netsim::message::MessageKind;
use switches::ReplicationMode;

/// The crafted deadlock-prone config (shipped as
/// `configs/undersized-central-buffer.mdw`): 128-flit worms against a
/// 32-flit central queue, violating the paper's "a packet accepted for
/// transmission can eventually be completely buffered" condition.
fn undersized_central_buffer() -> SystemConfig {
    let mut cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 3 },
        arch: SwitchArch::CentralBuffer,
        mcast: McastImpl::HwBitString,
        ..SystemConfig::default()
    };
    cfg.switch.chunk_flits = 8;
    cfg.switch.cq_chunks = 4;
    cfg.switch.max_packet_flits = 128;
    cfg
}

#[test]
fn undersized_central_buffer_is_rejected_statically() {
    let cfg = undersized_central_buffer();
    let report = cfg.report();
    assert!(report.has_errors(), "{:?}", report.diagnostics);
    assert!(
        report.errors().any(|d| d.code == "cb-packet-exceeds-cq"),
        "the buffer-sufficiency check must name the violation: {:?}",
        report.diagnostics
    );
    assert!(cfg.validate().is_err(), "validate() must refuse to build");
    assert!(report.render_human().contains("REJECTED"));
    // The fabric pass never ran — no point enumerating a CDG for a
    // system the sizing checks already condemned.
    assert_eq!(report.stats.channels, 0);
}

/// Builds the paper-§3 crossed-grant scenario on a single 8-port switch:
/// a warm-up unicast rotates one output's grant pointer, then two
/// multicasts to the same pair of hosts decode together and each wins
/// one of the two outputs the other needs. Runs until traffic drains or
/// progress stalls for a long grace period; returns the system for
/// inspection.
fn run_crossed_multicasts(replication: ReplicationMode) -> System {
    let mut cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 1 },
        arch: SwitchArch::InputBuffered,
        mcast: McastImpl::HwBitString,
        ..SystemConfig::default()
    };
    cfg.switch.replication = replication;
    let n = cfg.n_hosts();
    let mcast = MessageSpec {
        kind: MessageKind::Multicast(DestSet::from_nodes(n, [2, 3].map(NodeId))),
        payload_flits: 48,
    };
    let mut sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|_| Box::new(SilentSource) as Box<dyn TrafficSource>)
        .collect();
    sources[1] = Box::new(ScheduledSource::new(vec![(
        1,
        MessageSpec {
            kind: MessageKind::Unicast(NodeId(3)),
            payload_flits: 8,
        },
    )]));
    sources[0] = Box::new(ScheduledSource::new(vec![(200, mcast.clone())]));
    sources[2] = Box::new(ScheduledSource::new(vec![(200, mcast)]));
    let mut sys = build_system(cfg, sources, None);

    let mut last_moves = sys.engine.total_flit_moves();
    let mut last_progress = sys.engine.now();
    while sys.engine.now() < 30_000 {
        sys.engine.run_for(200);
        if sys.tracker().borrow().outstanding() == 0 {
            break;
        }
        let moves = sys.engine.total_flit_moves();
        if moves != last_moves {
            last_moves = moves;
            last_progress = sys.engine.now();
        } else if sys.engine.now() - last_progress >= 3_000 {
            break;
        }
    }
    sys
}

/// The analyzer's warning (not error) severity for synchronous
/// replication on input-buffered switches is exactly right: the config
/// is buildable and flagged, the hazard is real (the watchdog catches
/// the predicted deadlock), and flipping the one warned-about knob back
/// to asynchronous replication makes the same traffic drain clean.
#[test]
fn sync_replication_warning_is_confirmed_by_the_watchdog() {
    let mut cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 1 },
        arch: SwitchArch::InputBuffered,
        mcast: McastImpl::HwBitString,
        ..SystemConfig::default()
    };
    cfg.switch.replication = ReplicationMode::Synchronous;
    let report = cfg.report();
    assert!(!report.has_errors(), "{:?}", report.diagnostics);
    assert!(
        report
            .warnings()
            .any(|w| w.code == "sync-replication-hazard"),
        "{:?}",
        report.diagnostics
    );
    cfg.validate().expect("warned configs still build");

    let mut wedged = run_crossed_multicasts(ReplicationMode::Synchronous);
    assert!(
        wedged.tracker().borrow().outstanding() > 0,
        "the hazard the analyzer warned about must be demonstrable"
    );
    let last_progress = wedged.engine.now();
    let forensics = capture_deadlock_report(&mut wedged, last_progress);
    assert!(
        !forensics.cycle.is_empty(),
        "the wedge is a genuine circular wait: {forensics:?}"
    );

    let drained = run_crossed_multicasts(ReplicationMode::Asynchronous);
    assert_eq!(
        drained.tracker().borrow().outstanding(),
        0,
        "asynchronous replication (the unwarned default) drains the same traffic"
    );
}

/// Every configuration the experiment suite sweeps — the three schemes
/// over the paper's default 64-processor system and the system-size /
/// topology variants E10..E16 reach for — passes the analyzer with zero
/// errors and an acyclic channel-dependency graph.
#[test]
fn shipped_experiment_configs_pass_clean() {
    let mut bases = vec![SystemConfig::default()];
    for n in 1..=3 {
        bases.push(SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n },
            ..SystemConfig::default()
        });
    }
    bases.push(SystemConfig {
        topology: TopologyKind::KaryTree { k: 2, n: 3 },
        ..SystemConfig::default()
    });
    for base in &bases {
        for (label, cfg) in scheme_configs(base) {
            let report = cfg.report();
            assert!(
                !report.has_errors(),
                "{label} on {:?}: {:?}",
                base.topology,
                report.diagnostics
            );
            assert!(
                report.cycles.is_empty(),
                "{label} on {:?}: CDG must be acyclic",
                base.topology
            );
            assert!(report.stats.channels > 0, "{label}: fabric pass ran");
        }
    }
}

/// The differential contract behind `mdw-lint --certify`, over every
/// shipped config file: each parses; on every statically sound one the
/// certificate checker accepts and agrees with the explicit CDG
/// analyzer wherever the explicit pass completes inside its budget; and
/// enabling certification changes *nothing* in the rendered report on
/// fabrics the explicit pass covers — the certified lint is
/// byte-identical there, warnings and all.
#[test]
fn shipped_config_files_certify_consistently() {
    let configs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(configs)
        .expect("configs dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "mdw"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.display();
        let text = std::fs::read_to_string(&path).expect("read config");
        let cfg = mdworm::cfgtext::parse_config(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        seen += 1;

        let mut plain_cfg = cfg.clone();
        plain_cfg.certify.enabled = false;
        let plain = plain_cfg.report();
        let mut certified_cfg = cfg.clone();
        certified_cfg.certify.enabled = true;
        let certified = certified_cfg.report();
        assert_eq!(
            plain.has_errors(),
            certified.has_errors(),
            "{name}: certification must not change the verdict: {:?}",
            certified.diagnostics
        );
        if plain.has_errors() {
            continue; // statically condemned — no fabric pass to compare
        }

        let cmp = certified_cfg.certify_comparison();
        assert!(cmp.certify_ok, "{name}: certificate must accept: {cmp:?}");
        assert!(cmp.agree, "{name}: verdicts must agree: {cmp:?}");
        if cmp.explicit_completed {
            assert!(cmp.explicit_ok, "{name}: {cmp:?}");
            assert_eq!(
                plain.render_human(),
                certified.render_human(),
                "{name}: certified lint must render byte-identically"
            );
            assert_eq!(plain.render_json(), certified.render_json(), "{name}");
        } else {
            // Past the budget the certified report carries the honest
            // exhaustion warning and the certificate's (larger) counts.
            assert!(
                certified
                    .warnings()
                    .any(|w| w.code == "cdg-budget-exhausted"),
                "{name}: {:?}",
                certified.diagnostics
            );
            assert!(cmp.dependencies > cmp.explicit_budget, "{name}: {cmp:?}");
        }
    }
    assert!(seen >= 8, "only {seen} shipped configs found");
}

/// The `mdw-lint` binary end-to-end over the shipped config files:
/// the SP2-style default passes, the crafted undersized-central-buffer
/// config is rejected with a nonzero exit code and a diagnostic naming
/// the buffer-sufficiency violation.
#[test]
fn mdw_lint_cli_flags_the_shipped_deadlock_config() {
    let configs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs");
    let run = |file: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_mdw-lint"))
            .arg(format!("{configs}/{file}"))
            .output()
            .expect("run mdw-lint")
    };

    let good = run("sp2-default.mdw");
    assert!(good.status.success(), "{good:?}");
    assert!(String::from_utf8_lossy(&good.stdout).contains("PASSED"));

    let bad = run("undersized-central-buffer.mdw");
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    let out = String::from_utf8_lossy(&bad.stdout);
    assert!(out.contains("REJECTED"), "{out}");
    assert!(out.contains("cb-packet-exceeds-cq"), "{out}");

    let warned = run("sync-replication-hazard.mdw");
    assert!(warned.status.success(), "{warned:?}");
    let out = String::from_utf8_lossy(&warned.stdout);
    assert!(out.contains("sync-replication-hazard"), "{out}");
}

/// `mdw-lint --certify` end-to-end: on the paper-scale default both
/// verdict paths run and agree; on the shipped 4K fat-tree the explicit
/// CDG honestly exhausts its budget and the certificate carries the
/// verdict — with exit code 0 either way.
#[test]
fn mdw_lint_certify_carries_the_verdict_at_scale() {
    let configs = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mdw-lint"))
        .args([
            "--certify",
            &format!("{configs}/sp2-default.mdw"),
            &format!("{configs}/fat-tree-4k.mdw"),
        ])
        .output()
        .expect("run mdw-lint --certify");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        text.matches("certify passed").count(),
        2,
        "both configs certify: {text}"
    );
    assert!(
        text.contains("explicit CDG agreed"),
        "sp2 default fits the budget: {text}"
    );
    assert!(
        text.contains("budget-exhausted") && text.contains("certificate carries the verdict"),
        "4K tier must record the exhaustion honestly: {text}"
    );
    assert!(!text.contains("certify FAILED"), "{text}");
}
