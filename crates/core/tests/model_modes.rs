//! Differential validation of the scaled model checker over every
//! shipped config (DESIGN.md §14).
//!
//! The reductions — symmetry quotient, ample-set partial-order
//! reduction, worker-striped frontiers, and the compositional
//! per-switch decomposition — are only admissible if they never change
//! a verdict. This suite pins that contract to the artifacts users
//! actually lint: for each `configs/*.mdw`, the unreduced sequential
//! oracle and every reduced/parallel/compositional configuration must
//! agree, verdicts must be byte-identical across worker counts, and
//! every counterexample must re-execute against the rebuilt unreduced
//! model (and, for central-buffer scenarios, replay through the pure
//! `cq_step` machine).

use mdw_analysis::{
    check_model_opts, replay_model_violation, ArchClass, CheckOutcome, ModelBounds, ModelMode,
    ModelOptions,
};
use mdworm::cfgtext::parse_config;
use mdworm::config::{SwitchArch, SystemConfig};
use switches::ReplicationMode;

/// Parses every shipped `configs/*.mdw` whose static lint is clean
/// enough to earn a model check (the crafted undersized-central-buffer
/// config is rejected before exploration, exactly as `mdw-lint` does).
fn shipped_configs() -> Vec<(String, SystemConfig)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs");
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("configs dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "mdw"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("read config");
        let cfg = parse_config(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        if cfg.report().has_errors() {
            continue; // statically rejected; the checker never sees it
        }
        out.push((name, cfg));
    }
    assert!(
        out.len() >= 4,
        "expected the shipped config set, got {out:?}"
    );
    out
}

fn model_inputs(cfg: &SystemConfig) -> (ArchClass, bool) {
    let arch = match cfg.arch {
        SwitchArch::CentralBuffer => ArchClass::CentralBuffer,
        SwitchArch::InputBuffered => ArchClass::InputBuffered,
    };
    (arch, cfg.switch.replication == ReplicationMode::Synchronous)
}

/// Every reduced/parallel/compositional configuration reaches the same
/// verdict as the unreduced oracle on every shipped config, at the
/// default bounds: verified configs stay verified, and the crafted
/// `sync-replication-hazard.mdw` fails in every mode with a
/// counterexample that re-executes cleanly against the rebuilt model.
#[test]
fn every_mode_agrees_with_the_oracle_on_shipped_configs() {
    let bounds = ModelBounds::default();
    let modes = [ModelMode::Exact, ModelMode::Compositional, ModelMode::Auto];
    for (name, cfg) in shipped_configs() {
        let (arch, sync) = model_inputs(&cfg);
        let oracle = check_model_opts(
            arch,
            sync,
            cfg.switch.policy,
            &bounds,
            &ModelOptions::oracle(),
        );
        for mode in modes {
            for jobs in [1, 4] {
                let opts = ModelOptions {
                    mode,
                    jobs,
                    ..ModelOptions::default()
                };
                let out = check_model_opts(arch, sync, cfg.switch.policy, &bounds, &opts);
                assert_eq!(
                    out.is_verified(),
                    oracle.is_verified(),
                    "{name} ({mode:?}, jobs={jobs}) disagrees with the oracle: {out:?}"
                );
                if let CheckOutcome::Violated(v) = &out {
                    let replay = replay_model_violation(arch, sync, cfg.switch.policy, &bounds, v)
                        .unwrap_or_else(|e| {
                            panic!("{name} ({mode:?}, jobs={jobs}): counterexample rejected: {e}")
                        });
                    assert_eq!(replay.steps, v.trace.len(), "{name} ({mode:?})");
                }
            }
        }
        // The one shipped hazard config must actually be caught.
        if name == "sync-replication-hazard.mdw" {
            assert!(!oracle.is_verified(), "{name} must deadlock: {oracle:?}");
        } else {
            assert!(oracle.is_verified(), "{name} must verify: {oracle:?}");
        }
    }
}

/// Worker striping is an implementation detail: the complete outcome —
/// stats on verification, the minimal counterexample (scenario, kind,
/// trace, events) on violation — is byte-identical at 1, 2 and 4 jobs
/// on every shipped config.
#[test]
fn verdicts_are_byte_identical_across_worker_counts_on_shipped_configs() {
    let bounds = ModelBounds::default();
    for (name, cfg) in shipped_configs() {
        let (arch, sync) = model_inputs(&cfg);
        for mode in [ModelMode::Exact, ModelMode::Auto] {
            let render = |jobs: usize| {
                let opts = ModelOptions {
                    mode,
                    jobs,
                    ..ModelOptions::default()
                };
                format!(
                    "{:?}",
                    check_model_opts(arch, sync, cfg.switch.policy, &bounds, &opts)
                )
            };
            let one = render(1);
            assert_eq!(one, render(2), "{name} ({mode:?}): jobs=2 diverged");
            assert_eq!(one, render(4), "{name} ({mode:?}): jobs=4 diverged");
        }
    }
}

/// The scale tier the reductions exist for: at a 16-switch fabric bound
/// with a 50k-state budget the unreduced oracle exhausts its bound,
/// while the reduced exact checker and the auto (compositional beyond 4
/// switches) checker both verify the shipped default config well inside
/// it.
#[test]
fn reduced_checker_verifies_where_the_oracle_exhausts_its_state_budget() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs");
    let text = std::fs::read_to_string(format!("{dir}/sp2-default.mdw")).expect("read config");
    let cfg = parse_config(&text).expect("parse");
    let (arch, sync) = model_inputs(&cfg);
    let bounds = ModelBounds {
        max_switches: 16,
        max_states: 50_000,
        ..ModelBounds::default()
    };

    let oracle = check_model_opts(
        arch,
        sync,
        cfg.switch.policy,
        &bounds,
        &ModelOptions::oracle(),
    );
    let CheckOutcome::Violated(v) = &oracle else {
        panic!("the unreduced oracle must exhaust 50k states at 16 switches: {oracle:?}");
    };
    assert_eq!(v.kind, "state-bound", "{v}");

    for mode in [ModelMode::Exact, ModelMode::Auto] {
        let opts = ModelOptions {
            mode,
            ..ModelOptions::default()
        };
        let out = check_model_opts(arch, sync, cfg.switch.policy, &bounds, &opts);
        let CheckOutcome::Verified(stats) = &out else {
            panic!("reduced {mode:?} must verify the 16-switch tier: {out:?}");
        };
        assert!(
            stats.states * 10 <= bounds.max_states,
            "{mode:?} should verify with >=10x headroom: {stats:?}"
        );
    }
}
