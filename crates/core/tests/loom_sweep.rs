//! Loom model tests for the `mdworm::sweep` worker pool.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. The pool's contract has
//! two halves the serial test suite cannot probe across interleavings:
//!
//! 1. **submission order** — results come back sorted by submission index
//!    no matter which worker finishes which job first;
//! 2. **shutdown** — every worker observes queue exhaustion and exits, no
//!    job is run twice or dropped, and `parallel_map` returns only after
//!    all results have landed.
//!
//! The bodies run under `loom::model`, so with the real loom crate they
//! are explored over every interleaving of the pool's lock acquisitions;
//! with the in-tree stand-in they run as a repeated stress test on the OS
//! scheduler (see `crates/loom`).
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use mdworm::sweep::parallel_map;

/// Results must come back in submission order even when later-submitted
/// jobs finish first (workers grab jobs first-come-first-served, so the
/// reversed busy-waits below make completion order fight submission
/// order).
#[test]
fn results_are_in_submission_order_under_all_interleavings() {
    loom::model(|| {
        let jobs: Vec<usize> = (0..6).rev().collect();
        let out = parallel_map(jobs.clone(), 3, |spin| {
            for _ in 0..spin * 10 {
                loom::thread::yield_now();
            }
            spin
        });
        assert_eq!(out, jobs, "submission order must survive any schedule");
    });
}

/// Shutdown: each job runs exactly once, and by the time `parallel_map`
/// returns every worker has drained the queue — no lost or duplicated
/// work under any interleaving of the queue lock.
#[test]
fn shutdown_runs_every_job_exactly_once() {
    loom::model(|| {
        let n_jobs = 5;
        let runs = Arc::new(AtomicUsize::new(0));
        let per_job: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n_jobs).map(|_| AtomicUsize::new(0)).collect());

        let r = runs.clone();
        let pj = per_job.clone();
        let out = parallel_map((0..n_jobs).collect::<Vec<_>>(), 2, move |i| {
            r.fetch_add(1, Ordering::SeqCst);
            pj[i].fetch_add(1, Ordering::SeqCst);
            i * 2
        });

        assert_eq!(out, (0..n_jobs).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(runs.load(Ordering::SeqCst), n_jobs, "every job ran");
        for (i, c) in per_job.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i} ran exactly once");
        }
    });
}

/// Degenerate pool shapes must not wedge: more workers than jobs (some
/// workers find the queue already empty and must still exit), and an
/// empty job list (all workers shut down immediately).
#[test]
fn surplus_workers_and_empty_queues_shut_down() {
    loom::model(|| {
        let out = parallel_map(vec![7usize], 4, |x| x + 1);
        assert_eq!(out, vec![8]);
        let none: Vec<usize> = parallel_map(Vec::new(), 4, |x: usize| x);
        assert!(none.is_empty());
    });
}
