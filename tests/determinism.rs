//! Reproducibility: identical configurations yield bit-identical results;
//! different seeds yield different traffic.

use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::sim::{run_experiment, RunConfig};
use mdworm::workload::TrafficSpec;

fn cfg(seed: u64) -> SystemConfig {
    SystemConfig {
        topology: TopologyKind::KaryTree { k: 2, n: 3 },
        seed,
        ..SystemConfig::default()
    }
}

#[test]
fn identical_runs_are_bit_identical() {
    let spec = TrafficSpec::bimodal(0.3, 0.2, 4, 32);
    let run = RunConfig::quick();
    let a = run_experiment(&cfg(11), &spec, &run);
    let b = run_experiment(&cfg(11), &spec, &run);
    assert_eq!(a.mcast_last, b.mcast_last);
    assert_eq!(a.mcast_avg, b.mcast_avg);
    assert_eq!(a.unicast, b.unicast);
    assert_eq!(a.completed_mcasts, b.completed_mcasts);
    assert_eq!(a.completed_unicasts, b.completed_unicasts);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn different_seeds_differ() {
    let spec = TrafficSpec::bimodal(0.3, 0.2, 4, 32);
    let run = RunConfig::quick();
    let a = run_experiment(&cfg(11), &spec, &run);
    let b = run_experiment(&cfg(12), &spec, &run);
    // With hundreds of random messages the exact counts almost surely
    // differ; the latency distributions certainly do.
    assert!(
        a.unicast != b.unicast || a.completed_unicasts != b.completed_unicasts,
        "different seeds produced identical runs"
    );
}

#[test]
fn faulty_runs_with_recovery_are_bit_identical() {
    use collectives::RecoveryConfig;
    use netsim::FaultPlan;

    let c = SystemConfig {
        recovery: Some(RecoveryConfig {
            timeout: 1_500,
            timeout_cap: 12_000,
            max_retries: 10,
        }),
        ..cfg(21)
    };
    let spec = TrafficSpec::multiple_multicast(0.05, 4, 24);
    let run = RunConfig {
        warmup: 200,
        measure: 2_500,
        drain_max: 400_000,
        faults: Some(FaultPlan::drops(77, 1e-3)),
        ..RunConfig::default()
    };
    let a = run_experiment(&c, &spec, &run);
    let b = run_experiment(&c, &spec, &run);
    // The injected faults and the recovery protocol's reaction must both
    // replay exactly from the same seeds.
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.mcast_last, b.mcast_last);
    assert_eq!(a.completed_mcasts, b.completed_mcasts);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.leftover, b.leftover);
    // And the plan really did something.
    assert!(a.faults.worms_dropped > 0);
    assert!(a.recovery.retransmits > 0);
}

#[test]
fn determinism_holds_for_every_scheme() {
    let run = RunConfig::quick();
    for (arch, mcast) in [
        (SwitchArch::CentralBuffer, McastImpl::HwBitString),
        (SwitchArch::InputBuffered, McastImpl::HwBitString),
        (SwitchArch::CentralBuffer, McastImpl::SwBinomial),
        (SwitchArch::CentralBuffer, McastImpl::HwMultiport),
    ] {
        let c = SystemConfig {
            arch,
            mcast,
            ..cfg(5)
        };
        let spec = TrafficSpec::multiple_multicast(0.3, 4, 24);
        let a = run_experiment(&c, &spec, &run);
        let b = run_experiment(&c, &spec, &run);
        assert_eq!(a.mcast_last, b.mcast_last, "{arch:?}/{mcast:?}");
        assert_eq!(a.cycles, b.cycles, "{arch:?}/{mcast:?}");
    }
}
