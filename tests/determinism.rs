//! Reproducibility: identical configurations yield bit-identical results;
//! different seeds yield different traffic.

use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::sim::{run_experiment, RunConfig};
use mdworm::workload::TrafficSpec;

fn cfg(seed: u64) -> SystemConfig {
    SystemConfig {
        topology: TopologyKind::KaryTree { k: 2, n: 3 },
        seed,
        ..SystemConfig::default()
    }
}

#[test]
fn identical_runs_are_bit_identical() {
    let spec = TrafficSpec::bimodal(0.3, 0.2, 4, 32);
    let run = RunConfig::quick();
    let a = run_experiment(&cfg(11), &spec, &run);
    let b = run_experiment(&cfg(11), &spec, &run);
    assert_eq!(a.mcast_last, b.mcast_last);
    assert_eq!(a.mcast_avg, b.mcast_avg);
    assert_eq!(a.unicast, b.unicast);
    assert_eq!(a.completed_mcasts, b.completed_mcasts);
    assert_eq!(a.completed_unicasts, b.completed_unicasts);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn different_seeds_differ() {
    let spec = TrafficSpec::bimodal(0.3, 0.2, 4, 32);
    let run = RunConfig::quick();
    let a = run_experiment(&cfg(11), &spec, &run);
    let b = run_experiment(&cfg(12), &spec, &run);
    // With hundreds of random messages the exact counts almost surely
    // differ; the latency distributions certainly do.
    assert!(
        a.unicast != b.unicast || a.completed_unicasts != b.completed_unicasts,
        "different seeds produced identical runs"
    );
}

#[test]
fn faulty_runs_with_recovery_are_bit_identical() {
    use collectives::RecoveryConfig;
    use netsim::FaultPlan;

    let c = SystemConfig {
        recovery: Some(RecoveryConfig {
            timeout: 1_500,
            timeout_cap: 12_000,
            max_retries: 10,
        }),
        ..cfg(21)
    };
    let spec = TrafficSpec::multiple_multicast(0.05, 4, 24);
    let run = RunConfig {
        warmup: 200,
        measure: 2_500,
        drain_max: 400_000,
        faults: Some(FaultPlan::drops(77, 1e-3)),
        ..RunConfig::default()
    };
    let a = run_experiment(&c, &spec, &run);
    let b = run_experiment(&c, &spec, &run);
    // The injected faults and the recovery protocol's reaction must both
    // replay exactly from the same seeds.
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.mcast_last, b.mcast_last);
    assert_eq!(a.completed_mcasts, b.completed_mcasts);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.leftover, b.leftover);
    // And the plan really did something.
    assert!(a.faults.worms_dropped > 0);
    assert!(a.recovery.retransmits > 0);
}

#[test]
fn fault_response_sweep_is_identical_across_worker_counts() {
    use collectives::RecoveryConfig;
    use mdworm::respond::ResponseConfig;
    use mdworm::sweep::{run_sweep, SweepJob};
    use netsim::FaultPlan;

    // Seeded link outages (longer than the responder's debounce window)
    // with the full recovery + online-response pipeline armed: the
    // detect/reroute/quiesce/degrade protocol must replay byte-identically
    // whatever the sweep pool size.
    let jobs = || -> Vec<SweepJob> {
        [SwitchArch::CentralBuffer, SwitchArch::InputBuffered]
            .into_iter()
            .map(|arch| {
                SweepJob::new(
                    SystemConfig {
                        // Wide leaves (4 up links each): the random
                        // outages degrade paths without ever partitioning
                        // a subtree outright, which no reroute can mask.
                        topology: TopologyKind::KaryTree { k: 4, n: 2 },
                        arch,
                        recovery: Some(RecoveryConfig::default()),
                        response: Some(ResponseConfig::default()),
                        ..cfg(31)
                    },
                    TrafficSpec::multiple_multicast(0.04, 4, 16),
                    RunConfig {
                        warmup: 200,
                        measure: 4_000,
                        drain_max: 400_000,
                        faults: Some(FaultPlan {
                            seed: 99,
                            flit_drop: 0.0,
                            flit_corrupt: 0.0,
                            down_every: 2_500,
                            down_len: 200,
                            credit_leak: 0.0,
                        }),
                        ..RunConfig::default()
                    },
                )
            })
            .collect()
    };
    let serial = run_sweep(jobs(), 1);
    let parallel = run_sweep(jobs(), 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.mcast_last, p.mcast_last);
        assert_eq!(s.throughput.to_bits(), p.throughput.to_bits());
        assert_eq!(s.completed_mcasts, p.completed_mcasts);
        assert_eq!(s.cycles, p.cycles);
        assert_eq!(s.leftover, p.leftover);
        assert_eq!(s.faults, p.faults);
        assert_eq!(s.recovery, p.recovery);
        assert_eq!(s.response, p.response);
        assert_eq!(s.degrade, p.degrade);
    }
    // And the pipeline really engaged: outages were confirmed and at
    // least one masked reroute was installed.
    assert!(serial.iter().any(|o| o.response.links_down > 0));
    assert!(serial.iter().any(|o| o.response.reroutes > 0));
}

#[test]
fn determinism_holds_for_every_scheme() {
    let run = RunConfig::quick();
    for (arch, mcast) in [
        (SwitchArch::CentralBuffer, McastImpl::HwBitString),
        (SwitchArch::InputBuffered, McastImpl::HwBitString),
        (SwitchArch::CentralBuffer, McastImpl::SwBinomial),
        (SwitchArch::CentralBuffer, McastImpl::HwMultiport),
    ] {
        let c = SystemConfig {
            arch,
            mcast,
            ..cfg(5)
        };
        let spec = TrafficSpec::multiple_multicast(0.3, 4, 24);
        let a = run_experiment(&c, &spec, &run);
        let b = run_experiment(&c, &spec, &run);
        assert_eq!(a.mcast_last, b.mcast_last, "{arch:?}/{mcast:?}");
        assert_eq!(a.cycles, b.cycles, "{arch:?}/{mcast:?}");
    }
}

#[test]
fn e18_fault_storm_is_identical_across_worker_counts() {
    // The full storm stack — flap damping, retry backoff with seeded
    // jitter, degradation ladder, watchdog, plus the per-slice query
    // load — must replay byte-identically whatever the sweep pool size.
    // Worker counts are passed explicitly so this test cannot race other
    // tests over the global pool setting.
    let base = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 },
        ..cfg(47)
    };
    let serial = mdworm::experiments::e18_fault_storm_with_jobs(&base, 2_000, 0.04, 4, 16, 1);
    let parallel = mdworm::experiments::e18_fault_storm_with_jobs(&base, 2_000, 0.04, 4, 16, 4);
    assert_eq!(serial.len(), 2);
    assert_eq!(parallel.len(), 2);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.scheme, p.scheme);
        assert_eq!(s.mcasts, p.mcasts, "{}", s.scheme);
        assert_eq!(s.reroutes, p.reroutes, "{}", s.scheme);
        assert_eq!(s.rejected, p.rejected, "{}", s.scheme);
        assert_eq!(s.heals, p.heals, "{}", s.scheme);
        assert_eq!(s.stale, p.stale, "{}", s.scheme);
        assert_eq!(s.suppressions, p.suppressions, "{}", s.scheme);
        assert_eq!(s.reinstatements, p.reinstatements, "{}", s.scheme);
        assert_eq!(s.retries, p.retries, "{}", s.scheme);
        assert_eq!(s.watchdog, p.watchdog, "{}", s.scheme);
        assert_eq!(s.ladder, p.ladder, "{}", s.scheme);
        assert_eq!(
            (s.p50, s.p99, s.lat_max),
            (p.p50, p.p99, p.lat_max),
            "{}",
            s.scheme
        );
        assert_eq!((s.queries, s.q_worm), (p.queries, p.q_worm), "{}", s.scheme);
        assert_eq!(
            s.avail_full.to_bits(),
            p.avail_full.to_bits(),
            "{}",
            s.scheme
        );
        assert_eq!(
            s.avail_masked.to_bits(),
            p.avail_masked.to_bits(),
            "{}",
            s.scheme
        );
        assert_eq!(
            s.avail_umin.to_bits(),
            p.avail_umin.to_bits(),
            "{}",
            s.scheme
        );
        assert_eq!(s.avail_ro.to_bits(), p.avail_ro.to_bits(), "{}", s.scheme);
        assert_eq!(s.leftover, p.leftover, "{}", s.scheme);
        assert_eq!(s.verdict, p.verdict, "{}", s.scheme);
    }
    // And the storm actually stormed.
    assert!(serial.iter().all(|r| r.reroutes > 0 && r.suppressions > 0));
}
