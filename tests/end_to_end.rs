//! Cross-crate integration: every (topology, architecture, scheme)
//! combination delivers scheduled messages exactly once, end to end.

use collectives::{MessageSpec, ScheduledSource, SilentSource, TrafficSource};
use mdworm::build::build_system;
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use netsim::destset::DestSet;
use netsim::ids::NodeId;
use netsim::message::MessageKind;
use netsim::rng::SimRng;

fn silent(n: usize) -> Vec<Box<dyn TrafficSource>> {
    (0..n)
        .map(|_| Box::new(SilentSource) as Box<dyn TrafficSource>)
        .collect()
}

/// Runs a fixed batch of messages and checks exactly-once delivery.
fn run_batch(cfg: SystemConfig, batch: Vec<(usize, Vec<(u64, MessageSpec)>)>, max_cycles: u64) {
    let n = cfg.n_hosts();
    let mut sources = silent(n);
    let mut expected_msgs = 0;
    for (host, schedule) in batch {
        expected_msgs += schedule.len() as u64;
        sources[host] = Box::new(ScheduledSource::new(schedule));
    }
    let mut sys = build_system(cfg.clone(), sources, None);
    while sys.engine.now() < max_cycles {
        sys.engine.run_for(500);
        let t = sys.tracker();
        let done = t.borrow().completed_total() == expected_msgs && t.borrow().outstanding() == 0;
        if done {
            return;
        }
    }
    let t = sys.tracker();
    panic!(
        "{:?}/{:?}/{:?}: only {}/{} messages completed, {} outstanding",
        cfg.topology,
        cfg.arch,
        cfg.mcast,
        t.borrow().completed_total(),
        expected_msgs,
        t.borrow().outstanding()
    );
}

fn mixed_batch(n: usize, seed: u64) -> Vec<(usize, Vec<(u64, MessageSpec)>)> {
    let mut rng = SimRng::new(seed);
    let mut batch = Vec::new();
    for host in 0..n.min(6) {
        let mut schedule = Vec::new();
        for i in 0..4u64 {
            let src = NodeId::from(host);
            let spec = if i % 2 == 0 {
                MessageSpec {
                    kind: MessageKind::Unicast(rng.other_node(n, src)),
                    payload_flits: 16 + 10 * i as u16,
                }
            } else {
                let k = 2 + rng.below(n / 2);
                MessageSpec {
                    kind: MessageKind::Multicast(rng.dest_set(n, k, src)),
                    payload_flits: 32,
                }
            };
            schedule.push((1 + i * 50, spec));
        }
        batch.push((host, schedule));
    }
    batch
}

#[test]
fn karytree_all_arch_scheme_combos() {
    for arch in [SwitchArch::CentralBuffer, SwitchArch::InputBuffered] {
        for mcast in [
            McastImpl::HwBitString,
            McastImpl::HwMultiport,
            McastImpl::SwBinomial,
        ] {
            let cfg = SystemConfig {
                topology: TopologyKind::KaryTree { k: 2, n: 4 }, // 16 hosts
                arch,
                mcast,
                ..SystemConfig::default()
            };
            run_batch(cfg, mixed_batch(16, 42), 100_000);
        }
    }
}

#[test]
fn unimin_both_arches() {
    for arch in [SwitchArch::CentralBuffer, SwitchArch::InputBuffered] {
        let cfg = SystemConfig {
            topology: TopologyKind::UniMin { k: 4, n: 2 }, // 16 hosts
            arch,
            mcast: McastImpl::HwBitString,
            ..SystemConfig::default()
        };
        run_batch(cfg, mixed_batch(16, 7), 100_000);
    }
}

#[test]
fn irregular_both_arches() {
    for arch in [SwitchArch::CentralBuffer, SwitchArch::InputBuffered] {
        let cfg = SystemConfig {
            topology: TopologyKind::Irregular {
                switches: 6,
                ports: 8,
                hosts: 12,
                extra_links: 3,
                seed: 5,
            },
            arch,
            mcast: McastImpl::HwBitString,
            ..SystemConfig::default()
        };
        run_batch(cfg, mixed_batch(12, 13), 100_000);
    }
}

#[test]
fn software_multicast_on_irregular() {
    let cfg = SystemConfig {
        topology: TopologyKind::Irregular {
            switches: 6,
            ports: 8,
            hosts: 12,
            extra_links: 2,
            seed: 9,
        },
        arch: SwitchArch::CentralBuffer,
        mcast: McastImpl::SwBinomial,
        ..SystemConfig::default()
    };
    run_batch(cfg, mixed_batch(12, 21), 200_000);
}

#[test]
fn broadcast_to_everyone_else() {
    for mcast in [McastImpl::HwBitString, McastImpl::SwBinomial] {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 }, // 16 hosts
            mcast,
            ..SystemConfig::default()
        };
        let mut dests = DestSet::full(16);
        dests.remove(NodeId(3));
        let batch = vec![(
            3usize,
            vec![(
                1u64,
                MessageSpec {
                    kind: MessageKind::Multicast(dests),
                    payload_flits: 64,
                },
            )],
        )];
        run_batch(cfg, batch, 100_000);
    }
}

#[test]
fn long_messages_segment_across_packets() {
    let cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 2, n: 3 },
        ..SystemConfig::default()
    };
    // 500-flit multicast must travel as multiple worms and reassemble.
    let batch = vec![(
        0usize,
        vec![(
            1u64,
            MessageSpec {
                kind: MessageKind::Multicast(DestSet::from_nodes(8, [2, 5, 7].map(NodeId))),
                payload_flits: 500,
            },
        )],
    )];
    run_batch(cfg, batch, 100_000);
}
