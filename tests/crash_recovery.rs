//! Crash tolerance of the journaled control plane (DESIGN.md §15).
//!
//! Two layers of evidence:
//!
//! * a seeded **crash matrix** — [`mdworm::chaos::run_crash_sweep`]
//!   crashes the fault responder at *every* protocol-step boundary of a
//!   scripted outage storm, clean and with a torn journal tail, and the
//!   recovered run must reproduce the uncrashed oracle's [`RunOutcome`]
//!   byte for byte with the engine's torn-install audit silent;
//! * hand-rolled **property loops** over the write-ahead journal itself:
//!   seeded random record sequences survive duplicated tails (replay
//!   idempotence via sequence numbers), truncated tails (durable prefix
//!   rule), and garbage tails (checksum fencing).
//!
//! CI additionally runs this file under `--features invariant-audit` as
//! the release crash-smoke job. The E19 bench table runs the same sweep
//! at a larger phase; this file is the fast tier-1 gate.

use collectives::RecoveryConfig;
use mdworm::chaos::run_crash_sweep;
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::journal::{Journal, JournalConfig, JournalRecord};
use mdworm::respond::ResponseConfig;
use mdworm::sim::RunConfig;
use mdworm::workload::TrafficSpec;
use netsim::ids::{LinkId, SwitchId};
use netsim::rng::SimRng;

fn crash_cfg(arch: SwitchArch) -> SystemConfig {
    SystemConfig {
        // Smallest multi-root tree: single-link masks stay connected, so
        // the storm exercises real installs, not just vet rejections.
        topology: TopologyKind::KaryTree { k: 2, n: 2 },
        arch,
        mcast: McastImpl::HwBitString,
        recovery: Some(RecoveryConfig::default()),
        response: Some(ResponseConfig::default()),
        epoch_audit: true,
        ..SystemConfig::default()
    }
}

/// One cut that fails and heals inside the window: the oracle drives a
/// full reroute episode and a heal episode, so the matrix sweeps every
/// stage of the two-phase protocol — gate, purge, prepare-on-switch-k,
/// vet, commit-on-switch-k, finalize — at tier-1 cost.
fn crash_run(phase: u64) -> RunConfig {
    RunConfig {
        warmup: 0,
        measure: 3 * phase,
        drain_max: 12 * phase,
        watchdog_grace: 4 * phase,
        faults: None,
        outages: vec![(0, phase, 2 * phase)],
    }
}

#[test]
fn seeded_crash_matrix_recovers_byte_identically() {
    let cfg = crash_cfg(SwitchArch::CentralBuffer);
    let spec = TrafficSpec::multiple_multicast(0.02, 2, 8);
    let out = run_crash_sweep(&cfg, &spec, &crash_run(400), &[8]);
    assert!(out.boundaries > 0, "oracle crossed no protocol boundaries");
    assert_eq!(out.runs, 2 * out.boundaries, "clean + torn-tail variants");
    assert!(
        out.mismatches.is_empty(),
        "recovered runs diverged from the oracle at (boundary, tear): {:?}",
        out.mismatches
    );
    assert_eq!(out.torn_cycles, 0, "a crash left committed epochs torn");
    assert!(
        out.recoveries >= out.runs,
        "every injected run must recover at least once ({} recoveries / {} runs)",
        out.recoveries,
        out.runs
    );
    assert!(
        out.oracle.response.reroutes >= 1,
        "the oracle must install a masked reroute: {:?}",
        out.oracle.response
    );
    assert!(
        out.oracle.response.heals >= 1,
        "the oracle must heal after the cut: {:?}",
        out.oracle.response
    );
    assert!(
        out.oracle.response_digest.is_some(),
        "responder digest missing from the oracle outcome"
    );
    assert!(
        out.recovery_ns.percentile(99.0) >= out.recovery_ns.percentile(50.0),
        "recovery-latency percentiles out of order"
    );
}

/// The input-buffered switch drives the same two-phase installs through
/// a different switch core; the matrix must hold there too.
#[test]
fn crash_matrix_holds_on_input_buffered_switches() {
    let cfg = crash_cfg(SwitchArch::InputBuffered);
    let spec = TrafficSpec::multiple_multicast(0.02, 2, 8);
    let out = run_crash_sweep(&cfg, &spec, &crash_run(400), &[5]);
    assert!(out.mismatches.is_empty(), "{:?}", out.mismatches);
    assert_eq!(out.torn_cycles, 0);
    assert!(
        out.oracle.response.reroutes >= 1,
        "{:?}",
        out.oracle.response
    );
}

// ---------------------------------------------------------------------
// Journal property loops (hand-rolled; the workspace carries no proptest)
// ---------------------------------------------------------------------

/// A seeded, arbitrary-ish journal record. Covers the fixed-shape
/// variants; snapshot/vet records have their own round-trip unit tests.
fn arb_record(rng: &mut SimRng) -> JournalRecord {
    match rng.below(7) {
        0 => JournalRecord::Observed {
            link: LinkId::from(rng.below(64)),
            at: rng.below(100_000) as u64,
            down: rng.chance(0.5),
        },
        1 => JournalRecord::Polled {
            now: rng.below(100_000) as u64,
        },
        2 => JournalRecord::Drained,
        3 => JournalRecord::Suppressed {
            links: (0..rng.below(4)).map(LinkId::from).collect(),
        },
        4 => JournalRecord::Prepared {
            epoch: rng.below(1_000) as u64,
            masked: (0..rng.below(3))
                .map(|i| (SwitchId::from(i), rng.below(8)))
                .collect(),
        },
        5 => JournalRecord::Committed {
            epoch: rng.below(1_000) as u64,
        },
        _ => JournalRecord::RespondStarted {
            detect: rng.below(100_000) as u64,
        },
    }
}

/// Builds a journal of `n` seeded records with snapshots disabled (so the
/// full history stays in the store) and returns it with its records.
fn seeded_journal(rng: &mut SimRng, n: usize) -> (Journal, Vec<(u64, JournalRecord)>) {
    let mut j = Journal::new(JournalConfig {
        snapshot_every: u64::MAX,
    });
    for _ in 0..n {
        j.append(&arb_record(rng));
    }
    let recs = j.records();
    (j, recs)
}

/// Replay idempotence: a crashed writer can leave the tail of the log
/// duplicated (e.g. a re-driven append after an unacknowledged flush).
/// Sequence numbers make the duplicate harmless — replay applies each
/// seq once, so filtering to strictly-increasing seqs recovers exactly
/// the original history.
#[test]
fn journal_replay_is_idempotent_under_duplicated_tails() {
    let mut rng = SimRng::new(0x15_0001);
    for round in 0..40 {
        let n = 1 + rng.below(30);
        let (j, original) = seeded_journal(&mut rng, n);
        let store = j.store();
        // Duplicate a random tail chunk of whole lines.
        let dup = {
            let s = store.borrow();
            let lines: Vec<&str> = s.split_inclusive('\n').collect();
            let from = rng.below(lines.len());
            lines[from..].concat()
        };
        store.borrow_mut().push_str(&dup);

        let (_, replayed) = Journal::reopen(store, JournalConfig::default());
        // The same skip rule FaultResponder::recover applies.
        let mut last_seq: Option<u64> = None;
        let deduped: Vec<(u64, JournalRecord)> = replayed
            .into_iter()
            .filter(|&(seq, _)| {
                let fresh = last_seq.is_none_or(|s| seq > s);
                if fresh {
                    last_seq = Some(seq);
                }
                fresh
            })
            .collect();
        assert_eq!(
            deduped, original,
            "round {round}: duplicated tail changed the deduplicated history"
        );
    }
}

/// Durable-prefix rule: a crash can cut the log anywhere mid-byte; the
/// records before the cut survive verbatim and the torn line vanishes —
/// no parse error, no corrupted record, no resurrection of the tail.
#[test]
fn journal_truncation_yields_a_clean_prefix() {
    let mut rng = SimRng::new(0x15_0002);
    for round in 0..40 {
        let n = 1 + rng.below(30);
        let (j, original) = seeded_journal(&mut rng, n);
        let store = j.store();
        let cut = rng.below(store.borrow().len() + 1);
        store.borrow_mut().truncate(cut);

        let (_, replayed) = Journal::reopen(store, JournalConfig::default());
        assert!(
            replayed.len() <= original.len(),
            "round {round}: truncation grew the history"
        );
        assert_eq!(
            replayed,
            original[..replayed.len()],
            "round {round}: surviving records are not a verbatim prefix"
        );
    }
}

/// Checksum fencing: arbitrary garbage appended after the durable bytes
/// (the crashed writer's half-formed next record) never parses, and the
/// reopened journal appends cleanly past it.
#[test]
fn journal_garbage_tails_are_fenced_and_writable() {
    let mut rng = SimRng::new(0x15_0003);
    for round in 0..40 {
        let n = 1 + rng.below(20);
        let (j, original) = seeded_journal(&mut rng, n);
        let store = j.store();
        let garbage: String = (0..1 + rng.below(40))
            .map(|_| (b' ' + rng.below(94) as u8) as char)
            .collect();
        store.borrow_mut().push_str(&garbage);

        let (mut j2, replayed) = Journal::reopen(store.clone(), JournalConfig::default());
        // A garbage tail that happens to end in '\n' could in principle
        // parse — but only as a checksummed line, which random ASCII is
        // not; everything durable must survive untouched.
        assert_eq!(
            replayed, original,
            "round {round}: garbage tail perturbed durable records"
        );
        j2.append(&JournalRecord::Drained);
        let reread = j2.records();
        assert_eq!(
            reread.last().map(|(_, r)| r.clone()),
            Some(JournalRecord::Drained),
            "round {round}: reopened journal could not append past the fence"
        );
    }
}
