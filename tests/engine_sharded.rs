//! Differential acceptance tests for the compiled sharded engine
//! (DESIGN.md §13): at shards ∈ {1, 2, 4} it must be **bit-identical** to
//! the sequential oracle — same ledgers every cycle, same per-switch
//! stats, same link-event logs, same `RunOutcome` — on clean E2-style
//! runs and on fault-injected runs, while actually skipping work.

use mdworm::build::build_system;
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::sim::{run_experiment, RunConfig, RunOutcome};
use mdworm::workload::{make_sources, TrafficSpec};
use netsim::FaultPlan;

const SHARDS: [usize; 3] = [1, 2, 4];

/// 8 hosts on a 2-ary 3-tree — a real multi-stage fabric that still keeps
/// three-engine comparisons quick.
fn base_cfg() -> SystemConfig {
    SystemConfig {
        topology: TopologyKind::KaryTree { k: 2, n: 3 },
        ..SystemConfig::default()
    }
}

/// Every field of the outcome, bit-for-bit (floats compared by bits).
fn assert_outcomes_identical(oracle: &RunOutcome, sharded: &RunOutcome, what: &str) {
    assert_eq!(oracle.mcast_last, sharded.mcast_last, "{what}: mcast_last");
    assert_eq!(oracle.mcast_avg, sharded.mcast_avg, "{what}: mcast_avg");
    assert_eq!(oracle.unicast, sharded.unicast, "{what}: unicast");
    assert_eq!(
        oracle.throughput.to_bits(),
        sharded.throughput.to_bits(),
        "{what}: throughput"
    );
    assert_eq!(
        oracle.eject_utilization.to_bits(),
        sharded.eject_utilization.to_bits(),
        "{what}: eject_utilization"
    );
    assert_eq!(
        oracle.fabric_utilization.to_bits(),
        sharded.fabric_utilization.to_bits(),
        "{what}: fabric_utilization"
    );
    // The Debug rendering covers every remaining field (counts, flags,
    // fault/recovery/response counters, forensic reports).
    assert_eq!(
        format!("{oracle:?}"),
        format!("{sharded:?}"),
        "{what}: full outcome"
    );
}

/// `RunOutcome` byte-identity on an E2-style run (the paper's multiple-
/// multicast workload) across architectures and schemes, selecting the
/// engine through the `engine.shards` config key like any production run.
#[test]
fn e2_style_outcome_identical_across_shards() {
    for (arch, mcast) in [
        (SwitchArch::CentralBuffer, McastImpl::HwBitString),
        (SwitchArch::InputBuffered, McastImpl::HwBitString),
        (SwitchArch::CentralBuffer, McastImpl::SwBinomial),
    ] {
        let spec = TrafficSpec::multiple_multicast(0.08, 4, 16);
        let run = RunConfig::quick();
        let mut cfg = base_cfg();
        cfg.arch = arch;
        cfg.mcast = mcast;
        let oracle = run_experiment(&cfg, &spec, &run);
        assert!(!oracle.deadlocked);
        assert!(oracle.completed_mcasts > 0, "workload must do something");
        for shards in SHARDS {
            cfg.engine_shards = shards;
            let sharded = run_experiment(&cfg, &spec, &run);
            assert_outcomes_identical(
                &oracle,
                &sharded,
                &format!("{arch:?}/{mcast:?} @ {shards} shards"),
            );
        }
    }
}

/// `RunOutcome` byte-identity on a fault-injected run with end-to-end
/// recovery — drops, retransmissions and all.
#[test]
fn fault_injected_outcome_identical_across_shards() {
    let mut cfg = base_cfg();
    cfg.recovery = Some(collectives::RecoveryConfig {
        timeout: 1_500,
        timeout_cap: 12_000,
        max_retries: 10,
    });
    let spec = TrafficSpec::multiple_multicast(0.05, 4, 24);
    let run = RunConfig {
        faults: Some(FaultPlan::drops(9, 1e-3)),
        ..RunConfig::quick()
    };
    let oracle = run_experiment(&cfg, &spec, &run);
    assert!(oracle.faults.worms_dropped > 0, "fault plan never fired");
    assert!(oracle.recovery.retransmits > 0, "recovery never exercised");
    for shards in SHARDS {
        cfg.engine_shards = shards;
        let sharded = run_experiment(&cfg, &spec, &run);
        assert_outcomes_identical(&oracle, &sharded, &format!("faulty @ {shards} shards"));
    }
}

/// The satellite differential: step a sharded system against the
/// sequential oracle **cycle by cycle** on a fault-injected run and
/// demand identical ledgers at every cycle, then identical per-switch
/// stats, link-event logs, and tracker state at the end — while the
/// compiled engine provably skipped ticks.
#[test]
fn faulty_run_matches_oracle_cycle_by_cycle() {
    let build = || {
        let cfg = base_cfg();
        let spec = TrafficSpec::multiple_multicast(0.1, 4, 16);
        let sources = make_sources(&spec, cfg.n_hosts(), cfg.seed, Some(4_000));
        let mut sys = build_system(cfg, sources, None);
        sys.engine.install_faults(&FaultPlan::drops(9, 2e-3));
        sys.engine.publish_link_events();
        sys
    };
    for shards in SHARDS {
        let mut oracle = build();
        let mut sharded = build();
        sharded.engine.set_shards(shards);
        for cycle in 1..=5_000u64 {
            oracle.engine.step();
            sharded.engine.step();
            assert_eq!(
                oracle.engine.total_flit_moves(),
                sharded.engine.total_flit_moves(),
                "flit-move ledger diverged at cycle {cycle} ({shards} shards)"
            );
            assert_eq!(
                oracle.engine.flits_in_links(),
                sharded.engine.flits_in_links(),
                "in-flight ledger diverged at cycle {cycle} ({shards} shards)"
            );
        }
        sharded.engine.flush();

        // Per-switch statistics: every counter and per-cycle gauge.
        for (i, (a, b)) in oracle
            .switch_stats
            .iter()
            .zip(&sharded.switch_stats)
            .enumerate()
        {
            let (a, b) = (a.borrow(), b.borrow());
            assert_eq!(
                a.cq_used_chunks.samples(),
                b.cq_used_chunks.samples(),
                "switch {i}: occupancy sample count ({shards} shards)"
            );
            assert_eq!(
                a.cq_used_chunks.mean().map(f64::to_bits),
                b.cq_used_chunks.mean().map(f64::to_bits),
                "switch {i}: occupancy mean ({shards} shards)"
            );
            assert_eq!(
                format!("{:?}", *a),
                format!("{:?}", *b),
                "switch {i}: stats diverged ({shards} shards)"
            );
        }

        // Link up/down event logs, in order.
        assert_eq!(
            oracle.engine.drain_link_events(),
            sharded.engine.drain_link_events(),
            "link-event logs diverged ({shards} shards)"
        );

        // Delivery-tracker state.
        let (ta, tb) = (oracle.tracker(), sharded.tracker());
        let (ta, tb) = (ta.borrow(), tb.borrow());
        assert_eq!(ta.mcast_last.summary(), tb.mcast_last.summary());
        assert_eq!(ta.mcast_avg.summary(), tb.mcast_avg.summary());
        assert_eq!(ta.unicast.summary(), tb.unicast.summary());
        assert_eq!(ta.completed_mcasts(), tb.completed_mcasts());
        assert_eq!(ta.completed_unicasts(), tb.completed_unicasts());
        assert_eq!(ta.outstanding(), tb.outstanding());

        // The identical results must have come from actual skipping.
        let stats = sharded.engine.sharding_stats().expect("compiled plan");
        assert_eq!(stats.shards, shards);
        assert!(
            stats.ticks_skipped > 0,
            "compiled engine never slept a switch: {stats:?}"
        );
    }
}
