//! Integration tests for the resident control plane: the line protocol
//! end-to-end through the bounded queue, storm behavior at the service
//! surface, and seeded property tests (hand-rolled on `SimRng`; the
//! workspace carries no external property-testing dependency) for
//! flap-damping convergence and backoff bounds.

use mdworm::config::{SystemConfig, TopologyKind};
use mdworm::respond::ResponseConfig;
use mdworm::routed::queue::{submit, Envelope, ShedCounter};
use mdworm::routed::{Backoff, FlapDamper, Request, RoutedConfig, RoutedService};
use netsim::ids::LinkId;
use netsim::rng::SimRng;
use std::sync::mpsc;

fn service_cfg() -> SystemConfig {
    SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 }, // 16 hosts
        response: Some(ResponseConfig::default()),
        routed: Some(RoutedConfig::default()),
        recovery: None,
        ..SystemConfig::default()
    }
}

#[test]
fn protocol_session_drives_an_outage_through_the_queue() {
    // The service loop owns the (!Send) system on this thread; a producer
    // thread plays a client session through the bounded queue exactly as
    // the binary's reader threads do.
    let mut service = RoutedService::new(service_cfg()).expect("config is clean");
    let (tx, rx) = mpsc::sync_channel::<Envelope>(service.queue_cap());
    let shed = service.shed_counter();

    let producer = std::thread::spawn(move || {
        let script = [
            "health",
            "join 7 3",
            "join 7 5",
            "route 0 group 7",
            "link down f0",
            "step 3000",
            "health",
            "route 0 group 7",
            "link up f0",
            "step 9000",
            "health",
            "metrics",
            "quit",
        ];
        let mut replies = Vec::new();
        for line in script {
            let req = Request::parse(line).expect(line);
            let (reply_tx, reply_rx) = mpsc::channel();
            submit(
                &tx,
                Envelope {
                    req,
                    reply: reply_tx,
                },
                &shed,
            )
            .expect("service loop alive");
            replies.push((line, reply_rx.recv().expect("reply")));
        }
        replies
    });

    service.run(&rx, false);
    let replies = producer.join().expect("producer thread");

    let get = |line: &str| -> &str {
        &replies
            .iter()
            .find(|(l, _)| *l == line)
            .unwrap_or_else(|| panic!("no reply for `{line}`"))
            .1
    };
    assert!(get("join 7 5").contains("size 2"));
    // During the outage the fabric is masked and the group still routes.
    let masked_health = &replies[6].1;
    assert!(
        masked_health.contains("rung=masked-mcast") && masked_health.contains("masked=1"),
        "{masked_health}"
    );
    assert!(replies[7].1.starts_with("ok worm="), "{}", replies[7].1);
    // After heal the rung climbs back to full multicast.
    let healed_health = &replies[10].1;
    assert!(
        healed_health.contains("rung=full-mcast") && healed_health.contains("heals=1"),
        "{healed_health}"
    );
    let metrics = get("metrics");
    assert!(metrics.contains("episodes=2"), "{metrics}");
    assert!(get("quit") == "ok bye");
    // Clean shutdown: the final metrics snapshot is still coherent.
    assert_eq!(service.metrics().episodes, 2);
}

#[test]
fn malformed_and_out_of_range_requests_get_err_replies() {
    let mut service = RoutedService::new(service_cfg()).expect("config is clean");
    let n_links = service.system().engine.n_links();
    let cases = [
        (format!("link down {n_links}"), "out of range"),
        ("link down f9999".to_string(), "out of range"),
        ("route 99 1".to_string(), "out of range"),
        ("route 0 99".to_string(), "out of range"),
        ("reach 99".to_string(), "out of range"),
        ("join 1 99".to_string(), "out of range"),
        ("route 0 group 42".to_string(), "unknown group"),
    ];
    for (line, want) in &cases {
        let req = Request::parse(line).expect(line);
        let reply = service.handle(&req);
        assert!(
            reply.starts_with("err") && reply.contains(want),
            "`{line}` → `{reply}`"
        );
    }
    // Requests after errors still work: the service never wedges.
    let reply = service.handle(&Request::parse("health").unwrap());
    assert!(reply.starts_with("ok "), "{reply}");
}

#[test]
fn query_shedding_applies_backpressure_policy_per_class() {
    // A one-slot queue that nobody drains: queries shed, never block.
    let (tx, _rx) = mpsc::sync_channel::<Envelope>(1);
    let shed = ShedCounter::new();
    let send = |line: &str| {
        let (reply_tx, reply_rx) = mpsc::channel();
        let ok = submit(
            &tx,
            Envelope {
                req: Request::parse(line).unwrap(),
                reply: reply_tx,
            },
            &shed,
        )
        .unwrap();
        (ok, reply_rx)
    };
    let (ok, _) = send("health");
    assert!(ok, "first request fills the queue");
    for i in 0..5 {
        let (ok, reply_rx) = send("route 0 1 2");
        assert!(!ok, "query {i} must shed, not block");
        assert!(reply_rx.recv().unwrap().starts_with("err shed"));
    }
    assert_eq!(shed.get(), 5);
}

/// Property: under any random flap schedule, damping converges — a link
/// that keeps flapping is suppressed (and stays suppressed while the
/// pressure continues), and once the flapping stops every link cools
/// off, is reinstated exactly once, and nothing oscillates afterwards.
#[test]
fn flap_damping_converges_under_random_schedules() {
    let base = RoutedConfig::default();
    for case in 0..64u64 {
        let mut rng = SimRng::new(0xF1A9 ^ case).fork(case);
        let mut damp = FlapDamper::new(
            base.flap_penalty,
            base.flap_suppress,
            base.flap_reuse,
            base.flap_half_life,
        );
        let links: Vec<LinkId> = (0..4usize).map(LinkId::from).collect();
        // A random storm: bursts of confirmed transitions over random
        // links at random (increasing) times.
        let mut t = 0u64;
        let events = 20 + rng.below(60);
        for _ in 0..events {
            t += rng.below(base.flap_half_life as usize / 2) as u64;
            let link = links[rng.below(links.len())];
            damp.record(link, t);
            damp.advance(t);
            // Invariant: a link at/above the suppress threshold is in the
            // suppressed set until decay brings it under reuse.
            for l in &links {
                if damp.current_penalty(*l) >= base.flap_suppress {
                    assert!(
                        damp.suppressed().contains(l),
                        "case {case}: hot link not suppressed at t={t}"
                    );
                }
            }
        }
        // Storm over. Advance in random strides: every suppression must
        // clear within the analytic cool-off bound, and once cleared the
        // counters freeze — no oscillation without new transitions.
        let worst_penalty = base.flap_penalty * events as u64;
        let halvings = 64 - u64::leading_zeros(worst_penalty / base.flap_reuse.max(1)) as u64 + 1;
        let deadline = t + (halvings + 2) * base.flap_half_life;
        while t < deadline {
            t += 1 + rng.below(base.flap_half_life as usize) as u64;
            damp.advance(t);
        }
        assert!(
            damp.suppressed().is_empty(),
            "case {case}: suppression survived past the decay deadline"
        );
        assert_eq!(
            damp.suppressions(),
            damp.reinstatements(),
            "case {case}: every suppression reinstates exactly once"
        );
        let (sup, reins) = (damp.suppressions(), damp.reinstatements());
        for _ in 0..16 {
            t += base.flap_half_life;
            damp.advance(t);
        }
        assert_eq!(
            (damp.suppressions(), damp.reinstatements()),
            (sup, reins),
            "case {case}: damper oscillated with no input"
        );
    }
}

/// Property: backoff delays are monotone non-decreasing up to the cap,
/// never exceed the cap, and the attempt budget is exact.
#[test]
fn backoff_is_capped_and_budgeted_under_random_seeds() {
    for case in 0..64u64 {
        let cfg = RoutedConfig::default();
        let rng = SimRng::new(0xB0FF ^ case).fork(case);
        let mut b = Backoff::new(cfg.retry_base, cfg.retry_cap, cfg.retry_max, rng);
        let mut delays = Vec::new();
        while let Some(d) = b.next_delay() {
            delays.push(d);
        }
        assert_eq!(delays.len(), cfg.retry_max as usize, "case {case}");
        for (i, d) in delays.iter().enumerate() {
            assert!(*d >= cfg.retry_base.min(cfg.retry_cap), "case {case}[{i}]");
            assert!(*d <= cfg.retry_cap, "case {case}[{i}]: {d} over cap");
        }
        // Exhausted stays exhausted until reset.
        assert!(b.next_delay().is_none(), "case {case}");
        b.reset();
        assert!(
            b.next_delay().is_some(),
            "case {case}: reset restores budget"
        );
    }
}
