//! Integration tests for the collective protocols (barrier, reduce,
//! all-reduce) across architectures and topologies.

use collectives::traffic::DeliveryHook;
use collectives::{BarrierEngine, ReduceEngine, TrafficSource};
use mdworm::build::build_system;
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::experiments::{run_allreduce, run_barrier};
use netsim::ids::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

fn cfg16(arch: SwitchArch, mcast: McastImpl) -> SystemConfig {
    SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 },
        arch,
        mcast,
        ..SystemConfig::default()
    }
}

#[test]
fn barrier_works_on_both_architectures() {
    for arch in [SwitchArch::CentralBuffer, SwitchArch::InputBuffered] {
        let (rounds, latency) = run_barrier(&cfg16(arch, McastImpl::HwBitString), 4);
        assert_eq!(rounds, 4, "{arch:?}");
        assert!(latency > 0.0);
    }
}

#[test]
fn barrier_works_with_multiport_release() {
    // The release to "everyone but the root" is one full product set short
    // of a broadcast; the multiport planner must still cover it.
    let (rounds, _) = run_barrier(&cfg16(SwitchArch::CentralBuffer, McastImpl::HwMultiport), 3);
    assert_eq!(rounds, 3);
}

#[test]
fn allreduce_is_correct_on_all_schemes() {
    for mcast in [
        McastImpl::HwBitString,
        McastImpl::HwMultiport,
        McastImpl::SwBinomial,
    ] {
        let (rounds, latency, ok) = run_allreduce(&cfg16(SwitchArch::CentralBuffer, mcast), 3, 8);
        assert_eq!(rounds, 3, "{mcast:?}");
        assert!(ok, "{mcast:?} result wrong");
        assert!(latency > 0.0);
    }
}

#[test]
fn allreduce_on_input_buffered_switches() {
    let (rounds, _, ok) = run_allreduce(
        &cfg16(SwitchArch::InputBuffered, McastImpl::HwBitString),
        3,
        8,
    );
    assert_eq!(rounds, 3);
    assert!(ok);
}

#[test]
fn plain_reduce_completes_at_root_without_broadcast_traffic() {
    let cfg = cfg16(SwitchArch::CentralBuffer, McastImpl::HwBitString);
    let n = cfg.n_hosts();
    let engine = ReduceEngine::new(n, NodeId(0), 2, 8, false);
    engine.borrow_mut().set_value(NodeId(5), 1000);
    let sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|h| {
            Box::new(ReduceEngine::source_for(&engine, NodeId::from(h))) as Box<dyn TrafficSource>
        })
        .collect();
    let hook: Rc<RefCell<dyn DeliveryHook>> = engine.clone();
    let mut sys = build_system(cfg, sources, Some(hook));
    while !engine.borrow().done() && sys.engine.now() < 200_000 {
        sys.engine.run_for(200);
    }
    let e = engine.borrow();
    assert_eq!(e.completed_rounds(), 2);
    assert_eq!(e.last_result, Some(e.expected_sum()));
    assert!(e.expected_sum() > 1000);
    // A reduce round must be cheaper than the corresponding all-reduce
    // round (no broadcast phase).
    let reduce_mean = e.latencies.mean().unwrap();
    drop(e);
    let (_, allreduce_mean, _) = run_allreduce(
        &cfg16(SwitchArch::CentralBuffer, McastImpl::HwBitString),
        2,
        8,
    );
    assert!(
        reduce_mean < allreduce_mean,
        "reduce {reduce_mean} vs all-reduce {allreduce_mean}"
    );
}

#[test]
fn combining_barrier_survives_background_traffic() {
    // Switch-combining barrier rounds interleaved with a random bimodal
    // background on every host: gathers and data worms share the central
    // queues without deadlock, and the rounds still complete.
    use collectives::{ChainSource, CombiningBarrierEngine};
    use mdworm::workload::{make_sources, TrafficSpec};

    let cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 },
        barrier_combining: true,
        ..SystemConfig::default()
    };
    let n = cfg.n_hosts();
    let engine = CombiningBarrierEngine::new(n, 5);
    let spec = TrafficSpec::bimodal(0.4, 0.2, 6, 48);
    let background = make_sources(&spec, n, cfg.seed, Some(40_000));
    let sources: Vec<Box<dyn TrafficSource>> = background
        .into_iter()
        .enumerate()
        .map(|(h, bg)| {
            let barrier = CombiningBarrierEngine::source_for(&engine, NodeId::from(h));
            Box::new(ChainSource::new(vec![Box::new(barrier), bg])) as Box<dyn TrafficSource>
        })
        .collect();
    let hook: Rc<RefCell<dyn DeliveryHook>> = engine.clone();
    let mut sys = build_system(cfg, sources, Some(hook));
    let mut last_moves = 0;
    while !engine.borrow().done() && sys.engine.now() < 500_000 {
        sys.engine.run_for(1000);
        let moves = sys.engine.total_flit_moves();
        assert_ne!(moves, last_moves, "no progress at {}", sys.engine.now());
        last_moves = moves;
    }
    assert_eq!(engine.borrow().completed_rounds(), 5);
    // The background traffic itself also completed cleanly.
    let tracker = sys.tracker();
    let outstanding = tracker.borrow().outstanding();
    assert!(
        outstanding < 50,
        "{outstanding} background messages still in flight after barrier rounds"
    );
}

#[test]
fn combining_barrier_on_irregular_network() {
    use collectives::CombiningBarrierEngine;
    let cfg = SystemConfig {
        topology: TopologyKind::Irregular {
            switches: 6,
            ports: 8,
            hosts: 12,
            extra_links: 3,
            seed: 17,
        },
        barrier_combining: true,
        ..SystemConfig::default()
    };
    let n = cfg.n_hosts();
    let engine = CombiningBarrierEngine::new(n, 3);
    let sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|h| {
            Box::new(CombiningBarrierEngine::source_for(&engine, NodeId::from(h)))
                as Box<dyn TrafficSource>
        })
        .collect();
    let hook: Rc<RefCell<dyn DeliveryHook>> = engine.clone();
    let mut sys = build_system(cfg, sources, Some(hook));
    while !engine.borrow().done() && sys.engine.now() < 200_000 {
        sys.engine.run_for(200);
    }
    assert_eq!(engine.borrow().completed_rounds(), 3);
}

#[test]
fn barrier_root_placement_does_not_break_rounds() {
    // Root in the middle of the id space exercises asymmetric gather trees.
    let cfg = cfg16(SwitchArch::CentralBuffer, McastImpl::HwBitString);
    let n = cfg.n_hosts();
    let engine = BarrierEngine::new(n, NodeId(9), 3);
    let sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|h| {
            Box::new(BarrierEngine::source_for(&engine, NodeId::from(h))) as Box<dyn TrafficSource>
        })
        .collect();
    let hook: Rc<RefCell<dyn DeliveryHook>> = engine.clone();
    let mut sys = build_system(cfg, sources, Some(hook));
    while !engine.borrow().done() && sys.engine.now() < 200_000 {
        sys.engine.run_for(200);
    }
    assert_eq!(engine.borrow().completed_rounds(), 3);
}
