//! Qualitative reproduction checks: the orderings the paper reports must
//! hold in the simulator (not the absolute numbers — the shapes).

use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::experiments::{
    e10_single_multicast, e4_e5_bimodal, run_barrier, single_multicast_latency,
};
use mdworm::sim::{run_experiment, RunConfig};
use mdworm::workload::TrafficSpec;

fn base64() -> SystemConfig {
    SystemConfig::default() // 64 processors, 4-ary 3-tree
}

#[test]
fn single_multicast_hardware_beats_software_increasingly_with_degree() {
    let rows = e10_single_multicast(&base64(), &[4, 16, 63], 64);
    let ratio = |d: usize| {
        rows.iter()
            .find(|r| r.scheme == "SW-CB" && r.degree == d)
            .expect("row exists")
            .ratio_vs_cbhw
    };
    assert!(ratio(4) > 1.3, "degree 4 ratio {}", ratio(4));
    assert!(ratio(16) > 2.0, "degree 16 ratio {}", ratio(16));
    assert!(ratio(63) > 2.5, "degree 63 ratio {}", ratio(63));
    // The ratio grows with the degree (log-phases vs single phase).
    assert!(ratio(63) > ratio(4));
}

#[test]
fn multicast_latency_ordering_under_load() {
    // At a moderate multiple-multicast load the paper's ordering holds:
    // CB-HW < IB-HW and CB-HW < SW-CB.
    let run = RunConfig {
        warmup: 2_000,
        measure: 10_000,
        ..RunConfig::default()
    };
    let spec = TrafficSpec::multiple_multicast(0.6, 16, 64);
    let lat = |arch: SwitchArch, mcast: McastImpl| {
        let cfg = SystemConfig {
            arch,
            mcast,
            ..base64()
        };
        let out = run_experiment(&cfg, &spec, &run);
        assert!(!out.deadlocked);
        out.mcast_last.mean
    };
    let cb = lat(SwitchArch::CentralBuffer, McastImpl::HwBitString);
    let ib = lat(SwitchArch::InputBuffered, McastImpl::HwBitString);
    let sw = lat(SwitchArch::CentralBuffer, McastImpl::SwBinomial);
    assert!(cb < ib, "CB-HW {cb} must beat IB-HW {ib}");
    assert!(cb < sw, "CB-HW {cb} must beat SW-CB {sw}");
}

#[test]
fn bimodal_background_unicast_suffers_least_under_cb_hardware() {
    // The abstract's headline: hardware multicast on the central buffer
    // affects background unicast traffic less than software multicast.
    let run = RunConfig {
        warmup: 2_000,
        measure: 10_000,
        ..RunConfig::default()
    };
    let rows = e4_e5_bimodal(&base64(), &run, &[0.5], 0.10, 16, 64);
    let uni = |scheme: &str| {
        rows.iter()
            .find(|r| r.scheme == scheme)
            .expect("row exists")
            .unicast_mean
    };
    let cb_hw = uni("CB-HW");
    let sw = uni("SW-CB");
    let reference = uni("CB-none");
    assert!(
        cb_hw < sw,
        "background unicast under CB-HW ({cb_hw}) must beat SW ({sw})"
    );
    // Hardware multicast stays close to the no-multicast reference: within
    // 35% where software is much further off.
    assert!(
        cb_hw < reference * 1.35,
        "CB-HW {cb_hw} vs reference {reference}"
    );
}

#[test]
fn multiport_on_clustered_set_sits_between_bitstring_and_software() {
    // Hosts 16..32 form a complete level-1 subtree — a product set the
    // multiport encoding covers with a single worm. On such sets it should
    // sit between the single-phase bit-string worm and software multicast.
    use mdworm::experiments::single_multicast_latency_to;
    use netsim::destset::DestSet;
    use netsim::ids::NodeId;
    let cluster = DestSet::from_nodes(64, (16..32).map(NodeId));
    let lat = |mcast: McastImpl| {
        single_multicast_latency_to(&SystemConfig { mcast, ..base64() }, cluster.clone(), 64)
    };
    let bit = lat(McastImpl::HwBitString);
    let multi = lat(McastImpl::HwMultiport);
    let sw = lat(McastImpl::SwBinomial);
    assert!(bit <= multi, "bit-string {bit} vs multiport {multi}");
    assert!(multi < sw, "multiport {multi} vs software {sw}");
}

#[test]
fn multiport_on_scattered_sets_pays_many_phases() {
    // The flip side (and the reason the paper prefers bit-string encoding):
    // a scattered destination set is not a product set, so the multiport
    // planner must send many worms, each paying a send overhead.
    let bit = single_multicast_latency(
        &SystemConfig {
            mcast: McastImpl::HwBitString,
            ..base64()
        },
        16,
        64,
    );
    let multi = single_multicast_latency(
        &SystemConfig {
            mcast: McastImpl::HwMultiport,
            ..base64()
        },
        16,
        64,
    );
    assert!(
        multi > bit * 2,
        "scattered 16-dest set: multiport {multi} should cost well over bit-string {bit}"
    );
}

#[test]
fn barrier_hardware_release_beats_software_release() {
    let cfg16 = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 },
        ..SystemConfig::default()
    };
    let (rounds_hw, hw) = run_barrier(
        &SystemConfig {
            mcast: McastImpl::HwBitString,
            ..cfg16.clone()
        },
        5,
    );
    let (rounds_sw, sw) = run_barrier(
        &SystemConfig {
            mcast: McastImpl::SwBinomial,
            ..cfg16
        },
        5,
    );
    assert_eq!(rounds_hw, 5);
    assert_eq!(rounds_sw, 5);
    assert!(hw < sw, "hardware barrier {hw} vs software {sw}");
}

#[test]
fn input_buffer_hol_blocking_shows_in_unicast_tail_latency() {
    // Pure unicast at high load: the input-buffered switch suffers
    // head-of-line blocking that the central buffer avoids.
    let run = RunConfig {
        warmup: 2_000,
        measure: 10_000,
        ..RunConfig::default()
    };
    let spec = TrafficSpec::unicast(0.7, 64);
    let p95 = |arch: SwitchArch| {
        let cfg = SystemConfig { arch, ..base64() };
        run_experiment(&cfg, &spec, &run).unicast.p95
    };
    let cb = p95(SwitchArch::CentralBuffer);
    let ib = p95(SwitchArch::InputBuffered);
    assert!(cb < ib, "CB p95 {cb} must beat IB p95 {ib} at high load");
}
