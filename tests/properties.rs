//! Property-based tests (proptest) on the end-to-end system and the core
//! routing invariants.

use collectives::{MessageSpec, ScheduledSource, SilentSource, TrafficSource};
use mdworm::build::build_system;
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mintopo::karytree::KaryTree;
use mintopo::multiport::plan_multiport;
use mintopo::route::{trace_bitstring, ReplicatePolicy, RouteTables};
use netsim::destset::DestSet;
use netsim::ids::NodeId;
use netsim::message::MessageKind;
use proptest::collection::btree_set;
use proptest::prelude::*;

const N: usize = 16; // 4-ary 2-tree

fn dest_set_strategy(n: usize) -> impl Strategy<Value = (u32, DestSet)> {
    (0..n as u32, btree_set(0..n as u32, 1..n)).prop_filter_map(
        "destinations must exclude the source",
        move |(src, set)| {
            let dests: Vec<NodeId> = set
                .into_iter()
                .filter(|&d| d != src)
                .map(NodeId)
                .collect();
            if dests.is_empty() {
                None
            } else {
                Some((src, DestSet::from_nodes(n, dests)))
            }
        },
    )
}

/// Runs one multicast end-to-end; returns true if it fully delivered.
fn one_multicast_delivers(cfg: SystemConfig, src: u32, dests: DestSet, payload: u16) -> bool {
    let n = cfg.n_hosts();
    let mut sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|_| Box::new(SilentSource) as Box<dyn TrafficSource>)
        .collect();
    sources[src as usize] = Box::new(ScheduledSource::new(vec![(
        1,
        MessageSpec {
            kind: MessageKind::Multicast(dests),
            payload_flits: payload,
        },
    )]));
    let mut sys = build_system(cfg, sources, None);
    for _ in 0..300 {
        sys.engine.run_for(200);
        let t = sys.tracker();
        // DeliveryTracker panics on duplicate or misdirected deliveries, so
        // reaching completion proves exactly-once semantics.
        if t.borrow().completed_total() == 1 && t.borrow().outstanding() == 0 {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once delivery of arbitrary multicasts through the
    /// central-buffer switch fabric.
    #[test]
    fn cb_multicast_exactly_once((src, dests) in dest_set_strategy(N), payload in 1u16..100) {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            arch: SwitchArch::CentralBuffer,
            mcast: McastImpl::HwBitString,
            ..SystemConfig::default()
        };
        prop_assert!(one_multicast_delivers(cfg, src, dests, payload));
    }

    /// Same property for the input-buffer architecture.
    #[test]
    fn ib_multicast_exactly_once((src, dests) in dest_set_strategy(N), payload in 1u16..100) {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            arch: SwitchArch::InputBuffered,
            mcast: McastImpl::HwBitString,
            ..SystemConfig::default()
        };
        prop_assert!(one_multicast_delivers(cfg, src, dests, payload));
    }

    /// Same property for software multicast (hop forwarding included).
    #[test]
    fn sw_multicast_exactly_once((src, dests) in dest_set_strategy(N), payload in 1u16..100) {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            arch: SwitchArch::CentralBuffer,
            mcast: McastImpl::SwBinomial,
            ..SystemConfig::default()
        };
        prop_assert!(one_multicast_delivers(cfg, src, dests, payload));
    }

    /// Same property for the multiport encoding (multi-worm plans).
    #[test]
    fn multiport_multicast_exactly_once((src, dests) in dest_set_strategy(N), payload in 1u16..100) {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            arch: SwitchArch::CentralBuffer,
            mcast: McastImpl::HwMultiport,
            ..SystemConfig::default()
        };
        prop_assert!(one_multicast_delivers(cfg, src, dests, payload));
    }

    /// The static replication-tree trace covers exactly the destination set
    /// under both replication policies (routing-level invariant, no engine).
    #[test]
    fn bitstring_trace_covers_exactly((src, dests) in dest_set_strategy(N)) {
        let tree = KaryTree::new(4, 2);
        let tables = RouteTables::build(tree.topology());
        for policy in [ReplicatePolicy::ReturnOnly, ReplicatePolicy::ForwardAndReturn] {
            let trace = trace_bitstring(
                &tables,
                tree.topology(),
                NodeId(src),
                &dests,
                policy,
                32,
            ).expect("trace succeeds");
            prop_assert_eq!(&trace.delivered, &dests);
        }
    }

    /// The multiport planner partitions arbitrary sets into worms that
    /// cover exactly the request.
    #[test]
    fn multiport_plan_partitions((src, dests) in dest_set_strategy(64)) {
        let tree = KaryTree::new(4, 3);
        let plan = plan_multiport(&tree, NodeId(src), &dests);
        let mut all = DestSet::empty(64);
        for worm in &plan.worms {
            prop_assert!(!all.intersects(&worm.covers), "overlapping worms");
            all.union_with(&worm.covers);
        }
        prop_assert_eq!(&all, &dests);
        prop_assert!(plan.n_worms() <= dests.count());
    }
}
