//! Property-based tests on the end-to-end system and the core routing
//! invariants.
//!
//! Driven by hand-rolled seeded case loops over [`SimRng`] streams (no
//! external property-testing crate), so sampled inputs are reproducible
//! from the constants below.

use collectives::{MessageSpec, ScheduledSource, SilentSource, TrafficSource};
use mdworm::build::build_system;
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mintopo::karytree::KaryTree;
use mintopo::multiport::plan_multiport;
use mintopo::route::{trace_bitstring, ReplicatePolicy, RouteTables};
use netsim::destset::DestSet;
use netsim::ids::NodeId;
use netsim::message::MessageKind;
use netsim::rng::SimRng;

const N: usize = 16; // 4-ary 2-tree
const CASES: u64 = 24;

fn case_rng(test: u64, case: u64) -> SimRng {
    SimRng::new(0xE2E0_0000 ^ test).fork(case)
}

/// Random (source, non-empty destination set excluding the source).
fn random_src_dests(r: &mut SimRng, n: usize) -> (u32, DestSet) {
    let src = NodeId(r.below(n) as u32);
    let k = 1 + r.below(n - 1);
    (src.0, r.dest_set(n, k, src))
}

/// Runs one multicast end-to-end; returns true if it fully delivered.
fn one_multicast_delivers(cfg: SystemConfig, src: u32, dests: DestSet, payload: u16) -> bool {
    let n = cfg.n_hosts();
    let mut sources: Vec<Box<dyn TrafficSource>> = (0..n)
        .map(|_| Box::new(SilentSource) as Box<dyn TrafficSource>)
        .collect();
    sources[src as usize] = Box::new(ScheduledSource::new(vec![(
        1,
        MessageSpec {
            kind: MessageKind::Multicast(dests),
            payload_flits: payload,
        },
    )]));
    let mut sys = build_system(cfg, sources, None);
    for _ in 0..300 {
        sys.engine.run_for(200);
        let t = sys.tracker();
        // DeliveryTracker panics on duplicate or misdirected deliveries, so
        // reaching completion proves exactly-once semantics.
        if t.borrow().completed_total() == 1 && t.borrow().outstanding() == 0 {
            return true;
        }
    }
    false
}

fn multicast_exactly_once(test: u64, arch: SwitchArch, mcast: McastImpl) {
    for case in 0..CASES {
        let mut r = case_rng(test, case);
        let (src, dests) = random_src_dests(&mut r, N);
        let payload = 1 + r.below(99) as u16;
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            arch,
            mcast,
            ..SystemConfig::default()
        };
        assert!(
            one_multicast_delivers(cfg, src, dests.clone(), payload),
            "case {case}: multicast from {src} to {dests:?} did not deliver"
        );
    }
}

/// Exactly-once delivery of arbitrary multicasts through the
/// central-buffer switch fabric.
#[test]
fn cb_multicast_exactly_once() {
    multicast_exactly_once(1, SwitchArch::CentralBuffer, McastImpl::HwBitString);
}

/// Same property for the input-buffer architecture.
#[test]
fn ib_multicast_exactly_once() {
    multicast_exactly_once(2, SwitchArch::InputBuffered, McastImpl::HwBitString);
}

/// Same property for software multicast (hop forwarding included).
#[test]
fn sw_multicast_exactly_once() {
    multicast_exactly_once(3, SwitchArch::CentralBuffer, McastImpl::SwBinomial);
}

/// Same property for the multiport encoding (multi-worm plans).
#[test]
fn multiport_multicast_exactly_once() {
    multicast_exactly_once(4, SwitchArch::CentralBuffer, McastImpl::HwMultiport);
}

/// Under any light-load fault plan (drops, corruption, intermittent
/// outages), end-to-end recovery still delivers every message: nothing is
/// left outstanding and no sender gives up.
#[test]
fn recovery_delivers_under_random_fault_plans() {
    use collectives::RecoveryConfig;
    use mdworm::sim::{run_experiment, RunConfig};
    use mdworm::workload::TrafficSpec;
    use netsim::FaultPlan;

    for case in 0..8 {
        let mut r = case_rng(7, case);
        let plan = FaultPlan {
            seed: 0xF417 + case,
            flit_drop: r.unit() * 2e-3,
            flit_corrupt: r.unit() * 2e-3,
            down_every: if r.chance(0.5) { 2_000 } else { 0 },
            down_len: 1 + r.below(30) as u64,
            credit_leak: 0.0,
        };
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 2, n: 3 },
            arch: if case % 2 == 0 {
                SwitchArch::CentralBuffer
            } else {
                SwitchArch::InputBuffered
            },
            mcast: McastImpl::HwBitString,
            recovery: Some(RecoveryConfig {
                timeout: 1_500,
                timeout_cap: 12_000,
                max_retries: 12,
            }),
            seed: 0xCA5E + case,
            ..SystemConfig::default()
        };
        let run = RunConfig {
            warmup: 200,
            measure: 2_500,
            drain_max: 400_000,
            faults: (!plan.is_noop()).then_some(plan.clone()),
            ..RunConfig::default()
        };
        let spec = TrafficSpec::multiple_multicast(0.04, 4, 24);
        let out = run_experiment(&cfg, &spec, &run);
        assert_eq!(
            out.leftover, 0,
            "case {case}: {} messages lost under plan {plan:?}",
            out.leftover
        );
        assert_eq!(
            out.recovery.gave_up, 0,
            "case {case}: sender gave up under {plan:?}"
        );
        assert!(!out.deadlocked, "case {case}");
    }
}

/// The static replication-tree trace covers exactly the destination set
/// under both replication policies (routing-level invariant, no engine).
#[test]
fn bitstring_trace_covers_exactly() {
    for case in 0..CASES {
        let mut r = case_rng(5, case);
        let (src, dests) = random_src_dests(&mut r, N);
        let tree = KaryTree::new(4, 2);
        let tables = RouteTables::build(tree.topology());
        for policy in [
            ReplicatePolicy::ReturnOnly,
            ReplicatePolicy::ForwardAndReturn,
        ] {
            let trace = trace_bitstring(&tables, tree.topology(), NodeId(src), &dests, policy, 32)
                .expect("trace succeeds");
            assert_eq!(&trace.delivered, &dests, "case {case}");
        }
    }
}

/// The multiport planner partitions arbitrary sets into worms that
/// cover exactly the request.
#[test]
fn multiport_plan_partitions() {
    for case in 0..CASES {
        let mut r = case_rng(6, case);
        let (src, dests) = random_src_dests(&mut r, 64);
        let tree = KaryTree::new(4, 3);
        let plan = plan_multiport(&tree, NodeId(src), &dests);
        let mut all = DestSet::empty(64);
        for worm in &plan.worms {
            assert!(
                !all.intersects(&worm.covers),
                "case {case}: overlapping worms"
            );
            all.union_with(&worm.covers);
        }
        assert_eq!(&all, &dests, "case {case}");
        assert!(plan.n_worms() <= dests.count(), "case {case}");
    }
}
