//! End-to-end online fault response (DESIGN.md §10): scripted link
//! outages against live collective traffic, driving the full
//! detect → quiesce → reroute → degrade → heal pipeline.
//!
//! CI runs this file under `--features invariant-audit`, so every
//! scenario here doubles as a flit/credit conservation check across
//! gate, purge, and table-swap boundaries.

use collectives::RecoveryConfig;
use mdworm::build::{build_system, System};
use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::respond::{outage, FaultResponder, ResponseConfig, ResponseEvent};
use mdworm::workload::{make_sources, TrafficSpec};
use mintopo::reach::{PortClass, PortInfo};
use mintopo::route::{RouteTables, SwitchTable};
use mintopo::topology::{Attach, Topology};
use netsim::destset::DestSet;
use netsim::ids::{NodeId, SwitchId};

fn fault_cfg(topology: TopologyKind, arch: SwitchArch) -> SystemConfig {
    SystemConfig {
        topology,
        arch,
        mcast: McastImpl::HwBitString,
        recovery: Some(RecoveryConfig::default()),
        response: Some(ResponseConfig::default()),
        ..SystemConfig::default()
    }
}

/// Builds a system offering multiple-multicast traffic until `stop_at`.
fn build(cfg: SystemConfig, load: f64, degree: usize, stop_at: u64) -> System {
    let n = cfg.n_hosts();
    let spec = TrafficSpec::multiple_multicast(load, degree, 16);
    let sources = make_sources(&spec, n, cfg.seed, Some(stop_at));
    build_system(cfg, sources, None)
}

/// Steps the engine to `until`, polling the responder between slices.
fn drive(sys: &mut System, resp: &mut FaultResponder, until: u64) {
    while sys.engine.now() < until {
        let step = 32.min(until - sys.engine.now());
        sys.engine.run_for(step);
        resp.poll(sys);
    }
}

/// Drains until the delivery ledger is settled; returns leftover messages.
fn drain(sys: &mut System, resp: &mut FaultResponder, budget: u64) -> usize {
    let end = sys.engine.now() + budget;
    while sys.tracker().borrow().outstanding() > 0 && sys.engine.now() < end {
        sys.engine.run_for(100);
        resp.poll(sys);
    }
    sys.tracker().borrow().outstanding()
}

fn replications(sys: &System) -> u64 {
    sys.switch_stats
        .iter()
        .map(|s| s.borrow().packets_replicated)
        .sum()
}

/// A mid-collective cut of one root→leaf link on the SP2-scale default
/// tree: the vetted masked reroute keeps full worm coverage (every other
/// root still reaches the leaf), and no payload is lost end to end.
#[test]
fn single_cut_mid_collective_is_lossless() {
    for arch in [SwitchArch::CentralBuffer, SwitchArch::InputBuffered] {
        let cfg = fault_cfg(TopologyKind::KaryTree { k: 4, n: 3 }, arch);
        let mut sys = build(cfg, 0.03, 8, 5_000);
        let (link, _) = outage::single_cut(&sys, NodeId::from(16usize));
        sys.engine.script_outage(link, 1_000, 4_000);

        let mut resp = FaultResponder::new(ResponseConfig::default(), &mut sys);
        drive(&mut sys, &mut resp, 5_000);
        let leftover = drain(&mut sys, &mut resp, 200_000);

        let c = resp.counters();
        assert_eq!(leftover, 0, "{arch:?}: lost payloads across the cut");
        assert!(c.reroutes >= 1, "{arch:?}: cut must trigger a reroute");
        assert!(c.heals >= 1, "{arch:?}: link restore must heal");
        assert_eq!(c.reroutes_rejected, 0, "{arch:?}: honest rebuilds pass");
        assert!(
            sys.fabric_mode.counters().peeled_dests == 0,
            "{arch:?}: a single cut never defeats worm coverage on 3 stages"
        );
        assert!(sys.engine.flits_in_links() == 0, "{arch:?}: fabric drained");
    }
}

/// A crossed cut that severs every single-worm covering of two leaves:
/// each root loses its down-link toward one of the two subtrees, so the
/// degradation planner must peel the uncoverable destinations into the
/// binomial-tree U-Min unicast fallback — and still nothing is lost.
#[test]
fn crossed_cut_completes_through_unicast_fallback() {
    let cfg = fault_cfg(
        TopologyKind::KaryTree { k: 4, n: 2 },
        SwitchArch::CentralBuffer,
    );
    let mut sys = build(cfg, 0.04, 4, 4_000);
    let (d1, d2) = (NodeId::from(4usize), NodeId::from(8usize));
    for (link, _) in outage::crossed_cut(&sys, d1, d2) {
        sys.engine.script_outage(link, 500, 3_000);
    }

    let mut resp = FaultResponder::new(ResponseConfig::default(), &mut sys);
    drive(&mut sys, &mut resp, 3_000);
    let at_heal = replications(&sys);
    drive(&mut sys, &mut resp, 4_000);
    let leftover = drain(&mut sys, &mut resp, 200_000);

    assert_eq!(leftover, 0, "peeled destinations must still be served");
    let d = sys.fabric_mode.counters();
    assert!(d.peeled_dests > 0, "crossed cut must force the peel");
    assert!(d.split_mcasts > 0, "peeling splits the multicast plan");
    assert!(resp.counters().heals >= 1, "fabric must heal after restore");
    // After heal, hardware replication picks back up in the switches.
    assert!(
        replications(&sys) > at_heal,
        "switch replication counters must resume after heal"
    );
}

/// The deadlock vet gate: a candidate table set whose channel-dependency
/// graph has a cycle is rejected, the fabric stays on the proven-good old
/// tables (running degraded), and traffic still completes after heal.
#[test]
fn cyclic_reroute_candidate_is_rejected_and_logged() {
    let cfg = fault_cfg(
        TopologyKind::KaryTree { k: 4, n: 2 },
        SwitchArch::CentralBuffer,
    );
    let mut sys = build(cfg, 0.02, 4, 3_000);
    let (link, _) = outage::single_cut(&sys, NodeId::from(4usize));
    sys.engine.script_outage(link, 500, 2_000);

    let mut resp = FaultResponder::new(ResponseConfig::default(), &mut sys);
    // A buggy out-of-band route planner: the masked rebuild is patched so
    // one leaf and its root each classify their shared cable as *down*
    // with full reach ("the other side is deeper") — a 2-cycle in the
    // channel-dependency graph. Healing (empty dead set) stays honest.
    resp.set_candidate_builder(Box::new(corrupt_builder));

    let before = sys.tables.clone();
    drive(&mut sys, &mut resp, 3_000);
    let leftover = drain(&mut sys, &mut resp, 200_000);

    let c = resp.counters();
    assert!(
        c.reroutes_rejected >= 1,
        "the cyclic candidate must be vetoed"
    );
    let rejection = resp
        .events()
        .iter()
        .find_map(|(_, e)| match e {
            ResponseEvent::RerouteRejected { code, message } => Some((code, message)),
            _ => None,
        })
        .expect("rejection must be logged in the event stream");
    assert_eq!(rejection.0, "cdg-cycle", "{}", rejection.1);
    // The healed tables are a fresh (honest) rebuild; what matters is
    // that the cyclic candidate itself was never installed mid-outage.
    let installed_cyclic = resp
        .events()
        .iter()
        .any(|(_, e)| matches!(e, ResponseEvent::Rerouted { .. }));
    assert!(!installed_cyclic, "rejected candidates must never install");
    assert!(!std::rc::Rc::ptr_eq(&before, &sys.tables) || leftover == 0);
    assert_eq!(leftover, 0, "old tables + heal must still deliver all");
    assert!(c.heals >= 1, "heal path must stay open after a rejection");
}

/// Patches the honest masked rebuild into a CDG-cyclic candidate whenever
/// any port is actually dead (see
/// `cyclic_reroute_candidate_is_rejected_and_logged`).
fn corrupt_builder(topo: &Topology, dead: &[(SwitchId, usize)]) -> RouteTables {
    let honest = RouteTables::build_masked(topo, dead);
    if dead.is_empty() {
        return honest;
    }
    let n = topo.n_hosts();
    let (leaf, up, root, down) = (0..topo.n_switches())
        .map(SwitchId::from)
        .find_map(|s| {
            honest
                .table(s)
                .up_ports()
                .first()
                .map(|&u| match topo.attach(s, u) {
                    Attach::Switch(r, rp) => (s, u, r, rp),
                    _ => unreachable!("up ports lead to switches"),
                })
        })
        .expect("a multistage tree has a leaf with an up port");
    let full = DestSet::full(n);
    let tables = (0..topo.n_switches())
        .map(SwitchId::from)
        .map(|s| {
            let t = honest.table(s);
            let mut ports: Vec<PortInfo> = (0..t.n_ports()).map(|p| t.port(p).clone()).collect();
            if s == leaf {
                ports[up] = PortInfo {
                    class: PortClass::Down,
                    reach: full.clone(),
                };
            }
            if s == root {
                ports[down] = PortInfo {
                    class: PortClass::Down,
                    reach: full.clone(),
                };
            }
            SwitchTable::from_ports(ports, n)
        })
        .collect();
    RouteTables::from_tables(tables, n)
}

/// The liveness half of the vet gate: a candidate that over-masks a leaf
/// — every reach string at a switch with live hosts emptied — induces a
/// *vacuously* acyclic CDG, so only the dedicated stranded-switch check
/// can veto it. Regression test for the gate accepting such tables.
#[test]
fn stranded_switch_candidate_is_rejected_not_vacuously_vetted() {
    let cfg = fault_cfg(
        TopologyKind::KaryTree { k: 4, n: 2 },
        SwitchArch::CentralBuffer,
    );
    let mut sys = build(cfg, 0.02, 4, 3_000);
    let (link, _) = outage::single_cut(&sys, NodeId::from(4usize));
    sys.engine.script_outage(link, 500, 2_000);

    let mut resp = FaultResponder::new(ResponseConfig::default(), &mut sys);
    resp.set_candidate_builder(Box::new(overmasking_builder));

    drive(&mut sys, &mut resp, 3_000);
    let leftover = drain(&mut sys, &mut resp, 200_000);

    let c = resp.counters();
    assert!(c.reroutes_rejected >= 1, "over-masked candidate must veto");
    let rejection = resp
        .events()
        .iter()
        .find_map(|(_, e)| match e {
            ResponseEvent::RerouteRejected { code, message } => Some((code, message)),
            _ => None,
        })
        .expect("rejection must be logged");
    assert_eq!(rejection.0, "unreachable-switch", "{}", rejection.1);
    assert!(
        !resp
            .events()
            .iter()
            .any(|(_, e)| matches!(e, ResponseEvent::Rerouted { .. })),
        "the stranding candidate must never install"
    );
    assert_eq!(leftover, 0, "old tables + heal must still deliver all");
}

/// Blanks every reach string of leaf switch 0 (which keeps its attached
/// hosts) in the otherwise-honest masked rebuild. Healing stays honest.
fn overmasking_builder(topo: &Topology, dead: &[(SwitchId, usize)]) -> RouteTables {
    let honest = RouteTables::build_masked(topo, dead);
    if dead.is_empty() {
        return honest;
    }
    let n = topo.n_hosts();
    let empty = DestSet::empty(n);
    let tables = (0..topo.n_switches())
        .map(SwitchId::from)
        .map(|s| {
            let t = honest.table(s);
            let ports = (0..t.n_ports())
                .map(|p| {
                    let mut info = t.port(p).clone();
                    if s == SwitchId(0) {
                        info.reach = empty.clone();
                    }
                    info
                })
                .collect();
            SwitchTable::from_ports(ports, n)
        })
        .collect();
    RouteTables::from_tables(tables, n)
}

/// The behavioral half of the vet gate: under synchronous (lock-step)
/// replication on the input-buffered switch, the bounded model check
/// finds the paper's §3 crossed-grant deadlock, so the responder must
/// refuse to activate *any* reroute — even a structurally honest masked
/// rebuild whose CDG is acyclic — and log a `model-check` rejection.
#[test]
fn sync_replication_reroute_is_vetoed_by_model_check() {
    let mut cfg = fault_cfg(
        TopologyKind::KaryTree { k: 4, n: 2 },
        SwitchArch::InputBuffered,
    );
    cfg.switch.replication = switches::ReplicationMode::Synchronous;
    let mut sys = build(cfg, 0.01, 2, 2_000);
    let (link, _) = outage::single_cut(&sys, NodeId::from(4usize));
    sys.engine.script_outage(link, 500, 1_500);

    let mut resp = FaultResponder::new(ResponseConfig::default(), &mut sys);
    drive(&mut sys, &mut resp, 2_500);
    let _ = drain(&mut sys, &mut resp, 100_000);

    let c = resp.counters();
    assert!(
        c.reroutes_rejected >= 1,
        "sync replication must fail deep vet"
    );
    let rejection = resp
        .events()
        .iter()
        .find_map(|(_, e)| match e {
            ResponseEvent::RerouteRejected { code, message } => Some((code, message)),
            _ => None,
        })
        .expect("rejection must be logged");
    assert_eq!(rejection.0, "model-check", "{}", rejection.1);
    assert!(
        rejection.1.contains("deadlock"),
        "the verdict must name the hazard: {}",
        rejection.1
    );
    assert!(
        !resp
            .events()
            .iter()
            .any(|(_, e)| matches!(e, ResponseEvent::Rerouted { .. })),
        "no reroute may activate under an unverified architecture"
    );
}

/// Regression: a link that goes down and comes back up within one
/// debounce-plus-quiesce window must not leave stale masked ports
/// behind. The down edge is confirmed right at the debounce boundary,
/// the responder gates and quiesces (drain_wait + purge — hundreds of
/// cycles), and the link is back up before the masked tables would
/// install. The post-purge health recheck must notice and skip the
/// install; without it the responder masks a healthy link and runs
/// degraded until the next unrelated transition wakes it.
#[test]
fn short_blip_leaves_no_stale_masked_ports() {
    for arch in [SwitchArch::CentralBuffer, SwitchArch::InputBuffered] {
        let cfg = fault_cfg(TopologyKind::KaryTree { k: 4, n: 2 }, arch);
        let mut sys = build(cfg, 0.03, 4, 4_000);
        let (link, _) = outage::single_cut(&sys, NodeId::from(4usize));
        // Down for 100 cycles: long enough to survive the 64-cycle
        // debounce, back up long before the 256-cycle drain completes.
        sys.engine.script_outage(link, 1_000, 1_100);

        let mut resp = FaultResponder::new(ResponseConfig::default(), &mut sys);
        drive(&mut sys, &mut resp, 4_000);
        let leftover = drain(&mut sys, &mut resp, 200_000);

        let c = resp.counters();
        assert_eq!(leftover, 0, "{arch:?}: payloads lost across the blip");
        assert!(c.links_down >= 1, "{arch:?}: the blip must be confirmed");
        assert_eq!(
            c.reroutes, 0,
            "{arch:?}: no tables may install for a link already back up"
        );
        assert_eq!(c.heals, 0, "{arch:?}: nothing was masked, nothing heals");
        assert!(
            c.stale_detects >= 1,
            "{arch:?}: the post-purge recheck must fire"
        );
        assert!(
            resp.masked_ports().is_empty(),
            "{arch:?}: stale masked ports left behind"
        );
        assert!(
            resp.events()
                .iter()
                .any(|(_, e)| matches!(e, ResponseEvent::StaleDetect)),
            "{arch:?}: the absorbed response must be logged"
        );
        // And the episode still shows up in the latency series — an
        // aborted response consumed real service time.
        assert!(resp.latency().count() >= 1, "{arch:?}");
    }
}

/// Miniature E17 timeline — the CI smoke target. Under
/// `--features invariant-audit` every cycle of this four-phase script is
/// audited for flit and credit conservation.
#[test]
fn miniature_e17_timeline_is_lossless() {
    let base = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 },
        ..SystemConfig::default()
    };
    let rows = mdworm::experiments::e17_fault_response(&base, 2_000, 0.04, 4, 16);
    assert_eq!(rows.len(), 8, "2 schemes x 4 phases");
    for r in &rows {
        assert_eq!(r.leftover, 0, "{}/{}: lost payloads", r.scheme, r.phase);
        assert_eq!(r.rejected, 0, "{}/{}: spurious veto", r.scheme, r.phase);
    }
    assert!(
        rows.iter().any(|r| r.phase == "degraded" && r.peeled > 0),
        "the crossed-cut phase must exercise the U-Min fallback"
    );
    assert!(
        rows.iter().any(|r| r.phase == "rerouted" && r.reroutes > 0),
        "the single-cut phase must exercise the vetted reroute"
    );
}
