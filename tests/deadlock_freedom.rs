//! Deadlock-freedom under saturating randomized traffic.
//!
//! The paper's central claim about implementability is that asynchronous
//! replication is deadlock-free as long as every switch guarantees an
//! accepted packet can be completely buffered. These tests drive every
//! architecture far past saturation and assert the watchdog never fires
//! and the network always drains once sources stop.

use mdworm::config::{McastImpl, SwitchArch, SystemConfig, TopologyKind};
use mdworm::sim::{run_experiment, RunConfig};
use mdworm::workload::TrafficSpec;

fn assert_clean(cfg: SystemConfig, spec: TrafficSpec, tag: &str) {
    let run = RunConfig {
        warmup: 500,
        measure: 5_000,
        drain_max: 400_000,
        watchdog_grace: 30_000,
        faults: None,
        outages: Vec::new(),
    };
    let out = run_experiment(&cfg, &spec, &run);
    assert!(!out.deadlocked, "{tag}: watchdog fired");
    assert_eq!(out.leftover, 0, "{tag}: {} messages stuck", out.leftover);
}

fn combos() -> Vec<(SwitchArch, McastImpl, &'static str)> {
    vec![
        (SwitchArch::CentralBuffer, McastImpl::HwBitString, "CB-HW"),
        (SwitchArch::InputBuffered, McastImpl::HwBitString, "IB-HW"),
        (SwitchArch::CentralBuffer, McastImpl::SwBinomial, "SW-CB"),
        (SwitchArch::CentralBuffer, McastImpl::HwMultiport, "CB-MP"),
    ]
}

#[test]
fn overload_multicast_16_hosts() {
    for (arch, mcast, tag) in combos() {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            arch,
            mcast,
            ..SystemConfig::default()
        };
        // Offered load 1.5: 50% beyond ejection capacity.
        assert_clean(cfg, TrafficSpec::multiple_multicast(1.5, 8, 64), tag);
    }
}

#[test]
fn overload_bimodal_16_hosts() {
    for (arch, mcast, tag) in combos() {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            arch,
            mcast,
            ..SystemConfig::default()
        };
        assert_clean(cfg, TrafficSpec::bimodal(1.2, 0.3, 6, 48), tag);
    }
}

#[test]
fn overload_unicast_both_arches() {
    for (arch, tag) in [
        (SwitchArch::CentralBuffer, "CB"),
        (SwitchArch::InputBuffered, "IB"),
    ] {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            arch,
            ..SystemConfig::default()
        };
        assert_clean(cfg, TrafficSpec::unicast(1.5, 64), tag);
    }
}

#[test]
fn overload_with_tiny_central_queue() {
    // Stress the reservation machinery: the central queue barely exceeds
    // two max packets.
    let mut cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 },
        ..SystemConfig::default()
    };
    cfg.switch.cq_chunks = 34;
    assert_clean(
        cfg,
        TrafficSpec::multiple_multicast(1.2, 8, 64),
        "CB-tinyCQ",
    );
}

#[test]
fn overload_broadcastish_degree() {
    // Near-broadcast multicasts maximize fan-out pressure.
    for (arch, mcast, tag) in combos() {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            arch,
            mcast,
            ..SystemConfig::default()
        };
        assert_clean(cfg, TrafficSpec::multiple_multicast(1.2, 15, 32), tag);
    }
}

#[test]
fn overload_unimin() {
    for arch in [SwitchArch::CentralBuffer, SwitchArch::InputBuffered] {
        let cfg = SystemConfig {
            topology: TopologyKind::UniMin { k: 4, n: 2 },
            arch,
            ..SystemConfig::default()
        };
        assert_clean(cfg, TrafficSpec::multiple_multicast(1.2, 8, 48), "unimin");
    }
}

#[test]
fn overload_irregular() {
    for arch in [SwitchArch::CentralBuffer, SwitchArch::InputBuffered] {
        let cfg = SystemConfig {
            topology: TopologyKind::Irregular {
                switches: 6,
                ports: 8,
                hosts: 12,
                extra_links: 3,
                seed: 3,
            },
            arch,
            ..SystemConfig::default()
        };
        assert_clean(cfg, TrafficSpec::bimodal(1.2, 0.25, 6, 48), "irregular");
    }
}

#[test]
fn overload_64_hosts_all_schemes() {
    for (arch, mcast, tag) in combos() {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 3 },
            arch,
            mcast,
            ..SystemConfig::default()
        };
        assert_clean(cfg, TrafficSpec::multiple_multicast(1.1, 16, 64), tag);
    }
}
