//! Bimodal traffic: a unicast background with a 10% multicast share.
//!
//! Reproduces the abstract's headline claim: "under bimodal traffic the
//! central-buffer-based hardware multicast implementation affects
//! background unicast traffic less adversely compared to a software-based
//! multicast implementation". Watch the `unicast_mean` column: SW-CB turns
//! each multicast into ~d full-length unicasts, and the background feels
//! it.
//!
//! ```text
//! cargo run --release --example bimodal_traffic
//! ```

use mdworm::experiments::e4_e5_bimodal;
use mdworm::report::markdown_table;
use mdworm::sim::RunConfig;
use mdworm::SystemConfig;

fn main() {
    let base = SystemConfig::default();
    let run = RunConfig {
        warmup: 2_000,
        measure: 12_000,
        ..RunConfig::default()
    };
    println!("# Bimodal traffic: 90% unicast / 10% multicast (degree 16), 64-flit messages\n");
    let rows = e4_e5_bimodal(&base, &run, &[0.05, 0.15, 0.30], 0.10, 16, 64);
    println!("{}", markdown_table(&rows));
    println!(
        "\nCB-none is the reference with the multicast share removed. The gap\n\
         between a scheme's unicast_mean and CB-none's is the damage that\n\
         scheme's multicasts inflict on the background traffic."
    );
}
