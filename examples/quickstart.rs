//! Quickstart: build the paper's default 64-processor system, run a light
//! multiple-multicast workload on all three schemes, and print a result
//! table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mdworm::experiments::{e1_parameters, e2_e3_multiple_multicast};
use mdworm::report::markdown_table;
use mdworm::sim::RunConfig;
use mdworm::SystemConfig;

fn main() {
    let base = SystemConfig::default();
    let run = RunConfig {
        warmup: 2_000,
        measure: 10_000,
        ..RunConfig::default()
    };

    println!("# Simulation parameters (paper defaults)\n");
    println!("{}", markdown_table(&e1_parameters(&base, &run)));

    println!("\n# Multiple multicast: 64 processors, degree 16, 64-flit messages\n");
    let rows = e2_e3_multiple_multicast(&base, &run, &[0.05, 0.15, 0.30], 16, 64);
    println!("{}", markdown_table(&rows));
    println!(
        "\nCB-HW is the paper's central-buffer hardware multicast, IB-HW the\n\
         input-buffer alternative, SW-CB the U-Min software baseline. Lower\n\
         multicast latency and higher throughput is better; the central\n\
         buffer should win across the board."
    );
}
