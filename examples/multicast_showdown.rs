//! Single-multicast showdown: one multicast on an idle 64-processor
//! network, sweeping the number of destinations, for all three schemes —
//! the motivating comparison of the paper (software multicast pays
//! `ceil(log2(d+1))` phases of start-up cost; hardware worms pay one).
//!
//! ```text
//! cargo run --release --example multicast_showdown
//! ```

use mdworm::experiments::e10_single_multicast;
use mdworm::report::markdown_table;
use mdworm::SystemConfig;

fn main() {
    let base = SystemConfig::default();
    println!("# One multicast, idle 64-processor network, 64-flit payload\n");
    let rows = e10_single_multicast(&base, &[2, 4, 8, 16, 32, 63], 64);
    println!("{}", markdown_table(&rows));
    println!(
        "\nThe ratio column compares each scheme to CB-HW at the same degree.\n\
         The SW-CB ratio should grow roughly with log2(d+1) — the \"factor\n\
         of 4\" regime the authors report appears around degree 15-63."
    );
}
