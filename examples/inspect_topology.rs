//! Inspect the network machinery without running a simulation: dump a
//! k-ary tree's structure and reachability strings, trace a
//! multidestination worm's replication tree under both policies, and show
//! how the multiport planner splits a scattered set into product-set
//! worms.
//!
//! ```text
//! cargo run --example inspect_topology
//! ```

use mintopo::karytree::KaryTree;
use mintopo::multiport::plan_multiport;
use mintopo::reach::PortClass;
use mintopo::route::{trace_bitstring, trace_unicast, ReplicatePolicy, RouteTables};
use netsim::destset::DestSet;
use netsim::ids::NodeId;

fn main() {
    let tree = KaryTree::new(4, 3); // the paper's 64-processor system
    let topo = tree.topology();
    let tables = RouteTables::build(topo);

    println!("# 4-ary 3-tree (64 processors)");
    println!(
        "{} switches in {} stages of {}, {} connections\n",
        topo.n_switches(),
        tree.stages(),
        tree.switches_per_stage(),
        topo.connections().len()
    );

    // Reachability strings of one leaf switch.
    let leaf = tree.switch_at(0, 5);
    println!("## Switch {leaf} (stage 0, index 5) port map");
    let table = tables.table(leaf);
    for p in 0..table.n_ports() {
        let info = table.port(p);
        let class = match info.class {
            PortClass::Down => "down",
            PortClass::Up => "up  ",
            PortClass::Unused => "off ",
        };
        println!("  port {p}: {class} reach {:?}", info.reach);
    }

    // A unicast route across the tree.
    let (src, dst) = (NodeId(0), NodeId(63));
    let path = trace_unicast(&tables, topo, src, dst, 16).expect("routes");
    println!(
        "\n## Unicast {src} -> {dst}: {} switch hops via {:?} (LCA stage {})",
        path.len(),
        path,
        tree.lca_stage(src, dst)
    );

    // A multicast worm's replication tree.
    let dests = DestSet::from_nodes(64, [1, 7, 21, 22, 40, 63].map(NodeId));
    println!(
        "\n## Multicast {src} -> {dests:?} (LCA stage {})",
        tree.lca_stage_set(src, &dests)
    );
    for policy in [
        ReplicatePolicy::ReturnOnly,
        ReplicatePolicy::ForwardAndReturn,
    ] {
        let trace = trace_bitstring(&tables, topo, src, &dests, policy, 16).expect("replicates");
        println!(
            "  {policy:?}: {} branch hops, deepest path {} switches, delivered {:?}",
            trace.branch_hops, trace.depth, trace.delivered
        );
    }

    // The multiport plan for the same set.
    let plan = plan_multiport(&tree, src, &dests);
    println!(
        "\n## Multiport plan for the same set: {} worm(s)",
        plan.n_worms()
    );
    for (i, worm) in plan.worms.iter().enumerate() {
        println!(
            "  worm {i}: {} hops of masks {:?} covering {:?}",
            worm.masks.len(),
            worm.masks,
            worm.covers
        );
    }
    println!(
        "\nScattered sets fragment into many product-set worms — the reason\n\
         the paper prefers single-phase bit-string encoding."
    );
}
