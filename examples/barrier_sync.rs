//! Barrier synchronization (extension experiment E11): gather +
//! multicast-release rounds, with the release carried either by hardware
//! multidestination worms or by U-Min software multicast.
//!
//! The paper's §9 outlook points at switch support for barriers as the
//! natural next use of multidestination worms; this example quantifies the
//! end-to-end benefit the worm-based release alone already provides.
//!
//! ```text
//! cargo run --release --example barrier_sync
//! ```

use mdworm::experiments::e11_barrier;
use mdworm::report::markdown_table;
use mdworm::SystemConfig;

fn main() {
    let base = SystemConfig::default();
    println!("# Barrier rounds (gather + multicast release), 10 rounds each\n");
    let rows = e11_barrier(&base, &[2, 3], 10); // 16 and 64 processors
    println!("{}", markdown_table(&rows));
    println!(
        "\nHW release sends one multidestination worm; SW release pays\n\
         ceil(log2(N)) phases of software forwarding on the critical path."
    );
}
